//! Property-based tests for the LP crate.

use nomloc_geometry::{HalfPlane, Point, Polygon, Vec2};
use nomloc_lp::center::{self, CenterMethod};
use nomloc_lp::relax::{relax_constraints, WeightedConstraint};
use nomloc_lp::simplex::Program;
use proptest::prelude::*;

fn bounds() -> Polygon {
    Polygon::rectangle(Point::new(-20.0, -20.0), Point::new(20.0, 20.0))
}

fn halfplane() -> impl Strategy<Value = HalfPlane> {
    (-1.0..1.0f64, -1.0..1.0f64, -10.0..10.0f64)
        .prop_filter("non-degenerate normal", |(ax, ay, _)| {
            ax.abs() + ay.abs() > 0.05
        })
        .prop_map(|(ax, ay, b)| HalfPlane::new(Vec2::new(ax, ay), b))
}

proptest! {
    // The simplex solution of a random bounded feasibility problem must
    // satisfy every constraint.
    #[test]
    fn simplex_solutions_are_feasible(hps in prop::collection::vec(halfplane(), 1..10)) {
        let mut p = Program::new(2);
        // Bounding box keeps it bounded.
        p.add_le(vec![1.0, 0.0], 20.0);
        p.add_le(vec![-1.0, 0.0], 20.0);
        p.add_le(vec![0.0, 1.0], 20.0);
        p.add_le(vec![0.0, -1.0], 20.0);
        for h in &hps {
            p.add_le(vec![h.a.x, h.a.y], h.b);
        }
        match p.solve() {
            Ok(s) => {
                for h in &hps {
                    prop_assert!(
                        h.a.x * s.x[0] + h.a.y * s.x[1] <= h.b + 1e-6,
                        "constraint {h} violated at ({}, {})", s.x[0], s.x[1]
                    );
                }
            }
            Err(nomloc_lp::LpError::Infeasible) => {
                // Cross-check with the geometric oracle: clipping must agree.
                let region = center::feasible_region(&hps, &bounds());
                prop_assert!(region.is_none(), "simplex said infeasible but clipping found {:?}", region);
            }
            Err(e) => prop_assert!(false, "unexpected solver error {e}"),
        }
    }

    // LP optimality sanity: objective at solver optimum ≤ objective at any
    // random feasible point (checked via rejection sampling of the box).
    #[test]
    fn simplex_beats_random_feasible_points(
        hps in prop::collection::vec(halfplane(), 1..6),
        cx in -1.0..1.0f64,
        cy in -1.0..1.0f64,
        probe_x in -20.0..20.0f64,
        probe_y in -20.0..20.0f64,
    ) {
        let mut p = Program::new(2);
        p.set_objective(0, cx).set_objective(1, cy);
        p.add_le(vec![1.0, 0.0], 20.0);
        p.add_le(vec![-1.0, 0.0], 20.0);
        p.add_le(vec![0.0, 1.0], 20.0);
        p.add_le(vec![0.0, -1.0], 20.0);
        for h in &hps {
            p.add_le(vec![h.a.x, h.a.y], h.b);
        }
        if let Ok(s) = p.solve() {
            let probe_feasible = hps.iter().all(|h| h.a.x * probe_x + h.a.y * probe_y <= h.b)
                && probe_x.abs() <= 20.0 && probe_y.abs() <= 20.0;
            if probe_feasible {
                let probe_obj = cx * probe_x + cy * probe_y;
                prop_assert!(s.objective <= probe_obj + 1e-6,
                    "solver {} worse than probe {}", s.objective, probe_obj);
            }
        }
    }

    // Relaxation always succeeds with a boundary box, and its witness
    // satisfies every relaxed constraint.
    #[test]
    fn relaxation_always_repairable(hps in prop::collection::vec(halfplane(), 1..12)) {
        let mut cs: Vec<WeightedConstraint> = hps
            .iter()
            .enumerate()
            .map(|(i, h)| WeightedConstraint::new(*h, 0.5 + 0.04 * i as f64))
            .collect();
        for h in center::polygon_halfplanes(&bounds()) {
            cs.push(WeightedConstraint::new(h, 1000.0));
        }
        let r = relax_constraints(&cs).unwrap();
        prop_assert!(r.cost() >= -1e-9);
        for h in r.relaxed_halfplanes() {
            prop_assert!(h.violation(r.witness()) < 1e-6);
        }
        // Feasible original systems must not be charged.
        if center::feasible_region(&hps, &bounds()).is_some() {
            prop_assert!(r.cost() < 1e-5, "feasible system charged {}", r.cost());
        }
    }

    // Every center method returns a point inside the (non-empty) region.
    #[test]
    fn centers_are_feasible(hps in prop::collection::vec(halfplane(), 0..8)) {
        if let Some(region) = center::feasible_region(&hps, &bounds()) {
            prop_assume!(region.area() > 1e-3);
            for m in [CenterMethod::Chebyshev, CenterMethod::Analytic, CenterMethod::Centroid] {
                let c = center::center(m, &hps, &bounds()).unwrap();
                // Allow a hair of tolerance at the boundary.
                prop_assert!(
                    region.contains(c) || region.distance_to_boundary(c) < 1e-6,
                    "{m:?} center {c} outside region of area {}", region.area()
                );
            }
        }
    }

    // Chebyshev center maximizes clearance: no sampled point has a larger
    // minimum distance to the constraint boundaries.
    #[test]
    fn chebyshev_maximizes_inradius(
        hps in prop::collection::vec(halfplane(), 1..6),
        sx in -20.0..20.0f64,
        sy in -20.0..20.0f64,
    ) {
        let all: Vec<HalfPlane> = hps.iter().copied()
            .chain(center::polygon_halfplanes(&bounds()))
            .collect();
        if let Ok(c) = center::chebyshev_center(&hps, &bounds()) {
            let clearance = |p: Point| -> f64 {
                all.iter().map(|h| -h.signed_distance(p)).fold(f64::INFINITY, f64::min)
            };
            let probe = Point::new(sx, sy);
            prop_assert!(clearance(c) >= clearance(probe) - 1e-6,
                "probe {probe} has better clearance than center {c}");
        }
    }
}
