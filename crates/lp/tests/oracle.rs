//! Oracle tests: the simplex solver checked against an independent
//! brute-force LP oracle (vertex enumeration), and the center routines
//! against Monte-Carlo geometry.

use nomloc_geometry::{HalfPlane, Point, Polygon, Vec2};
use nomloc_lp::center;
use nomloc_lp::relax::{relax_constraints, WeightedConstraint};
use nomloc_lp::simplex::Program;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force 2-D LP oracle: enumerate all constraint-pair intersection
/// vertices, keep feasible ones, return the best objective. Sound for
/// bounded problems whose optimum is at a vertex (always, for bounded
/// feasible LPs).
fn oracle_min(c: (f64, f64), hps: &[HalfPlane]) -> Option<f64> {
    let feasible = |p: Point| hps.iter().all(|h| h.violation(p) <= 1e-7);
    let mut best: Option<f64> = None;
    for i in 0..hps.len() {
        for j in (i + 1)..hps.len() {
            // Solve a_i·z = b_i, a_j·z = b_j.
            let (a1, a2) = (hps[i].a, hps[j].a);
            let det = a1.x * a2.y - a1.y * a2.x;
            if det.abs() < 1e-12 {
                continue;
            }
            let x = (hps[i].b * a2.y - hps[j].b * a1.y) / det;
            let y = (a1.x * hps[j].b - a2.x * hps[i].b) / det;
            let p = Point::new(x, y);
            if feasible(p) {
                let obj = c.0 * p.x + c.1 * p.y;
                best = Some(best.map_or(obj, |b: f64| b.min(obj)));
            }
        }
    }
    best
}

fn box_halfplanes(r: f64) -> Vec<HalfPlane> {
    vec![
        HalfPlane::new(Vec2::new(1.0, 0.0), r),
        HalfPlane::new(Vec2::new(-1.0, 0.0), r),
        HalfPlane::new(Vec2::new(0.0, 1.0), r),
        HalfPlane::new(Vec2::new(0.0, -1.0), r),
    ]
}

fn halfplane_strategy() -> impl Strategy<Value = HalfPlane> {
    (-1.0..1.0f64, -1.0..1.0f64, -8.0..8.0f64)
        .prop_filter("nondegenerate", |(a, b, _)| a.abs() + b.abs() > 0.1)
        .prop_map(|(a, b, c)| HalfPlane::new(Vec2::new(a, b), c))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    // Simplex optimum equals the vertex-enumeration oracle on random
    // bounded 2-D LPs.
    #[test]
    fn simplex_matches_vertex_oracle(
        hps in prop::collection::vec(halfplane_strategy(), 0..8),
        cx in -1.0..1.0f64,
        cy in -1.0..1.0f64,
    ) {
        let mut all = box_halfplanes(10.0);
        all.extend(hps);
        let mut p = Program::new(2);
        p.set_objective(0, cx).set_objective(1, cy);
        for h in &all {
            p.add_le(vec![h.a.x, h.a.y], h.b);
        }
        match (p.solve(), oracle_min((cx, cy), &all)) {
            (Ok(s), Some(oracle)) => {
                prop_assert!(
                    (s.objective - oracle).abs() < 1e-5 * (1.0 + oracle.abs()),
                    "simplex {} vs oracle {}", s.objective, oracle
                );
            }
            (Err(nomloc_lp::LpError::Infeasible), None) => {}
            (Ok(s), None) => {
                // Oracle found no feasible *vertex*; with a bounding box
                // that means infeasible — simplex must not claim success
                // with a feasible point.
                let feasible = all.iter().all(|h| {
                    h.a.x * s.x[0] + h.a.y * s.x[1] <= h.b + 1e-6
                });
                prop_assert!(!feasible, "simplex point feasible but oracle saw none");
            }
            (Err(e), Some(_)) => prop_assert!(false, "simplex failed ({e}) on feasible LP"),
            (Err(nomloc_lp::LpError::Unbounded), None) => {
                prop_assert!(false, "boxed LP cannot be unbounded");
            }
            (Err(e), None) => prop_assert!(false, "unexpected error {e}"),
        }
    }

    // Relaxation cost is never larger than the cheapest single-constraint
    // repair computed independently.
    #[test]
    fn relaxation_cost_bounded_by_single_repairs(
        hps in prop::collection::vec(halfplane_strategy(), 1..6),
    ) {
        let mut cs: Vec<WeightedConstraint> = hps
            .iter()
            .map(|h| WeightedConstraint::new(*h, 0.7))
            .collect();
        for h in box_halfplanes(10.0) {
            cs.push(WeightedConstraint::new(h, 1000.0));
        }
        let r = relax_constraints(&cs).unwrap();
        // Upper bound: violating set measured at any feasible probe point
        // of the box (e.g. the origin) — pay each violated constraint's
        // violation at weight 0.7.
        let origin = Point::ORIGIN;
        let ub: f64 = hps.iter().map(|h| 0.7 * h.violation(origin).max(0.0)).sum();
        prop_assert!(r.cost() <= ub + 1e-6, "cost {} exceeds origin bound {}", r.cost(), ub);
    }
}

/// Monte-Carlo area oracle for the feasible region vs polygon clipping.
#[test]
fn clipped_region_area_matches_monte_carlo() {
    let bounds = Polygon::rectangle(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
    let mut rng = StdRng::seed_from_u64(12345);
    for trial in 0..25 {
        let n = 1 + (trial % 5);
        let hps: Vec<HalfPlane> = (0..n)
            .map(|_| {
                HalfPlane::new(
                    Vec2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)),
                    rng.gen_range(-5.0..8.0),
                )
            })
            .filter(|h| h.a.norm() > 0.1)
            .collect();
        let clipped_area = center::feasible_region(&hps, &bounds)
            .map(|p| p.area())
            .unwrap_or(0.0);
        // Monte-Carlo estimate.
        let samples = 60_000;
        let hits = (0..samples)
            .filter(|_| {
                let p = Point::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
                hps.iter().all(|h| h.contains(p))
            })
            .count();
        let mc_area = hits as f64 / samples as f64 * 400.0;
        let tol = 3.0 * (mc_area.max(1.0)).sqrt() * (400.0 / samples as f64).sqrt() * 20.0;
        assert!(
            (clipped_area - mc_area).abs() < tol.max(1.5),
            "trial {trial}: clipped {clipped_area:.2} vs MC {mc_area:.2}"
        );
    }
}

/// The Chebyshev radius from the LP equals the clearance measured
/// geometrically at the returned center.
#[test]
fn chebyshev_radius_consistency() {
    let bounds = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 6.0));
    let hps = [
        HalfPlane::new(Vec2::new(1.0, 0.2), 7.0),
        HalfPlane::new(Vec2::new(-0.3, 1.0), 4.0),
    ];
    let c = center::chebyshev_center(&hps, &bounds).unwrap();
    let all: Vec<HalfPlane> = hps
        .iter()
        .copied()
        .chain(center::polygon_halfplanes(&bounds))
        .collect();
    let clearance = all
        .iter()
        .map(|h| -h.signed_distance(c))
        .fold(f64::INFINITY, f64::min);
    // The center's clearance must beat any grid probe's.
    let mut best_probe: f64 = f64::NEG_INFINITY;
    for i in 0..=50 {
        for j in 0..=30 {
            let p = Point::new(i as f64 * 0.2, j as f64 * 0.2);
            let cl = all
                .iter()
                .map(|h| -h.signed_distance(p))
                .fold(f64::INFINITY, f64::min);
            best_probe = best_probe.max(cl);
        }
    }
    assert!(
        clearance >= best_probe - 1e-6,
        "center clearance {clearance} below probe {best_probe}"
    );
}
