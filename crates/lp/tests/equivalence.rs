//! Property-based equivalence: workspace simplex vs the dense reference.
//!
//! The flat-tableau [`SimplexWorkspace`] replaces the old standard-form
//! solver (free variables split as `x = x⁺ − x⁻`, fresh `Vec<Vec<f64>>`
//! tableau per solve), which is retained verbatim as
//! [`Program::solve_reference`]. These properties pin the contract of the
//! rewrite: on random programs with mixed free/non-negative variables the
//! two paths must agree on feasibility classification, on the optimal
//! objective to within solver tolerance, and — through the ℓ₁ relaxation —
//! on which constraints get sacrificed.
//!
//! Coefficients for the feasibility tests are drawn from coarse integer
//! grids so that feasible/infeasible is decisively one or the other rather
//! than a 1e-9 coin flip at the Phase-1 tolerance.

use nomloc_geometry::{HalfPlane, Point, Polygon, Vec2};
use nomloc_lp::relax::{relax_constraints, WeightedConstraint, KEPT_SLACK_TOL};
use nomloc_lp::simplex::{Program, SimplexWorkspace};
use proptest::prelude::*;

const OBJ_TOL: f64 = 1e-6;

/// A random program on a coarse integer grid: `n_vars` in 1..=4 with a
/// random free/non-negative split, constraint coefficients in −3..=3 and
/// right-hand sides in −8..=8.
fn coarse_program(
    n_vars: usize,
    free_mask: u8,
    objective: &[i32],
    rows: &[(Vec<i32>, i32)],
    boxed: bool,
) -> Program {
    let mut p = Program::new(n_vars);
    for (j, &c) in objective.iter().take(n_vars).enumerate() {
        p.set_objective(j, c as f64);
        if free_mask & (1 << j) == 0 {
            p.set_nonneg(j);
        }
    }
    for (row, rhs) in rows {
        let coeffs: Vec<f64> = row.iter().take(n_vars).map(|&v| v as f64).collect();
        p.add_le(coeffs, *rhs as f64);
    }
    if boxed {
        // |x_j| ≤ 16 keeps every program bounded, so each case resolves
        // to Ok or Infeasible — never Unbounded.
        for j in 0..n_vars {
            let mut lo = vec![0.0; n_vars];
            let mut hi = vec![0.0; n_vars];
            lo[j] = -1.0;
            hi[j] = 1.0;
            p.add_le(hi, 16.0);
            p.add_le(lo, 16.0);
        }
    }
    p
}

fn prop_same_outcome(p: &Program) -> Result<(), TestCaseError> {
    let new = p.solve();
    let old = p.solve_reference();
    match (&new, &old) {
        (Ok(a), Ok(b)) => {
            prop_assert!(
                (a.objective - b.objective).abs() <= OBJ_TOL,
                "objective mismatch: workspace {} vs reference {}",
                a.objective,
                b.objective
            );
        }
        (Err(ea), Err(eb)) => {
            prop_assert_eq!(
                std::mem::discriminant(ea),
                std::mem::discriminant(eb),
                "error variant mismatch: workspace {:?} vs reference {:?}",
                ea,
                eb
            );
        }
        _ => {
            return Err(TestCaseError::Fail(format!(
                "outcome mismatch: workspace {new:?} vs reference {old:?}"
            )));
        }
    }
    Ok(())
}

proptest! {
    // Bounded programs: every case resolves to Ok or Infeasible, and the
    // two solvers must agree on which — and on the optimum when Ok.
    #[test]
    fn bounded_grid_programs_agree(
        n_vars in 1usize..5,
        free_mask in 0u8..16,
        objective in prop::collection::vec(-3i32..4, 4..5),
        rows in prop::collection::vec(
            (prop::collection::vec(-3i32..4, 4..5), -8i32..9),
            1..9,
        ),
    ) {
        let p = coarse_program(n_vars, free_mask, &objective, &rows, true);
        prop_same_outcome(&p)?;
    }

    // Unboxed programs additionally exercise the Unbounded classification
    // (a mathematical property of the grid data, not a tolerance call).
    #[test]
    fn unboxed_grid_programs_agree(
        n_vars in 1usize..4,
        free_mask in 0u8..8,
        objective in prop::collection::vec(-2i32..3, 3..4),
        rows in prop::collection::vec(
            (prop::collection::vec(-2i32..3, 3..4), -5i32..6),
            1..6,
        ),
    ) {
        let p = coarse_program(n_vars, free_mask, &objective, &rows, false);
        prop_same_outcome(&p)?;
    }

    // The ℓ₁ relaxation (free x,y plus one non-negative slack per
    // constraint) through the workspace must sacrifice exactly the same
    // constraints as the same LP solved by the reference path, with
    // matching total cost. Weights are distinct so the optimal slack
    // vector is (generically) unique.
    #[test]
    fn relaxation_slack_pattern_matches_reference(
        hps in prop::collection::vec(
            (-1.0..1.0f64, -1.0..1.0f64, -6.0..6.0f64),
            1..9,
        ),
    ) {
        let halfplanes: Vec<HalfPlane> = hps
            .iter()
            .filter(|(ax, ay, _)| ax.abs() + ay.abs() > 0.05)
            .map(|&(ax, ay, b)| HalfPlane::new(Vec2::new(ax, ay), b))
            .collect();
        prop_assume!(!halfplanes.is_empty());
        let bounds = Polygon::rectangle(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
        let mut cs: Vec<WeightedConstraint> = halfplanes
            .iter()
            .enumerate()
            .map(|(i, h)| WeightedConstraint::new(*h, 1.0 + 0.37 * i as f64))
            .collect();
        for h in nomloc_lp::center::polygon_halfplanes(&bounds) {
            cs.push(WeightedConstraint::new(h, 1000.0));
        }

        let relaxation = relax_constraints(&cs).unwrap();

        // Reference: the same Eq. 19 LP, built as a Program and solved by
        // the retained dense path. Variables: x, y free; t_i ≥ 0.
        let n = 2 + cs.len();
        let mut p = Program::new(n);
        for (i, c) in cs.iter().enumerate() {
            p.set_objective(2 + i, c.weight);
            p.set_nonneg(2 + i);
            let mut row = vec![0.0; n];
            row[0] = c.halfplane.a.x;
            row[1] = c.halfplane.a.y;
            row[2 + i] = -1.0;
            p.add_le(row, c.halfplane.b);
        }
        let reference = p.solve_reference().unwrap();

        prop_assert!(
            (relaxation.cost() - reference.objective).abs() <= OBJ_TOL,
            "relaxation cost {} vs reference objective {}",
            relaxation.cost(),
            reference.objective
        );
        for (i, &slack) in relaxation.slacks().iter().enumerate() {
            let ref_slack = reference.x[2 + i].max(0.0);
            prop_assert_eq!(
                slack > KEPT_SLACK_TOL,
                ref_slack > KEPT_SLACK_TOL,
                "constraint {} slack pattern: workspace {} vs reference {}",
                i,
                slack,
                ref_slack
            );
        }
    }

    // Warm-started solves never change the answer: a hit must reproduce
    // the cold objective, and a miss must reproduce the cold solve
    // bit-for-bit.
    #[test]
    fn warm_start_never_changes_the_answer(
        rows in prop::collection::vec(
            (prop::collection::vec(-3i32..4, 2..3), -8i32..9),
            1..7,
        ),
        sx in -4i32..5,
        sy in -4i32..5,
    ) {
        let stage = |ws: &mut SimplexWorkspace| {
            ws.begin(2);
            ws.set_objective(0, 1.0);
            ws.set_objective(1, 1.0);
            for (row, rhs) in &rows {
                ws.push_row(*rhs as f64 + 16.0); // keep origin-shifted box feasible
                ws.set_coeff(0, row[0] as f64);
                ws.set_coeff(1, row[1] as f64);
            }
            // Bounding box.
            for (j, s) in [(0, 1.0), (0, -1.0), (1, 1.0), (1, -1.0)] {
                ws.push_row(32.0);
                ws.set_coeff(j, s);
            }
        };
        let mut ws = SimplexWorkspace::new();
        stage(&mut ws);
        let cold = ws.solve();
        stage(&mut ws);
        let warm = ws.solve_from(&[sx as f64, sy as f64]);
        match (&cold, &warm) {
            (Ok(a), Ok(b)) => prop_assert!(
                (a.objective - b.objective).abs() <= OBJ_TOL,
                "warm objective {} vs cold {} (hit: {})",
                b.objective,
                a.objective,
                ws.last_warm_start_hit()
            ),
            _ => prop_assert_eq!(&cold, &warm, "cold/warm outcome mismatch"),
        }
        if !ws.last_warm_start_hit() {
            prop_assert_eq!(cold, warm, "a warm miss must equal the cold solve");
        }
    }
}
