//! Simplex and relaxation edge cases: degenerate ties, unbounded
//! directions, and relaxation when the judgement system is wholly
//! infeasible.

use nomloc_geometry::{HalfPlane, Vec2};
use nomloc_lp::relax::{relax_constraints, WeightedConstraint};
use nomloc_lp::simplex::Program;
use nomloc_lp::LpError;

/// Three constraints meet at the degenerate vertex (1, 1): the optimal
/// basis is not unique and Dantzig pivoting can stall on zero-length
/// steps. The Bland fallback must still reach the optimum.
#[test]
fn degenerate_vertex_tie_is_solved() {
    let mut p = Program::new(2);
    p.set_objective(0, -1.0).set_objective(1, -1.0);
    p.set_nonneg(0).set_nonneg(1);
    p.add_le(vec![1.0, 0.0], 1.0);
    p.add_le(vec![0.0, 1.0], 1.0);
    p.add_le(vec![1.0, 1.0], 2.0); // redundant: active at the same vertex
    let s = p.solve().expect("degenerate LP solves");
    assert!((s.objective + 2.0).abs() < 1e-7);
    assert!((s.x[0] - 1.0).abs() < 1e-7 && (s.x[1] - 1.0).abs() < 1e-7);
}

/// Duplicated rows are the harshest degeneracy: every basis containing one
/// copy ties with the basis containing the other.
#[test]
fn duplicated_constraints_are_harmless() {
    let mut p = Program::new(2);
    p.set_objective(0, -3.0).set_objective(1, -2.0);
    p.set_nonneg(0).set_nonneg(1);
    for _ in 0..4 {
        p.add_le(vec![1.0, 1.0], 5.0);
    }
    p.add_le(vec![1.0, 0.0], 3.0);
    let s = p.solve().expect("duplicated rows solve");
    // Optimum at (3, 2): objective −13.
    assert!((s.objective + 13.0).abs() < 1e-7);
}

/// Degenerate ties must break deterministically: the same program solved
/// twice returns bit-identical solutions (the serving batch path relies on
/// this).
#[test]
fn degenerate_ties_break_deterministically() {
    let build = || {
        let mut p = Program::new(2);
        p.set_objective(0, -1.0).set_objective(1, -1.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_le(vec![1.0, 0.0], 1.0);
        p.add_le(vec![0.0, 1.0], 1.0);
        p.add_le(vec![1.0, 1.0], 2.0);
        p.add_le(vec![2.0, 2.0], 4.0);
        p.solve().expect("solves")
    };
    assert_eq!(build(), build());
}

/// An objective that can ride a feasible ray to −∞ must be rejected as
/// `Unbounded`, not looped on or "solved".
#[test]
fn unbounded_direction_is_rejected() {
    let mut p = Program::new(2);
    p.set_objective(0, -1.0); // maximize x, which is unconstrained above
    p.set_nonneg(0).set_nonneg(1);
    p.add_le(vec![0.0, 1.0], 1.0);
    assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
}

/// A free variable (no non-negativity) with no constraint at all is the
/// minimal unbounded program.
#[test]
fn free_variable_unbounded_is_rejected() {
    let mut p = Program::new(1);
    p.set_objective(0, 1.0);
    assert_eq!(p.solve().unwrap_err(), LpError::Unbounded);
}

/// Relaxation over a wholly infeasible system — every constraint
/// contradicts the others — still returns a witness, pays a positive
/// cost, and the relaxed half-planes contain the witness.
#[test]
fn relaxation_repairs_all_infeasible_system() {
    // x ≤ −1  and  x ≥ 2 (written −x ≤ −2): empty intersection.
    let cs = vec![
        WeightedConstraint::new(HalfPlane::new(Vec2::new(1.0, 0.0), -1.0), 1.0),
        WeightedConstraint::new(HalfPlane::new(Vec2::new(-1.0, 0.0), -2.0), 1.0),
        // Keep y bounded so the LP has a finite optimum.
        WeightedConstraint::new(HalfPlane::new(Vec2::new(0.0, 1.0), 1.0), 1.0),
        WeightedConstraint::new(HalfPlane::new(Vec2::new(0.0, -1.0), 1.0), 1.0),
    ];
    let r = relax_constraints(&cs).expect("relaxation always succeeds");
    assert!(!r.is_exact());
    assert!(r.cost() >= 3.0 - 1e-7, "must pay the full 3-unit gap");
    let w = r.witness();
    for h in r.relaxed_halfplanes() {
        assert!(h.violation(w) <= 1e-7, "witness violates relaxed {h:?}");
    }
}

/// The ℓ₁ objective sacrifices the cheap constraint: with one low-weight
/// and one high-weight side of a contradiction, all slack lands on the
/// low-weight row.
#[test]
fn relaxation_sacrifices_cheapest_constraint() {
    let cs = vec![
        WeightedConstraint::new(HalfPlane::new(Vec2::new(1.0, 0.0), -1.0), 0.1),
        WeightedConstraint::new(HalfPlane::new(Vec2::new(-1.0, 0.0), -2.0), 100.0),
        WeightedConstraint::new(HalfPlane::new(Vec2::new(0.0, 1.0), 1.0), 1.0),
        WeightedConstraint::new(HalfPlane::new(Vec2::new(0.0, -1.0), 1.0), 1.0),
    ];
    let r = relax_constraints(&cs).expect("relaxation succeeds");
    assert!(r.slacks()[0] >= 3.0 - 1e-7, "cheap row takes the slack");
    assert!(r.slacks()[1] <= 1e-7, "expensive row stays tight");
    assert!(
        r.witness().x >= 2.0 - 1e-7,
        "witness obeys the expensive side"
    );
}

/// Zero judgement constraints is a valid (trivially feasible) relaxation
/// input when the caller supplies only boundary rows elsewhere.
#[test]
fn relaxation_of_single_constraint_is_exact() {
    let cs = vec![WeightedConstraint::new(
        HalfPlane::new(Vec2::new(1.0, 1.0), 4.0),
        2.5,
    )];
    let r = relax_constraints(&cs).expect("single constraint");
    assert!(r.is_exact());
    assert_eq!(r.slacks().len(), 1);
    assert!(r.slacks()[0].abs() <= 1e-9);
}

/// Iteration accounting: a degenerate program still reports a positive,
/// finite pivot count, and identical programs report identical counts.
#[test]
fn iteration_counts_are_deterministic() {
    let solve = || {
        let mut p = Program::new(2);
        p.set_objective(0, -1.0).set_objective(1, -2.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_le(vec![1.0, 1.0], 3.0);
        p.add_le(vec![1.0, 1.0], 3.0);
        p.add_le(vec![1.0, 0.0], 2.0);
        p.solve().expect("solves")
    };
    let (a, b) = (solve(), solve());
    assert!(a.iterations > 0);
    assert_eq!(a.iterations, b.iterations);
}
