//! Dense linear-programming solvers for the NomLoc localization pipeline.
//!
//! NomLoc casts location estimation as linear programming (§IV-B of the
//! paper): every relative-proximity judgement is a half-plane constraint,
//! the area boundary contributes virtual-AP half-planes, and nomadic-AP
//! measurements add more. Because judgements can be wrong, the system is
//! often over-constrained, so the paper solves the *weighted relaxation*
//!
//! ```text
//! minimize  wᵀt
//! s.t.      Āz − t ≤ b̄,   t ≥ 0        (Eq. 19)
//! ```
//!
//! and reports "the center of the feasible region" as the position estimate
//! (computed by CVX's interior-point/log-barrier machinery in the original).
//! This crate supplies the equivalent, self-contained machinery:
//!
//! * [`simplex`] — a two-phase dense simplex for general LPs in inequality
//!   form with free and non-negative variables.
//! * [`relax`] — the weighted ℓ₁ constraint relaxation of Eq. 19.
//! * [`center`] — three notions of "center of the feasible region":
//!   Chebyshev center (LP), analytic center (damped Newton on the
//!   log-barrier, matching CVX's behaviour), and exact polygon centroid
//!   (2-D half-plane clipping).
//!
//! # Example
//!
//! ```
//! use nomloc_geometry::{HalfPlane, Vec2};
//! use nomloc_lp::relax::{relax_constraints, WeightedConstraint};
//!
//! // Two contradictory judgements: x ≤ 1 (confident) and −x ≤ −3, i.e.
//! // x ≥ 3 (doubtful). Relaxation sacrifices the low-weight one.
//! let constraints = vec![
//!     WeightedConstraint::new(HalfPlane::new(Vec2::new(1.0, 0.0), 1.0), 0.9),
//!     WeightedConstraint::new(HalfPlane::new(Vec2::new(-1.0, 0.0), -3.0), 0.6),
//!     // Keep the region bounded.
//!     WeightedConstraint::new(HalfPlane::new(Vec2::new(0.0, 1.0), 10.0), 100.0),
//!     WeightedConstraint::new(HalfPlane::new(Vec2::new(0.0, -1.0), 0.0), 100.0),
//!     WeightedConstraint::new(HalfPlane::new(Vec2::new(-1.0, 0.0), 0.0), 100.0),
//! ];
//! let relaxed = relax_constraints(&constraints)?;
//! let slacks = relaxed.slacks();
//! assert!(slacks[0] < 1e-6);        // high-weight constraint kept
//! assert!(slacks[1] > 1.0);         // low-weight constraint relaxed
//! # Ok::<(), nomloc_lp::LpError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod center;
pub mod relax;
pub mod simplex;

use std::fmt;

/// Errors produced by the LP solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpError {
    /// The constraint set admits no solution.
    Infeasible,
    /// The objective is unbounded below over the feasible set.
    Unbounded,
    /// The solver failed to make progress (degenerate numerics).
    Numerical,
    /// The problem dimensions are inconsistent or empty.
    BadProblem,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::Numerical => write!(f, "linear program solver failed numerically"),
            LpError::BadProblem => write!(f, "linear program is malformed"),
        }
    }
}

impl std::error::Error for LpError {}
