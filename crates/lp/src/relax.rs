//! Weighted ℓ₁ constraint relaxation (Eq. 19 of the paper).
//!
//! Erroneous proximity judgements can make the space-partition constraint
//! set `Āz ≤ b̄` empty. NomLoc repairs this by paying, per constraint, a
//! slack `tᵢ ≥ 0` at cost `wᵢ·tᵢ` — the confidence factor `wᵢ` makes
//! doubtful judgements cheap to sacrifice and confident ones expensive:
//!
//! ```text
//! minimize  wᵀt    s.t.  Āz − t ≤ b̄,  t ≥ 0
//! ```
//!
//! When the original system is feasible the optimum is `t = 0` and the
//! relaxation is exact (the equivalence noted below Eq. 19).

use crate::simplex::Program;
use crate::LpError;
use nomloc_geometry::{HalfPlane, Point};

/// One half-plane constraint with its relaxation weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedConstraint {
    /// The geometric constraint `a · z ≤ b`.
    pub halfplane: HalfPlane,
    /// Relaxation cost per unit of violation; must be positive.
    pub weight: f64,
}

impl WeightedConstraint {
    /// Creates a weighted constraint.
    pub const fn new(halfplane: HalfPlane, weight: f64) -> Self {
        WeightedConstraint { halfplane, weight }
    }
}

/// Result of the relaxation LP.
#[derive(Debug, Clone, PartialEq)]
pub struct Relaxation {
    witness: Point,
    slacks: Vec<f64>,
    cost: f64,
    relaxed: Vec<HalfPlane>,
    iterations: u64,
}

impl Relaxation {
    /// A point satisfying every *relaxed* constraint (the LP's `z`).
    ///
    /// This is a vertex of the relaxed region, not yet its center; feed
    /// [`Relaxation::relaxed_halfplanes`] to [`crate::center`] for the
    /// final location estimate.
    pub fn witness(&self) -> Point {
        self.witness
    }

    /// Optimal slack `tᵢ` per constraint, in input order.
    pub fn slacks(&self) -> &[f64] {
        &self.slacks
    }

    /// Total relaxation cost `wᵀt`. Zero iff the original system was
    /// feasible (up to solver tolerance).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// `true` when no constraint needed relaxing.
    pub fn is_exact(&self) -> bool {
        self.cost < 1e-7
    }

    /// The constraints with their optimal slacks applied: `āᵢ·z ≤ b̄ᵢ + tᵢ`.
    ///
    /// This system is guaranteed non-empty (it contains the witness).
    pub fn relaxed_halfplanes(&self) -> &[HalfPlane] {
        &self.relaxed
    }

    /// Simplex iterations the underlying LP spent — feeds the
    /// `simplex_iterations` counter of the serving stats layer.
    pub fn lp_iterations(&self) -> u64 {
        self.iterations
    }
}

/// Solves the weighted relaxation (Eq. 19) for a set of constraints.
///
/// # Errors
///
/// * [`LpError::BadProblem`] — empty input or a non-positive/non-finite
///   weight.
/// * Other [`LpError`] variants are forwarded from the simplex solver;
///   [`LpError::Unbounded`] in particular indicates the constraint set does
///   not bound the plane (callers should always include the area-boundary
///   constraints, which do).
pub fn relax_constraints(constraints: &[WeightedConstraint]) -> Result<Relaxation, LpError> {
    if constraints.is_empty() {
        return Err(LpError::BadProblem);
    }
    if constraints
        .iter()
        .any(|c| c.weight <= 0.0 || c.weight.is_nan() || !c.weight.is_finite())
    {
        return Err(LpError::BadProblem);
    }

    let n = constraints.len();
    // Variables: z = (x, y) free, then t₁…t_N ≥ 0.
    let mut p = Program::new(2 + n);
    for (i, c) in constraints.iter().enumerate() {
        p.set_objective(2 + i, c.weight);
        p.set_nonneg(2 + i);
        // aᵢ·z − tᵢ ≤ bᵢ
        let mut row = vec![0.0; 2 + n];
        row[0] = c.halfplane.a.x;
        row[1] = c.halfplane.a.y;
        row[2 + i] = -1.0;
        p.add_le(row, c.halfplane.b);
    }
    let s = p.solve()?;
    let witness = Point::new(s.x[0], s.x[1]);
    let slacks: Vec<f64> = s.x[2..].iter().map(|&t| t.max(0.0)).collect();
    let relaxed: Vec<HalfPlane> = constraints
        .iter()
        .zip(&slacks)
        .map(|(c, &t)| c.halfplane.relaxed(t + 1e-9))
        .collect();
    Ok(Relaxation {
        witness,
        slacks,
        cost: s.objective,
        relaxed,
        iterations: s.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_geometry::Vec2;

    fn hp(ax: f64, ay: f64, b: f64) -> HalfPlane {
        HalfPlane::new(Vec2::new(ax, ay), b)
    }

    /// A unit-square bounding box as high-weight constraints.
    fn boxed(extra: Vec<WeightedConstraint>) -> Vec<WeightedConstraint> {
        let mut v = vec![
            WeightedConstraint::new(hp(1.0, 0.0, 10.0), 1000.0),
            WeightedConstraint::new(hp(-1.0, 0.0, 0.0), 1000.0),
            WeightedConstraint::new(hp(0.0, 1.0, 10.0), 1000.0),
            WeightedConstraint::new(hp(0.0, -1.0, 0.0), 1000.0),
        ];
        v.extend(extra);
        v
    }

    #[test]
    fn feasible_system_has_zero_cost() {
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 5.0), 0.7),
            WeightedConstraint::new(hp(0.0, 1.0, 5.0), 0.7),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(r.is_exact(), "cost = {}", r.cost());
        assert!(r.slacks().iter().all(|&t| t < 1e-6));
        // Witness satisfies everything.
        for c in &cs {
            assert!(c.halfplane.violation(r.witness()) < 1e-6);
        }
    }

    #[test]
    fn infeasible_system_relaxes_lowest_weight() {
        // x ≤ 2 (w=0.9) vs x ≥ 6 (w=0.55): sacrifice the second.
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 2.0), 0.9),
            WeightedConstraint::new(hp(-1.0, 0.0, -6.0), 0.55),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(!r.is_exact());
        assert!(r.slacks()[4] < 1e-6, "high-weight constraint was relaxed");
        assert!(
            r.slacks()[5] >= 4.0 - 1e-6,
            "low-weight slack {}",
            r.slacks()[5]
        );
        // Cost = w · violation = 0.55 · 4.
        assert!((r.cost() - 2.2).abs() < 1e-5);
    }

    #[test]
    fn weight_order_flips_outcome() {
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 2.0), 0.5),
            WeightedConstraint::new(hp(-1.0, 0.0, -6.0), 0.95),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(r.slacks()[4] >= 4.0 - 1e-6);
        assert!(r.slacks()[5] < 1e-6);
    }

    #[test]
    fn relaxed_halfplanes_contain_witness() {
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 1.0, 1.0), 0.8),
            WeightedConstraint::new(hp(-1.0, -1.0, -5.0), 0.6),
        ]);
        let r = relax_constraints(&cs).unwrap();
        for h in r.relaxed_halfplanes() {
            assert!(h.contains(r.witness()), "{h} excludes witness");
        }
    }

    #[test]
    fn equivalence_with_strict_lp_when_feasible() {
        // Property claimed below Eq. 19: relaxation ≡ original when the
        // original is feasible.
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 2.0, 8.0), 0.7),
            WeightedConstraint::new(hp(-3.0, 1.0, 4.0), 0.9),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(r.is_exact());
        for (c, h) in cs.iter().zip(r.relaxed_halfplanes()) {
            // Relaxed RHS ≈ original RHS.
            assert!((h.b - c.halfplane.b).abs() < 1e-6);
        }
    }

    #[test]
    fn boundary_priority_respected() {
        // A confident judgement pushes the object outside the box; the
        // huge boundary weight must win.
        let cs = boxed(vec![WeightedConstraint::new(hp(-1.0, 0.0, -20.0), 0.99)]);
        let r = relax_constraints(&cs).unwrap();
        // Witness stays within the box; judgement absorbed the slack.
        assert!(r.witness().x <= 10.0 + 1e-6);
        assert!(r.slacks()[4] >= 10.0 - 1e-6);
    }

    #[test]
    fn lp_iterations_surface() {
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 2.0), 0.9),
            WeightedConstraint::new(hp(-1.0, 0.0, -6.0), 0.55),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(r.lp_iterations() > 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(relax_constraints(&[]), Err(LpError::BadProblem));
        let c = WeightedConstraint::new(hp(1.0, 0.0, 1.0), 0.0);
        assert_eq!(relax_constraints(&[c]), Err(LpError::BadProblem));
        let c = WeightedConstraint::new(hp(1.0, 0.0, 1.0), f64::NAN);
        assert_eq!(relax_constraints(&[c]), Err(LpError::BadProblem));
    }

    #[test]
    fn unbounded_without_box() {
        // A single half-plane leaves z unbounded, but the objective only
        // involves t, so the LP itself is bounded (cost 0) — the solver
        // must still return a witness satisfying the constraint.
        let c = WeightedConstraint::new(hp(1.0, 0.0, 1.0), 0.5);
        let r = relax_constraints(&[c]).unwrap();
        assert!(r.is_exact());
        assert!(r.witness().x <= 1.0 + 1e-6);
    }

    #[test]
    fn three_way_conflict_majority_wins() {
        // Three constraints pin x near 1, one outlier wants x ≥ 8.
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 1.0), 0.8),
            WeightedConstraint::new(hp(1.0, 0.0, 1.2), 0.75),
            WeightedConstraint::new(hp(1.0, 0.0, 0.9), 0.7),
            WeightedConstraint::new(hp(-1.0, 0.0, -8.0), 0.85),
        ]);
        let r = relax_constraints(&cs).unwrap();
        // Sacrificing the single outlier costs 0.85·7.1 ≈ 6; sacrificing
        // the three others costs (0.8+0.75+0.7)·7 ≈ 15.8 — outlier loses.
        assert!(r.slacks()[7] > 6.0, "outlier slack {}", r.slacks()[7]);
        assert!(r.witness().x <= 1.0 + 1e-6);
    }
}
