//! Weighted ℓ₁ constraint relaxation (Eq. 19 of the paper).
//!
//! Erroneous proximity judgements can make the space-partition constraint
//! set `Āz ≤ b̄` empty. NomLoc repairs this by paying, per constraint, a
//! slack `tᵢ ≥ 0` at cost `wᵢ·tᵢ` — the confidence factor `wᵢ` makes
//! doubtful judgements cheap to sacrifice and confident ones expensive:
//!
//! ```text
//! minimize  wᵀt    s.t.  Āz − t ≤ b̄,  t ≥ 0
//! ```
//!
//! When the original system is feasible the optimum is `t = 0` and the
//! relaxation is exact (the equivalence noted below Eq. 19).

use crate::center::{self, CenterMethod};
use crate::simplex::SimplexWorkspace;
use crate::LpError;
use nomloc_geometry::{HalfPlane, Point, Polygon};

/// One half-plane constraint with its relaxation weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedConstraint {
    /// The geometric constraint `a · z ≤ b`.
    pub halfplane: HalfPlane,
    /// Relaxation cost per unit of violation; must be positive.
    pub weight: f64,
}

impl WeightedConstraint {
    /// Creates a weighted constraint.
    pub const fn new(halfplane: HalfPlane, weight: f64) -> Self {
        WeightedConstraint { halfplane, weight }
    }
}

/// Result of the relaxation LP.
#[derive(Debug, Clone, PartialEq)]
pub struct Relaxation {
    witness: Point,
    slacks: Vec<f64>,
    cost: f64,
    relaxed: Vec<HalfPlane>,
    iterations: u64,
}

impl Relaxation {
    /// A point satisfying every *relaxed* constraint (the LP's `z`).
    ///
    /// This is a vertex of the relaxed region, not yet its center; feed
    /// [`Relaxation::relaxed_halfplanes`] to [`crate::center`] for the
    /// final location estimate.
    pub fn witness(&self) -> Point {
        self.witness
    }

    /// Optimal slack `tᵢ` per constraint, in input order.
    pub fn slacks(&self) -> &[f64] {
        &self.slacks
    }

    /// Total relaxation cost `wᵀt`. Zero iff the original system was
    /// feasible (up to solver tolerance).
    pub fn cost(&self) -> f64 {
        self.cost
    }

    /// `true` when no constraint needed relaxing.
    pub fn is_exact(&self) -> bool {
        self.cost < 1e-7
    }

    /// The constraints with their optimal slacks applied: `āᵢ·z ≤ b̄ᵢ + tᵢ`.
    ///
    /// This system is guaranteed non-empty (it contains the witness).
    pub fn relaxed_halfplanes(&self) -> &[HalfPlane] {
        &self.relaxed
    }

    /// Simplex iterations the underlying LP spent — feeds the
    /// `simplex_iterations` counter of the serving stats layer.
    pub fn lp_iterations(&self) -> u64 {
        self.iterations
    }
}

/// Solves the weighted relaxation (Eq. 19) for a set of constraints.
///
/// # Errors
///
/// * [`LpError::BadProblem`] — empty input, a non-positive/non-finite
///   weight, or a non-finite constraint coefficient.
/// * Other [`LpError`] variants are forwarded from the simplex solver;
///   [`LpError::Unbounded`] in particular indicates the constraint set does
///   not bound the plane (callers should always include the area-boundary
///   constraints, which do).
pub fn relax_constraints(constraints: &[WeightedConstraint]) -> Result<Relaxation, LpError> {
    SimplexWorkspace::with(|ws| relax_constraints_in(ws, constraints))
}

/// Workspace form of [`relax_constraints`]: the LP is staged directly into
/// `ws`'s flat tableau, so repeated calls (one per venue piece per query)
/// perform no per-solve allocation beyond the returned [`Relaxation`].
///
/// # Errors
///
/// Same contract as [`relax_constraints`].
pub fn relax_constraints_in(
    ws: &mut SimplexWorkspace,
    constraints: &[WeightedConstraint],
) -> Result<Relaxation, LpError> {
    if constraints.is_empty() {
        return Err(LpError::BadProblem);
    }
    if constraints
        .iter()
        .any(|c| c.weight <= 0.0 || c.weight.is_nan() || !c.weight.is_finite())
    {
        return Err(LpError::BadProblem);
    }
    // Non-finite constraint coefficients would otherwise flow into the
    // tableau and surface later as a confusing Numerical/Unbounded error
    // (or a NaN witness); reject them up front as a malformed problem.
    if constraints.iter().any(|c| {
        !c.halfplane.a.x.is_finite() || !c.halfplane.a.y.is_finite() || !c.halfplane.b.is_finite()
    }) {
        return Err(LpError::BadProblem);
    }

    let n = constraints.len();
    // Variables: z = (x, y) free, then t₁…t_N ≥ 0.
    ws.begin(2 + n);
    for (i, c) in constraints.iter().enumerate() {
        ws.set_objective(2 + i, c.weight);
        ws.set_nonneg(2 + i);
        // aᵢ·z − tᵢ ≤ bᵢ
        ws.push_row(c.halfplane.b);
        ws.set_coeff(0, c.halfplane.a.x);
        ws.set_coeff(1, c.halfplane.a.y);
        ws.set_coeff(2 + i, -1.0);
    }
    let s = ws.solve()?;
    let witness = Point::new(s.x[0], s.x[1]);
    let slacks: Vec<f64> = s.x[2..].iter().map(|&t| t.max(0.0)).collect();
    let relaxed: Vec<HalfPlane> = constraints
        .iter()
        .zip(&slacks)
        .map(|(c, &t)| c.halfplane.relaxed(t + 1e-9))
        .collect();
    Ok(Relaxation {
        witness,
        slacks,
        cost: s.objective,
        relaxed,
        iterations: s.iterations,
    })
}

/// Slack threshold under which a constraint counts as *kept* (satisfied by
/// the relaxation, so the center solve should honor it).
pub const KEPT_SLACK_TOL: f64 = 1e-6;

/// Combined result of [`relax_then_center`].
#[derive(Debug, Clone)]
pub struct RelaxedCenter {
    /// The relaxation solve's full result.
    pub relaxation: Relaxation,
    /// Half-planes of the kept candidate constraints (slack ≤
    /// [`KEPT_SLACK_TOL`]), in input order.
    pub kept: Vec<HalfPlane>,
    /// The center of the kept region clipped to the bounds, or `None` when
    /// the center solve failed (callers fall back geometrically).
    pub center: Option<Point>,
    /// Simplex pivots the center solve spent.
    pub center_iterations: u64,
    /// Whether the center solve reused the relaxation witness and skipped
    /// Phase-1.
    pub warm_start_hit: bool,
    /// Phase-1 pivots the warm start avoided.
    pub phase1_pivots_saved: u64,
}

/// The serving pipeline's combined LP entry point: solves the weighted
/// relaxation over `constraints`, keeps the first `candidates` constraints
/// whose optimal slack is ≤ [`KEPT_SLACK_TOL`] (the judgement constraints;
/// trailing boundary constraints are handled by `edges`), then solves the
/// chosen center over `kept ∪ edges` **warm-started at the relaxation
/// witness** — when the witness satisfies the kept system, the center LP
/// skips Phase-1 entirely.
///
/// `edges` must be the interior half-planes of `bounds`
/// ([`center::polygon_halfplanes`]), precomputed once per venue piece.
///
/// # Errors
///
/// Forwards [`relax_constraints_in`] errors. A failing *center* solve is
/// not an error: `center` is simply `None`.
pub fn relax_then_center(
    ws: &mut SimplexWorkspace,
    constraints: &[WeightedConstraint],
    candidates: usize,
    bounds: &Polygon,
    edges: &[HalfPlane],
    method: CenterMethod,
) -> Result<RelaxedCenter, LpError> {
    let relaxation = relax_constraints_in(ws, constraints)?;
    let kept: Vec<HalfPlane> = constraints[..candidates.min(constraints.len())]
        .iter()
        .zip(relaxation.slacks())
        .filter(|&(_, &t)| t <= KEPT_SLACK_TOL)
        .map(|(c, _)| c.halfplane)
        .collect();
    let witness = relaxation.witness();
    let lp_center = match method {
        CenterMethod::Chebyshev => center::chebyshev_center_in(ws, &kept, edges, Some(witness)),
        CenterMethod::Analytic => center::analytic_center_in(ws, &kept, edges, Some(witness)),
        CenterMethod::Centroid => {
            return Ok(RelaxedCenter {
                center: center::polygon_centroid(&kept, bounds).ok(),
                relaxation,
                kept,
                center_iterations: 0,
                warm_start_hit: false,
                phase1_pivots_saved: 0,
            });
        }
    };
    let (center, center_iterations, warm_start_hit, phase1_pivots_saved) = match lp_center {
        Ok(cs) => (
            Some(cs.point),
            cs.iterations,
            cs.warm_start_hit,
            cs.phase1_pivots_saved,
        ),
        Err(_) => (None, 0, false, 0),
    };
    Ok(RelaxedCenter {
        relaxation,
        kept,
        center,
        center_iterations,
        warm_start_hit,
        phase1_pivots_saved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_geometry::Vec2;

    fn hp(ax: f64, ay: f64, b: f64) -> HalfPlane {
        HalfPlane::new(Vec2::new(ax, ay), b)
    }

    /// A unit-square bounding box as high-weight constraints.
    fn boxed(extra: Vec<WeightedConstraint>) -> Vec<WeightedConstraint> {
        let mut v = vec![
            WeightedConstraint::new(hp(1.0, 0.0, 10.0), 1000.0),
            WeightedConstraint::new(hp(-1.0, 0.0, 0.0), 1000.0),
            WeightedConstraint::new(hp(0.0, 1.0, 10.0), 1000.0),
            WeightedConstraint::new(hp(0.0, -1.0, 0.0), 1000.0),
        ];
        v.extend(extra);
        v
    }

    #[test]
    fn feasible_system_has_zero_cost() {
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 5.0), 0.7),
            WeightedConstraint::new(hp(0.0, 1.0, 5.0), 0.7),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(r.is_exact(), "cost = {}", r.cost());
        assert!(r.slacks().iter().all(|&t| t < 1e-6));
        // Witness satisfies everything.
        for c in &cs {
            assert!(c.halfplane.violation(r.witness()) < 1e-6);
        }
    }

    #[test]
    fn infeasible_system_relaxes_lowest_weight() {
        // x ≤ 2 (w=0.9) vs x ≥ 6 (w=0.55): sacrifice the second.
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 2.0), 0.9),
            WeightedConstraint::new(hp(-1.0, 0.0, -6.0), 0.55),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(!r.is_exact());
        assert!(r.slacks()[4] < 1e-6, "high-weight constraint was relaxed");
        assert!(
            r.slacks()[5] >= 4.0 - 1e-6,
            "low-weight slack {}",
            r.slacks()[5]
        );
        // Cost = w · violation = 0.55 · 4.
        assert!((r.cost() - 2.2).abs() < 1e-5);
    }

    #[test]
    fn weight_order_flips_outcome() {
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 2.0), 0.5),
            WeightedConstraint::new(hp(-1.0, 0.0, -6.0), 0.95),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(r.slacks()[4] >= 4.0 - 1e-6);
        assert!(r.slacks()[5] < 1e-6);
    }

    #[test]
    fn relaxed_halfplanes_contain_witness() {
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 1.0, 1.0), 0.8),
            WeightedConstraint::new(hp(-1.0, -1.0, -5.0), 0.6),
        ]);
        let r = relax_constraints(&cs).unwrap();
        for h in r.relaxed_halfplanes() {
            assert!(h.contains(r.witness()), "{h} excludes witness");
        }
    }

    #[test]
    fn equivalence_with_strict_lp_when_feasible() {
        // Property claimed below Eq. 19: relaxation ≡ original when the
        // original is feasible.
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 2.0, 8.0), 0.7),
            WeightedConstraint::new(hp(-3.0, 1.0, 4.0), 0.9),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(r.is_exact());
        for (c, h) in cs.iter().zip(r.relaxed_halfplanes()) {
            // Relaxed RHS ≈ original RHS.
            assert!((h.b - c.halfplane.b).abs() < 1e-6);
        }
    }

    #[test]
    fn boundary_priority_respected() {
        // A confident judgement pushes the object outside the box; the
        // huge boundary weight must win.
        let cs = boxed(vec![WeightedConstraint::new(hp(-1.0, 0.0, -20.0), 0.99)]);
        let r = relax_constraints(&cs).unwrap();
        // Witness stays within the box; judgement absorbed the slack.
        assert!(r.witness().x <= 10.0 + 1e-6);
        assert!(r.slacks()[4] >= 10.0 - 1e-6);
    }

    #[test]
    fn lp_iterations_surface() {
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 2.0), 0.9),
            WeightedConstraint::new(hp(-1.0, 0.0, -6.0), 0.55),
        ]);
        let r = relax_constraints(&cs).unwrap();
        assert!(r.lp_iterations() > 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert_eq!(relax_constraints(&[]), Err(LpError::BadProblem));
        let c = WeightedConstraint::new(hp(1.0, 0.0, 1.0), 0.0);
        assert_eq!(relax_constraints(&[c]), Err(LpError::BadProblem));
        let c = WeightedConstraint::new(hp(1.0, 0.0, 1.0), f64::NAN);
        assert_eq!(relax_constraints(&[c]), Err(LpError::BadProblem));
    }

    #[test]
    fn rejects_non_finite_coefficients() {
        for c in [
            WeightedConstraint::new(hp(f64::NAN, 0.0, 1.0), 0.7),
            WeightedConstraint::new(hp(1.0, f64::INFINITY, 1.0), 0.7),
            WeightedConstraint::new(hp(1.0, 0.0, f64::NEG_INFINITY), 0.7),
        ] {
            assert_eq!(relax_constraints(&boxed(vec![c])), Err(LpError::BadProblem));
        }
    }

    #[test]
    fn unbounded_without_box() {
        // A single half-plane leaves z unbounded, but the objective only
        // involves t, so the LP itself is bounded (cost 0) — the solver
        // must still return a witness satisfying the constraint.
        let c = WeightedConstraint::new(hp(1.0, 0.0, 1.0), 0.5);
        let r = relax_constraints(&[c]).unwrap();
        assert!(r.is_exact());
        assert!(r.witness().x <= 1.0 + 1e-6);
    }

    #[test]
    fn relax_then_center_warm_starts_the_center_lp() {
        let bounds = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let edges = center::polygon_halfplanes(&bounds);
        // Two feasible judgements plus boxed high-weight boundary rows, as
        // the estimator stages them; only the judgements are candidates.
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 6.0), 0.8),
            WeightedConstraint::new(hp(0.0, 1.0, 7.0), 0.7),
        ]);
        let judgements = &cs[4..];
        let mut reordered: Vec<WeightedConstraint> = judgements.to_vec();
        reordered.extend_from_slice(&cs[..4]);
        let mut ws = SimplexWorkspace::new();
        let rc = relax_then_center(
            &mut ws,
            &reordered,
            2,
            &bounds,
            &edges,
            CenterMethod::Chebyshev,
        )
        .unwrap();
        assert_eq!(rc.kept.len(), 2, "feasible judgements are both kept");
        assert!(rc.warm_start_hit, "witness satisfies the kept system");
        let c = rc.center.expect("center solve succeeds");
        assert!(c.x <= 6.0 + 1e-6 && c.y <= 7.0 + 1e-6, "{c}");
        assert!(rc.center_iterations > 0);
        assert_eq!(ws.warm_start_hits(), 1);
    }

    #[test]
    fn relax_then_center_drops_sacrificed_constraints() {
        let bounds = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let edges = center::polygon_halfplanes(&bounds);
        // Contradictory pair: the low-weight x ≥ 6 is sacrificed, so only
        // x ≤ 2 is kept and the center stays in the left strip.
        let cs = vec![
            WeightedConstraint::new(hp(1.0, 0.0, 2.0), 0.9),
            WeightedConstraint::new(hp(-1.0, 0.0, -6.0), 0.55),
        ];
        let mut ws = SimplexWorkspace::new();
        let rc =
            relax_then_center(&mut ws, &cs, 2, &bounds, &edges, CenterMethod::Chebyshev).unwrap();
        assert_eq!(rc.kept.len(), 1);
        let c = rc.center.expect("kept system is feasible");
        assert!(c.x <= 2.0 + 1e-6, "{c}");
    }

    #[test]
    fn relax_then_center_centroid_method_is_lp_free() {
        let bounds = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let edges = center::polygon_halfplanes(&bounds);
        let cs = vec![WeightedConstraint::new(hp(1.0, 0.0, 5.0), 0.8)];
        let mut ws = SimplexWorkspace::new();
        let rc =
            relax_then_center(&mut ws, &cs, 1, &bounds, &edges, CenterMethod::Centroid).unwrap();
        let c = rc.center.expect("clipped region is non-empty");
        assert!(c.distance(Point::new(2.5, 5.0)) < 1e-6, "{c}");
        assert_eq!(rc.center_iterations, 0);
        assert!(!rc.warm_start_hit);
    }

    #[test]
    fn three_way_conflict_majority_wins() {
        // Three constraints pin x near 1, one outlier wants x ≥ 8.
        let cs = boxed(vec![
            WeightedConstraint::new(hp(1.0, 0.0, 1.0), 0.8),
            WeightedConstraint::new(hp(1.0, 0.0, 1.2), 0.75),
            WeightedConstraint::new(hp(1.0, 0.0, 0.9), 0.7),
            WeightedConstraint::new(hp(-1.0, 0.0, -8.0), 0.85),
        ]);
        let r = relax_constraints(&cs).unwrap();
        // Sacrificing the single outlier costs 0.85·7.1 ≈ 6; sacrificing
        // the three others costs (0.8+0.75+0.7)·7 ≈ 15.8 — outlier loses.
        assert!(r.slacks()[7] > 6.0, "outlier slack {}", r.slacks()[7]);
        assert!(r.witness().x <= 1.0 + 1e-6);
    }
}
