//! A two-phase dense simplex solver built around a reusable workspace.
//!
//! Solves LPs in *inequality form*
//!
//! ```text
//! minimize  cᵀx
//! s.t.      Ax ≤ b
//!           xⱼ ≥ 0  for j ∈ nonneg
//! ```
//!
//! where variables not marked non-negative are free.
//!
//! Two implementations live here:
//!
//! * [`SimplexWorkspace`] — the hot path. A single contiguous row-major
//!   tableau that is reused across solves (no per-solve allocation once
//!   warmed up), direct handling of free variables by on-demand column
//!   negation (no `x = x⁺ − x⁻` column doubling), Phase-1 artificials only
//!   for rows whose right-hand side is negative, and a warm-start entry
//!   point ([`SimplexWorkspace::solve_from`]) that shifts free variables by
//!   a known feasible point so the all-slack basis is immediately feasible
//!   and Phase-1 is skipped entirely.
//! * [`Program::solve_reference`] — the previous `Vec<Vec<f64>>`
//!   implementation, retained verbatim as an equivalence oracle for tests
//!   and benches.
//!
//! [`Program::solve`] is a thin wrapper that runs the program through a
//! thread-local [`SimplexWorkspace`], so existing callers keep working and
//! automatically benefit from allocation reuse. Pivoting (Dantzig's rule
//! with an automatic switch to Bland's rule after a stall, Bland tie-breaks
//! in the ratio test) is deterministic: identical inputs take bit-identical
//! pivot sequences and produce bit-identical solutions.
//!
//! The paper relies on the fact that the relaxed SP program (Eq. 19) "can be
//! solved ... within weakly polynomial time"; the simplex here is
//! exponential in the worst case but in practice solves the small, dense
//! programs of NomLoc (tens of rows, 2 + N variables) in microseconds — the
//! `lp_scaling` bench quantifies this.

use crate::LpError;
use std::cell::RefCell;

/// Tolerance for reduced-cost and ratio tests.
const TOL: f64 = 1e-9;

/// A warm-start point is accepted when every shifted right-hand side is at
/// least `−WARM_TOL`; the tiny negatives are clamped to zero, perturbing
/// the program by at most this much (well inside the 1e-6 tolerance
/// contract documented in DESIGN.md).
const WARM_TOL: f64 = 1e-7;

/// Phase-1 declares infeasibility when the artificial objective exceeds
/// this (same threshold as the reference solver).
const PHASE1_TOL: f64 = 1e-7;

/// An LP in inequality form. See the [module docs](self) for conventions.
///
/// # Example
///
/// ```
/// use nomloc_lp::simplex::Program;
///
/// // max x + y over the triangle x,y ≥ 0, x + y ≤ 4  ⇒  minimize −x − y.
/// let mut p = Program::new(2);
/// p.set_objective(0, -1.0).set_objective(1, -1.0);
/// p.set_nonneg(0).set_nonneg(1);
/// p.add_le(vec![1.0, 1.0], 4.0);
/// let s = p.solve()?;
/// assert!((s.objective + 4.0).abs() < 1e-6);
/// # Ok::<(), nomloc_lp::LpError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Objective coefficients (length = number of variables).
    c: Vec<f64>,
    /// Constraint matrix rows.
    a: Vec<Vec<f64>>,
    /// Right-hand sides (length = number of rows).
    b: Vec<f64>,
    /// `true` for variables constrained to be non-negative.
    nonneg: Vec<bool>,
}

/// An optimal solution returned by [`Program::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable values, in the caller's variable order.
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
    /// Simplex pivot-loop iterations spent across both phases — the
    /// solver-effort figure surfaced by the serving stats layer.
    pub iterations: u64,
}

impl Program {
    /// Creates a program with `n_vars` free variables and no constraints.
    pub fn new(n_vars: usize) -> Self {
        Program {
            c: vec![0.0; n_vars],
            a: Vec::new(),
            b: Vec::new(),
            nonneg: vec![false; n_vars],
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.c.len()
    }

    /// Number of constraint rows.
    pub fn n_rows(&self) -> usize {
        self.a.len()
    }

    /// Sets the objective coefficient of variable `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn set_objective(&mut self, j: usize, coeff: f64) -> &mut Self {
        self.c[j] = coeff;
        self
    }

    /// Marks variable `j` as non-negative.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn set_nonneg(&mut self, j: usize) -> &mut Self {
        self.nonneg[j] = true;
        self
    }

    /// Adds the constraint `row · x ≤ rhs`.
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from the variable count.
    pub fn add_le(&mut self, row: Vec<f64>, rhs: f64) -> &mut Self {
        assert_eq!(row.len(), self.c.len(), "row length mismatch");
        self.a.push(row);
        self.b.push(rhs);
        self
    }

    /// Adds the constraint `row · x ≥ rhs` (stored as `−row · x ≤ −rhs`).
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from the variable count.
    pub fn add_ge(&mut self, row: Vec<f64>, rhs: f64) -> &mut Self {
        let neg: Vec<f64> = row.iter().map(|v| -v).collect();
        self.add_le(neg, -rhs)
    }

    /// Adds the equality `row · x = rhs` as a pair of inequalities.
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from the variable count.
    pub fn add_eq(&mut self, row: Vec<f64>, rhs: f64) -> &mut Self {
        self.add_le(row.clone(), rhs);
        self.add_ge(row, rhs)
    }

    /// Solves the program on a thread-local [`SimplexWorkspace`].
    ///
    /// # Errors
    ///
    /// * [`LpError::BadProblem`] — zero variables or non-finite data.
    /// * [`LpError::Infeasible`] — no point satisfies the constraints.
    /// * [`LpError::Unbounded`] — the objective decreases without bound.
    /// * [`LpError::Numerical`] — the pivot loop exceeded its iteration
    ///   budget (pathological degeneracy).
    pub fn solve(&self) -> Result<Solution, LpError> {
        SimplexWorkspace::with(|ws| ws.solve_program(self))
    }

    /// Solves the program with the original `Vec<Vec<f64>>` two-phase
    /// implementation (free variables split as `x = x⁺ − x⁻`, Phase-1 over
    /// one artificial per row).
    ///
    /// Retained as an equivalence oracle: the `equivalence` proptest suite
    /// and the `lp_scaling` bench compare [`Program::solve`] against this
    /// path. Not used by the serving pipeline.
    ///
    /// # Errors
    ///
    /// Same contract as [`Program::solve`].
    pub fn solve_reference(&self) -> Result<Solution, LpError> {
        if self.c.is_empty() {
            return Err(LpError::BadProblem);
        }
        let finite = self.c.iter().all(|v| v.is_finite())
            && self.b.iter().all(|v| v.is_finite())
            && self.a.iter().flatten().all(|v| v.is_finite());
        if !finite {
            return Err(LpError::BadProblem);
        }

        // --- Convert to standard form: min c̃ᵀy, Ãy = b̃, y ≥ 0. ---
        // Column map: for each original variable, either one column
        // (non-negative) or a (+,−) pair (free); then one slack per row.
        let n = self.c.len();
        let m = self.a.len();
        let mut col_of_var: Vec<(usize, Option<usize>)> = Vec::with_capacity(n);
        let mut c_std: Vec<f64> = Vec::new();
        for j in 0..n {
            if self.nonneg[j] {
                col_of_var.push((c_std.len(), None));
                c_std.push(self.c[j]);
            } else {
                col_of_var.push((c_std.len(), Some(c_std.len() + 1)));
                c_std.push(self.c[j]);
                c_std.push(-self.c[j]);
            }
        }
        let slack_base = c_std.len();
        c_std.resize(c_std.len() + m, 0.0);
        let total_cols = c_std.len();

        // Rows: Ãy + s = b̃, with each row flipped if b < 0 so b̃ ≥ 0.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs: Vec<f64> = Vec::with_capacity(m);
        for i in 0..m {
            let mut row = vec![0.0; total_cols];
            for (j, &(pos, neg)) in col_of_var.iter().enumerate() {
                row[pos] = self.a[i][j];
                if let Some(neg) = neg {
                    row[neg] = -self.a[i][j];
                }
            }
            row[slack_base + i] = 1.0;
            let mut b = self.b[i];
            if b < 0.0 {
                for v in &mut row {
                    *v = -*v;
                }
                b = -b;
            }
            rows.push(row);
            rhs.push(b);
        }

        let (y, iterations) = solve_standard(&c_std, &rows, &rhs)?;

        // Map back to the caller's variables.
        let mut x = vec![0.0; n];
        for j in 0..n {
            let (pos, neg) = col_of_var[j];
            x[j] = y[pos] - neg.map_or(0.0, |k| y[k]);
        }
        let objective = self.c.iter().zip(&x).map(|(c, x)| c * x).sum();
        Ok(Solution {
            x,
            objective,
            iterations,
        })
    }
}

thread_local! {
    static WORKSPACE_POOL: RefCell<SimplexWorkspace> = RefCell::new(SimplexWorkspace::new());
}

/// A reusable dense-simplex workspace: builder and solver in one.
///
/// The workspace owns every buffer the solver needs — the staged problem
/// (`c`, `A`, `b`, sign restrictions) and the flat row-major tableau with
/// its basis bookkeeping — and reuses them across solves, so after the
/// first call on a thread, solving a same-sized program performs no heap
/// allocation beyond the returned [`Solution`].
///
/// # Usage
///
/// ```
/// use nomloc_lp::simplex::SimplexWorkspace;
///
/// let mut ws = SimplexWorkspace::new();
/// // min −x − y over x,y ≥ 0, x + y ≤ 4.
/// ws.begin(2);
/// ws.set_objective(0, -1.0);
/// ws.set_objective(1, -1.0);
/// ws.set_nonneg(0);
/// ws.set_nonneg(1);
/// ws.push_row(4.0);
/// ws.set_coeff(0, 1.0);
/// ws.set_coeff(1, 1.0);
/// let s = ws.solve()?;
/// assert!((s.objective + 4.0).abs() < 1e-6);
/// # Ok::<(), nomloc_lp::LpError>(())
/// ```
///
/// # Free variables without column splitting
///
/// Free variables occupy a single column. A nonbasic free column may enter
/// the basis with a reduced cost of either sign: when the profitable
/// direction is negative the column is negated in place (recorded in a
/// per-column sign flag that is undone at extraction). A row whose basic
/// variable is free is *pinned* — free variables have no lower bound to
/// block at, so they never leave the basis once entered, and pinned rows
/// are excluded from the ratio test.
///
/// # Warm starting
///
/// [`SimplexWorkspace::solve_from`] accepts a point for the free variables
/// (a crash basis "seed"). The program is solved in shifted coordinates
/// `x' = x − x₀`; when the shifted origin is feasible (`b − A·x₀ ≥ 0`, up
/// to [`WARM_TOL`](self)) the all-slack basis is immediately feasible and
/// Phase-1 is skipped outright. When it is not, the shift is discarded and
/// the solve proceeds exactly like a cold [`SimplexWorkspace::solve`] —
/// warm starting never changes the result, only the work needed to reach
/// it.
#[derive(Debug, Default)]
pub struct SimplexWorkspace {
    // --- staged problem ---
    /// Variable count of the staged program.
    n: usize,
    /// Objective coefficients, length `n`.
    c: Vec<f64>,
    /// Sign restriction per variable.
    nonneg: Vec<bool>,
    /// Constraint matrix, row-major with stride `n`.
    a: Vec<f64>,
    /// Right-hand sides.
    b: Vec<f64>,

    // --- solver state, reused across solves ---
    /// Tableau width: `n` structural + `m` slack + `m` artificial + rhs.
    width: usize,
    /// Flat row-major tableau, `m × width`.
    t: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Membership flags mirroring `basis`.
    in_basis: Vec<bool>,
    /// Rows whose basic variable is free (pinned: excluded from ratio test).
    row_free: Vec<bool>,
    /// Maintained reduced-cost row, updated O(width) per pivot.
    obj: Vec<f64>,
    /// Scratch copy of the normalized pivot row.
    pivot_copy: Vec<f64>,
    /// Column sign flags for free variables entered "downhill".
    negated: Vec<bool>,
    /// Free-variable shift applied by the active warm start (all zeros on
    /// cold solves).
    shift: Vec<f64>,

    // --- instrumentation ---
    warm_hits: u64,
    warm_misses: u64,
    phase1_pivots_saved: u64,
    last_warm_hit: bool,
    last_phase1_pivots_saved: u64,
}

impl SimplexWorkspace {
    /// Creates an empty workspace; buffers grow on first use and are
    /// retained afterwards.
    pub fn new() -> Self {
        SimplexWorkspace::default()
    }

    /// Runs `f` with this thread's pooled workspace.
    ///
    /// Every thread owns one lazily-created workspace; nested calls (e.g.
    /// a callback that itself solves an LP) fall back to a fresh temporary
    /// workspace, so reentrancy is safe and — because workspace state never
    /// influences results — deterministic.
    pub fn with<R>(f: impl FnOnce(&mut SimplexWorkspace) -> R) -> R {
        WORKSPACE_POOL.with(|cell| match cell.try_borrow_mut() {
            Ok(mut ws) => f(&mut ws),
            Err(_) => f(&mut SimplexWorkspace::new()),
        })
    }

    /// Starts staging a new program with `n_vars` free variables and no
    /// rows. Previous staged data is cleared; allocations are kept.
    pub fn begin(&mut self, n_vars: usize) {
        self.n = n_vars;
        self.c.clear();
        self.c.resize(n_vars, 0.0);
        self.nonneg.clear();
        self.nonneg.resize(n_vars, false);
        self.a.clear();
        self.b.clear();
    }

    /// Sets the objective coefficient of variable `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn set_objective(&mut self, j: usize, coeff: f64) {
        self.c[j] = coeff;
    }

    /// Marks variable `j` as non-negative.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn set_nonneg(&mut self, j: usize) {
        self.nonneg[j] = true;
    }

    /// Appends a constraint row `row · x ≤ rhs` with all-zero coefficients;
    /// fill them with [`SimplexWorkspace::set_coeff`].
    pub fn push_row(&mut self, rhs: f64) {
        self.a.resize(self.a.len() + self.n, 0.0);
        self.b.push(rhs);
    }

    /// Sets coefficient `j` of the most recently pushed row.
    ///
    /// # Panics
    ///
    /// Panics when no row has been pushed or `j` is out of range.
    pub fn set_coeff(&mut self, j: usize, v: f64) {
        assert!(!self.b.is_empty(), "set_coeff before any push_row");
        assert!(j < self.n, "coefficient index out of range");
        let base = self.a.len() - self.n;
        self.a[base + j] = v;
    }

    /// Solves the staged program from a cold start.
    ///
    /// # Errors
    ///
    /// Same contract as [`Program::solve`].
    pub fn solve(&mut self) -> Result<Solution, LpError> {
        self.solve_inner(None)
    }

    /// Solves the staged program warm-started from `start`, a candidate
    /// feasible point. Entries for non-negative variables must be zero
    /// (only free variables can be shifted). See the
    /// [type docs](SimplexWorkspace) for the feasibility rule; an
    /// infeasible `start` silently degrades to a cold solve with an
    /// identical result.
    ///
    /// # Errors
    ///
    /// Same contract as [`Program::solve`].
    pub fn solve_from(&mut self, start: &[f64]) -> Result<Solution, LpError> {
        let usable = start.len() == self.n && start.iter().all(|v| v.is_finite());
        self.solve_inner(if usable { Some(start) } else { None })
    }

    /// Stages `p` into the workspace and solves it (cold).
    ///
    /// # Errors
    ///
    /// Same contract as [`Program::solve`].
    pub fn solve_program(&mut self, p: &Program) -> Result<Solution, LpError> {
        self.begin(p.n_vars());
        self.c.copy_from_slice(&p.c);
        self.nonneg.copy_from_slice(&p.nonneg);
        for (row, &rhs) in p.a.iter().zip(&p.b) {
            self.push_row(rhs);
            let base = self.a.len() - self.n;
            self.a[base..].copy_from_slice(row);
        }
        self.solve_inner(None)
    }

    /// Warm starts accepted since creation (Phase-1 skipped).
    pub fn warm_start_hits(&self) -> u64 {
        self.warm_hits
    }

    /// Warm starts rejected since creation (fell back to a cold solve).
    pub fn warm_start_misses(&self) -> u64 {
        self.warm_misses
    }

    /// Lower-bound estimate of Phase-1 pivots avoided by accepted warm
    /// starts: one per negative-rhs row of each warm-hit solve (the rows a
    /// cold solve would have covered with artificials, each needing at
    /// least one pivot to drive out of the basis).
    pub fn phase1_pivots_saved(&self) -> u64 {
        self.phase1_pivots_saved
    }

    /// Whether the most recent solve accepted its warm start.
    pub fn last_warm_start_hit(&self) -> bool {
        self.last_warm_hit
    }

    /// Phase-1 pivots the most recent solve avoided via warm start.
    pub fn last_phase1_pivots_saved(&self) -> u64 {
        self.last_phase1_pivots_saved
    }

    fn solve_inner(&mut self, warm: Option<&[f64]>) -> Result<Solution, LpError> {
        self.last_warm_hit = false;
        self.last_phase1_pivots_saved = 0;

        let n = self.n;
        let m = self.b.len();
        if n == 0 {
            return Err(LpError::BadProblem);
        }
        let finite = self.c.iter().all(|v| v.is_finite())
            && self.b.iter().all(|v| v.is_finite())
            && self.a.iter().all(|v| v.is_finite());
        if !finite {
            return Err(LpError::BadProblem);
        }
        if m == 0 {
            // No constraints: optimum 0 unless some variable can decrease
            // the objective forever — a free variable with any non-zero
            // cost, or a non-negative one with negative cost.
            let unbounded =
                self.c
                    .iter()
                    .zip(&self.nonneg)
                    .any(|(&c, &nn)| if nn { c < -TOL } else { c.abs() > TOL });
            if unbounded {
                return Err(LpError::Unbounded);
            }
            return Ok(Solution {
                x: vec![0.0; n],
                objective: 0.0,
                iterations: 0,
            });
        }

        // --- Warm-start check: is the shifted origin feasible? ---
        self.shift.clear();
        self.shift.resize(n, 0.0);
        let mut warm_ok = false;
        if let Some(start) = warm {
            debug_assert!(
                start
                    .iter()
                    .zip(&self.nonneg)
                    .all(|(&s, &nn)| !nn || s == 0.0),
                "warm start may only shift free variables"
            );
            warm_ok = self.a.chunks_exact(n).zip(&self.b).all(|(row, &b)| {
                let dot: f64 = row.iter().zip(start).map(|(a, s)| a * s).sum();
                b - dot >= -WARM_TOL
            });
            if warm_ok {
                self.shift.copy_from_slice(start);
                self.warm_hits += 1;
                self.last_warm_hit = true;
                // A cold solve runs Phase-1 only over negative-rhs rows,
                // needing at least one pivot per artificial driven out.
                let saved = self.b.iter().filter(|&&b| b < 0.0).count() as u64;
                self.last_phase1_pivots_saved = saved;
                self.phase1_pivots_saved += saved;
            } else {
                self.warm_misses += 1;
            }
        }

        // --- Build the tableau: [structural | slack | artificial | rhs]. ---
        let width = n + 2 * m + 1;
        self.width = width;
        self.t.clear();
        self.t.resize(m * width, 0.0);
        self.basis.clear();
        self.basis.resize(m, 0);
        self.in_basis.clear();
        self.in_basis.resize(n + 2 * m, false);
        self.row_free.clear();
        self.row_free.resize(m, false);
        self.obj.clear();
        self.obj.resize(width, 0.0);
        self.pivot_copy.clear();
        self.pivot_copy.resize(width, 0.0);
        self.negated.clear();
        self.negated.resize(n, false);

        for (i, row) in self.t.chunks_exact_mut(width).enumerate() {
            let a_row = &self.a[i * n..(i + 1) * n];
            row[..n].copy_from_slice(a_row);
            row[n + i] = 1.0;
            let dot: f64 = a_row.iter().zip(&self.shift).map(|(a, s)| a * s).sum();
            let rhs = self.b[i] - dot;
            // On a warm hit the shifted rhs is ≥ −WARM_TOL by construction;
            // clamp the tolerated tiny negatives so the slack basis is
            // exactly feasible.
            row[width - 1] = if warm_ok { rhs.max(0.0) } else { rhs };
            self.basis[i] = n + i;
            self.in_basis[n + i] = true;
        }

        let mut iterations: u64 = 0;

        // --- Phase 1, only for rows with negative rhs. ---
        let mut need_phase1 = false;
        for (i, row) in self.t.chunks_exact_mut(width).enumerate() {
            if row[width - 1] < 0.0 {
                for v in row.iter_mut() {
                    *v = -*v;
                }
                self.in_basis[n + i] = false;
                let art = n + m + i;
                row[art] = 1.0;
                self.basis[i] = art;
                self.in_basis[art] = true;
                need_phase1 = true;
            }
        }
        if need_phase1 {
            self.build_phase1_obj();
            iterations += self.pivot_loop(n + m)?;
            let art_base = n + m;
            let infeas: f64 = self
                .basis
                .iter()
                .enumerate()
                .filter(|&(_, &bj)| bj >= art_base)
                .map(|(i, _)| self.t[i * width + width - 1])
                .sum();
            if infeas > PHASE1_TOL {
                return Err(LpError::Infeasible);
            }
            // Drive leftover artificial basics out (degenerate rows); a row
            // with no usable column is all-zero (redundant) — harmless.
            for i in 0..m {
                if self.basis[i] >= art_base {
                    let row = &self.t[i * width..i * width + art_base];
                    if let Some(j) = row.iter().position(|v| v.abs() > TOL) {
                        self.pivot(i, j);
                    }
                }
            }
        }

        // --- Phase 2 over structural + slack columns. ---
        self.build_phase2_obj();
        iterations += self.pivot_loop(n + m)?;

        // --- Extract in caller coordinates: undo negation, re-add shift. ---
        let mut x = self.shift.clone();
        for (i, &bj) in self.basis.iter().enumerate() {
            if bj < n {
                let v = self.t[i * width + width - 1];
                x[bj] += if self.negated[bj] { -v } else { v };
            }
        }
        let objective = self.c.iter().zip(&x).map(|(c, x)| c * x).sum();
        Ok(Solution {
            x,
            objective,
            iterations,
        })
    }

    /// Reduced costs for Phase-1 (unit cost on artificials): since every
    /// artificial starts basic, `obj[j] = −Σ_{i: basis[i] artificial} t[i][j]`
    /// plus 1 on the artificial columns themselves.
    fn build_phase1_obj(&mut self) {
        let width = self.width;
        let art_base = self.n + self.b.len();
        self.obj.iter_mut().for_each(|v| *v = 0.0);
        for (i, &bj) in self.basis.iter().enumerate() {
            if bj >= art_base {
                let row = &self.t[i * width..(i + 1) * width];
                for (o, &v) in self.obj.iter_mut().zip(row) {
                    *o -= v;
                }
            }
        }
        for o in &mut self.obj[art_base..art_base + self.b.len()] {
            *o += 1.0;
        }
    }

    /// Reduced costs for Phase-2 from the (sign-adjusted) staged objective.
    fn build_phase2_obj(&mut self) {
        let width = self.width;
        let n = self.n;
        self.obj.iter_mut().for_each(|v| *v = 0.0);
        for j in 0..n {
            self.obj[j] = if self.negated[j] {
                -self.c[j]
            } else {
                self.c[j]
            };
        }
        for (i, &bj) in self.basis.iter().enumerate() {
            if bj < n {
                let cb = if self.negated[bj] {
                    -self.c[bj]
                } else {
                    self.c[bj]
                };
                if cb != 0.0 {
                    let row = &self.t[i * width..(i + 1) * width];
                    for (o, &v) in self.obj.iter_mut().zip(row) {
                        *o -= cb * v;
                    }
                }
            }
        }
    }

    /// Runs the pivot loop until optimality for the maintained reduced-cost
    /// row, scanning columns `0..scan` for entering candidates. Returns the
    /// pivot count.
    fn pivot_loop(&mut self, scan: usize) -> Result<u64, LpError> {
        let m = self.b.len();
        let n = self.n;
        let width = self.width;
        let max_iters = 2000 + 50 * (m + scan);
        let bland_after = max_iters / 2;

        for iter in 0..max_iters {
            // Entering column: Dantzig on the maintained reduced costs,
            // scoring free columns by −|red| (they may enter either way),
            // switching to Bland's first-improving rule after a stall.
            let mut entering: Option<usize> = None;
            let mut best = -TOL;
            for (j, (&red, &nn)) in self
                .obj
                .iter()
                .zip(self.nonneg.iter().chain(std::iter::repeat(&true)))
                .take(scan)
                .enumerate()
            {
                if self.in_basis[j] {
                    continue;
                }
                let score = if nn { red } else { -red.abs() };
                if iter >= bland_after {
                    if score < -TOL {
                        entering = Some(j);
                        break;
                    }
                } else if score < best {
                    best = score;
                    entering = Some(j);
                }
            }
            let Some(e) = entering else {
                return Ok(iter as u64);
            };
            if e < n && !self.nonneg[e] && self.obj[e] > TOL {
                self.negate_column(e);
            }

            // Ratio test over non-pinned rows (Bland ties: smallest basis
            // index). No blocking row ⇒ unbounded: pinned rows never block
            // because their free basic variable can absorb any amount.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..m {
                if self.row_free[i] {
                    continue;
                }
                let te = self.t[i * width + e];
                if te > TOL {
                    let ratio = self.t[i * width + width - 1] / te;
                    if ratio < best_ratio - TOL
                        || (ratio < best_ratio + TOL
                            && leaving.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leaving = Some(i);
                    }
                }
            }
            let Some(l) = leaving else {
                return Err(LpError::Unbounded);
            };
            self.pivot(l, e);
        }
        Err(LpError::Numerical)
    }

    /// Flips the sign of structural column `e` (free variables entering
    /// with positive reduced cost walk the negated column instead).
    fn negate_column(&mut self, e: usize) {
        let width = self.width;
        for row in self.t.chunks_exact_mut(width) {
            row[e] = -row[e];
        }
        self.obj[e] = -self.obj[e];
        self.negated[e] = !self.negated[e];
    }

    /// Pivots the tableau on `(row, col)`, updating the maintained
    /// reduced-cost row and the basis bookkeeping.
    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.width;
        let start = row * width;
        let p = self.t[start + col];
        debug_assert!(p.abs() > 1e-14, "pivot on (near-)zero element");
        for v in &mut self.t[start..start + width] {
            *v /= p;
        }
        self.pivot_copy
            .copy_from_slice(&self.t[start..start + width]);
        for (i, r) in self.t.chunks_exact_mut(width).enumerate() {
            if i == row {
                continue;
            }
            let factor = r[col];
            if factor != 0.0 {
                for (v, &pv) in r.iter_mut().zip(&self.pivot_copy) {
                    *v -= factor * pv;
                }
            }
        }
        let factor = self.obj[col];
        if factor != 0.0 {
            for (o, &pv) in self.obj.iter_mut().zip(&self.pivot_copy) {
                *o -= factor * pv;
            }
        }
        self.in_basis[self.basis[row]] = false;
        self.basis[row] = col;
        self.in_basis[col] = true;
        self.row_free[row] = col < self.n && !self.nonneg[col];
    }
}

/// Solves `min cᵀy s.t. Ry = rhs, y ≥ 0` with `rhs ≥ 0` by two-phase
/// simplex (reference path). Returns the optimal `y` and the total
/// pivot-loop iterations.
fn solve_standard(c: &[f64], rows: &[Vec<f64>], rhs: &[f64]) -> Result<(Vec<f64>, u64), LpError> {
    let m = rows.len();
    let n = c.len();
    if m == 0 {
        // No constraints: optimum is 0 unless some cost is negative
        // (unbounded) — any variable with negative cost can grow forever.
        if c.iter().any(|&ci| ci < -TOL) {
            return Err(LpError::Unbounded);
        }
        return Ok((vec![0.0; n], 0));
    }

    // Tableau with artificial variables appended: columns
    // [0..n) original+slack, [n..n+m) artificial, last column rhs.
    let width = n + m + 1;
    let mut t = vec![vec![0.0; width]; m];
    let mut basis = vec![0usize; m];
    for i in 0..m {
        t[i][..n].copy_from_slice(&rows[i]);
        t[i][n + i] = 1.0;
        t[i][width - 1] = rhs[i];
        basis[i] = n + i;
    }

    // Phase 1: minimize the sum of artificials.
    let mut phase1_cost = vec![0.0; width];
    for c in &mut phase1_cost[n..n + m] {
        *c = 1.0;
    }
    let (opt1, iters1) = run_simplex(&mut t, &mut basis, &phase1_cost, n + m)?;
    if opt1 > PHASE1_TOL {
        return Err(LpError::Infeasible);
    }
    // Drive any artificial still in the basis out (degenerate rows).
    for i in 0..m {
        if basis[i] >= n {
            // Find a non-artificial column with a non-zero entry.
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > TOL) {
                pivot_ref(&mut t, &mut basis, i, j);
            }
            // If none exists, the row is all-zero (redundant) — harmless.
        }
    }

    // Phase 2: original costs; artificial columns are frozen out by
    // restricting the entering-variable scan to the first n columns.
    let mut phase2_cost = vec![0.0; width];
    phase2_cost[..n].copy_from_slice(c);
    let (_, iters2) = run_simplex(&mut t, &mut basis, &phase2_cost, n)?;

    let mut y = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            y[basis[i]] = t[i][width - 1];
        }
    }
    Ok((y, iters1 + iters2))
}

/// Runs the reference simplex pivot loop. `scan_cols` limits which columns
/// may enter the basis. Returns the optimal objective for `cost` and the
/// number of loop iterations spent reaching it.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    scan_cols: usize,
) -> Result<(f64, u64), LpError> {
    let m = t.len();
    let width = t[0].len();
    let max_iters = 2000 + 50 * (m + scan_cols);
    let bland_after = max_iters / 2;

    for iter in 0..max_iters {
        // Reduced costs: c_j − c_Bᵀ B⁻¹ A_j, computed from the tableau.
        let mut entering: Option<usize> = None;
        let mut best = -TOL;
        for j in 0..scan_cols {
            if basis.contains(&j) {
                continue;
            }
            let mut red = cost[j];
            for i in 0..m {
                red -= cost[basis[i]] * t[i][j];
            }
            if iter >= bland_after {
                // Bland: first improving column.
                if red < -TOL {
                    entering = Some(j);
                    break;
                }
            } else if red < best {
                best = red;
                entering = Some(j);
            }
        }
        let Some(e) = entering else {
            // Optimal: compute objective.
            let obj = (0..m)
                .map(|i| cost[basis[i]] * t[i][width - 1])
                .sum::<f64>();
            return Ok((obj, iter as u64));
        };

        // Ratio test (Bland ties: smallest basis index).
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][e] > TOL {
                let ratio = t[i][width - 1] / t[i][e];
                if ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL && leaving.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(l) = leaving else {
            return Err(LpError::Unbounded);
        };
        pivot_ref(t, basis, l, e);
    }
    Err(LpError::Numerical)
}

/// Pivots the reference tableau on `(row, col)`.
fn pivot_ref(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > 1e-14, "pivot on (near-)zero element");
    for v in &mut t[row] {
        *v /= p;
    }
    let pivot_row = t[row].clone();
    for (i, r) in t.iter_mut().enumerate() {
        if i != row {
            let factor = r[col];
            if factor != 0.0 {
                for (v, &pv) in r.iter_mut().zip(&pivot_row) {
                    *v -= factor * pv;
                }
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0.
        // Optimum (2, 6) with value 36 → minimize the negation.
        let mut p = Program::new(2);
        p.set_objective(0, -3.0).set_objective(1, -5.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_le(vec![1.0, 0.0], 4.0);
        p.add_le(vec![0.0, 2.0], 12.0);
        p.add_le(vec![3.0, 2.0], 18.0);
        let s = p.solve().unwrap();
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 6.0);
        assert_near(s.objective, -36.0);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1, y ≥ 0 → (4, 0), value 8?
        // Check: objective 2·4 = 8 at (4,0); (1,3) gives 11. Yes, (4,0).
        let mut p = Program::new(2);
        p.set_objective(0, 2.0).set_objective(1, 3.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_ge(vec![1.0, 1.0], 4.0);
        p.add_ge(vec![1.0, 0.0], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 8.0);
        assert_near(s.x[0], 4.0);
        assert_near(s.x[1], 0.0);
    }

    #[test]
    fn free_variables() {
        // min x s.t. x ≥ −5 (free x) → x = −5.
        let mut p = Program::new(1);
        p.set_objective(0, 1.0);
        p.add_ge(vec![1.0], -5.0);
        let s = p.solve().unwrap();
        assert_near(s.x[0], -5.0);
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + y = 3, x − y ≤ 1, x, y ≥ 0.
        let mut p = Program::new(2);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_eq(vec![1.0, 1.0], 3.0);
        p.add_le(vec![1.0, -1.0], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 3.0);
        assert_near(s.x[0] + s.x[1], 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Program::new(1);
        p.set_nonneg(0);
        p.add_le(vec![1.0], 1.0);
        p.add_ge(vec![1.0], 3.0);
        assert_eq!(p.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Program::new(1);
        p.set_objective(0, -1.0); // min −x, x ≥ 0, no upper bound.
        p.set_nonneg(0);
        p.add_ge(vec![1.0], 0.0);
        assert_eq!(p.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn unbounded_free_variable_no_rows() {
        let mut p = Program::new(1);
        p.set_objective(0, 1.0);
        assert_eq!(p.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn zero_objective_feasibility_check() {
        // Pure feasibility: minimize 0 over a triangle.
        let mut p = Program::new(2);
        p.add_le(vec![1.0, 0.0], 2.0);
        p.add_le(vec![0.0, 1.0], 2.0);
        p.add_ge(vec![1.0, 1.0], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 0.0);
        // The returned point must satisfy all constraints.
        assert!(s.x[0] <= 2.0 + 1e-9);
        assert!(s.x[1] <= 2.0 + 1e-9);
        assert!(s.x[0] + s.x[1] >= 1.0 - 1e-9);
    }

    #[test]
    fn bad_problem_rejected() {
        let p = Program::new(0);
        assert_eq!(p.solve(), Err(LpError::BadProblem));
        let mut p = Program::new(1);
        p.add_le(vec![f64::NAN], 1.0);
        assert_eq!(p.solve(), Err(LpError::BadProblem));
    }

    #[test]
    fn negative_rhs_handled() {
        // min y s.t. −x ≤ −2 (x ≥ 2), y ≥ x − 10, y free, x ≥ 0.
        let mut p = Program::new(2);
        p.set_objective(1, 1.0);
        p.set_nonneg(0);
        p.add_le(vec![-1.0, 0.0], -2.0);
        p.add_le(vec![1.0, -1.0], 10.0);
        let s = p.solve().unwrap();
        assert!(s.x[0] >= 2.0 - 1e-9);
        assert_near(s.objective, s.x[0] - 10.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: many redundant constraints through one vertex.
        let mut p = Program::new(2);
        p.set_objective(0, -1.0).set_objective(1, -1.0);
        p.set_nonneg(0).set_nonneg(1);
        for k in 1..=12 {
            let k = k as f64;
            p.add_le(vec![1.0, k], k); // all pass through (0, 1)… varied slopes
        }
        p.add_le(vec![1.0, 0.0], 1.0);
        let s = p.solve().unwrap();
        // Optimal point satisfies every constraint.
        for k in 1..=12 {
            let k = k as f64;
            assert!(s.x[0] + k * s.x[1] <= k + 1e-6);
        }
        assert!(s.x[0] <= 1.0 + 1e-6);
    }

    #[test]
    fn diet_problem() {
        // min 0.6a + 0.35b s.t. 5a + 7b ≥ 8 (protein), 4a + 2b ≥ 15
        // (iron), a, b ≥ 0. Known optimum at b = 0 intersection region.
        let mut p = Program::new(2);
        p.set_objective(0, 0.6).set_objective(1, 0.35);
        p.set_nonneg(0).set_nonneg(1);
        p.add_ge(vec![5.0, 7.0], 8.0);
        p.add_ge(vec![4.0, 2.0], 15.0);
        let s = p.solve().unwrap();
        // Verify feasibility and optimality against a fine grid search.
        assert!(5.0 * s.x[0] + 7.0 * s.x[1] >= 8.0 - 1e-6);
        assert!(4.0 * s.x[0] + 2.0 * s.x[1] >= 15.0 - 1e-6);
        let mut best = f64::INFINITY;
        let mut i = 0.0;
        while i <= 10.0 {
            let mut j = 0.0;
            while j <= 10.0 {
                if 5.0 * i + 7.0 * j >= 8.0 && 4.0 * i + 2.0 * j >= 15.0 {
                    best = best.min(0.6 * i + 0.35 * j);
                }
                j += 0.01;
            }
            i += 0.01;
        }
        assert!(
            s.objective <= best + 1e-3,
            "{} vs grid {}",
            s.objective,
            best
        );
    }

    #[test]
    fn iterations_reported() {
        let mut p = Program::new(2);
        p.set_objective(0, -3.0).set_objective(1, -5.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_le(vec![1.0, 0.0], 4.0);
        p.add_le(vec![0.0, 2.0], 12.0);
        p.add_le(vec![3.0, 2.0], 18.0);
        let s = p.solve().unwrap();
        // Reaching (2, 6) needs real pivot work in at least one phase.
        assert!(s.iterations > 0, "iterations = {}", s.iterations);
    }

    #[test]
    fn builder_accessors() {
        let mut p = Program::new(3);
        p.add_le(vec![1.0, 0.0, 0.0], 1.0);
        assert_eq!(p.n_vars(), 3);
        assert_eq!(p.n_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn row_length_checked() {
        let mut p = Program::new(2);
        p.add_le(vec![1.0], 1.0);
    }

    // --- SimplexWorkspace-specific tests ---

    /// The textbook LP staged directly on a workspace.
    fn stage_textbook(ws: &mut SimplexWorkspace) {
        ws.begin(2);
        ws.set_objective(0, -3.0);
        ws.set_objective(1, -5.0);
        ws.set_nonneg(0);
        ws.set_nonneg(1);
        ws.push_row(4.0);
        ws.set_coeff(0, 1.0);
        ws.push_row(12.0);
        ws.set_coeff(1, 2.0);
        ws.push_row(18.0);
        ws.set_coeff(0, 3.0);
        ws.set_coeff(1, 2.0);
    }

    #[test]
    fn workspace_builder_matches_program() {
        let mut ws = SimplexWorkspace::new();
        stage_textbook(&mut ws);
        let s = ws.solve().unwrap();
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 6.0);
        assert_near(s.objective, -36.0);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let mut ws = SimplexWorkspace::new();
        stage_textbook(&mut ws);
        let first = ws.solve().unwrap();
        // Solve a differently-shaped program in between to dirty buffers.
        ws.begin(1);
        ws.set_objective(0, 1.0);
        ws.push_row(-3.0);
        ws.set_coeff(0, -1.0);
        ws.solve().unwrap();
        stage_textbook(&mut ws);
        let second = ws.solve().unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn warm_start_hit_skips_phase1_and_matches_cold() {
        // min x + y over the shifted box −7 ≤ x ≤ −3, 2 ≤ y ≤ 6 (free
        // vars, negative rhs everywhere) → cold solve needs Phase-1.
        let stage = |ws: &mut SimplexWorkspace| {
            ws.begin(2);
            ws.set_objective(0, 1.0);
            ws.set_objective(1, 1.0);
            for (ax, ay, b) in [
                (1.0, 0.0, -3.0),
                (-1.0, 0.0, 7.0),
                (0.0, 1.0, 6.0),
                (0.0, -1.0, -2.0),
            ] {
                ws.push_row(b);
                ws.set_coeff(0, ax);
                ws.set_coeff(1, ay);
            }
        };
        let mut ws = SimplexWorkspace::new();
        stage(&mut ws);
        let cold = ws.solve().unwrap();
        assert!(!ws.last_warm_start_hit());
        assert_near(cold.x[0], -7.0);
        assert_near(cold.x[1], 2.0);

        stage(&mut ws);
        let warm = ws.solve_from(&[-5.0, 4.0]).unwrap();
        assert!(ws.last_warm_start_hit());
        // Two rows have negative rhs — the ones cold Phase-1 covers.
        assert_eq!(ws.last_phase1_pivots_saved(), 2);
        assert_eq!(ws.warm_start_hits(), 1);
        assert_near(warm.x[0], cold.x[0]);
        assert_near(warm.x[1], cold.x[1]);
        assert_near(warm.objective, cold.objective);
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
    }

    #[test]
    fn warm_start_miss_falls_back_to_cold_result() {
        let stage = |ws: &mut SimplexWorkspace| {
            ws.begin(1);
            ws.set_objective(0, 1.0);
            ws.push_row(-5.0); // x ≥ 5
            ws.set_coeff(0, -1.0);
            ws.push_row(9.0); // x ≤ 9
            ws.set_coeff(0, 1.0);
        };
        let mut ws = SimplexWorkspace::new();
        stage(&mut ws);
        let cold = ws.solve().unwrap();
        stage(&mut ws);
        let warm = ws.solve_from(&[0.0]).unwrap(); // 0 violates x ≥ 5
        assert!(!ws.last_warm_start_hit());
        assert_eq!(ws.warm_start_misses(), 1);
        assert_eq!(cold, warm, "a missed warm start must not change results");
    }

    #[test]
    fn workspace_matches_reference_on_unit_tests() {
        // Spot-check both paths agree on a mixed free/nonneg program with
        // negative rhs (the shapes the pipeline produces).
        let mut p = Program::new(3);
        p.set_objective(0, 0.3).set_objective(1, -0.2);
        p.set_objective(2, 1.0);
        p.set_nonneg(2);
        p.add_le(vec![1.0, 1.0, -1.0], 4.0);
        p.add_le(vec![-1.0, 2.0, 0.0], -1.0);
        p.add_le(vec![0.0, -1.0, 0.0], 2.0);
        p.add_le(vec![1.0, 0.0, 0.0], 6.0);
        p.add_le(vec![0.0, 1.0, 0.0], 5.0);
        p.add_le(vec![-1.0, 0.0, 0.0], 6.0);
        let a = p.solve().unwrap();
        let b = p.solve_reference().unwrap();
        assert!((a.objective - b.objective).abs() < 1e-6);
    }

    #[test]
    fn thread_local_pool_runs_nested() {
        let outer = SimplexWorkspace::with(|ws| {
            stage_textbook(ws);
            let s = ws.solve().unwrap();
            // Nested use while the pooled workspace is borrowed must still
            // work (falls back to a temporary).
            let inner = SimplexWorkspace::with(|ws2| {
                stage_textbook(ws2);
                ws2.solve().unwrap()
            });
            assert_eq!(s, inner);
            s
        });
        assert_near(outer.objective, -36.0);
    }
}
