//! A two-phase dense simplex solver.
//!
//! Solves LPs in *inequality form*
//!
//! ```text
//! minimize  cᵀx
//! s.t.      Ax ≤ b
//!           xⱼ ≥ 0  for j ∈ nonneg
//! ```
//!
//! where variables not marked non-negative are free. Free variables are
//! split internally (`x = x⁺ − x⁻`), slack variables turn the inequalities
//! into equations, and a Phase-1 artificial-variable pass finds an initial
//! basic feasible solution. Pivoting uses Dantzig's rule with an automatic
//! switch to Bland's rule after a stall, guaranteeing termination.
//!
//! The paper relies on the fact that the relaxed SP program (Eq. 19) "can be
//! solved ... within weakly polynomial time"; the simplex here is
//! exponential in the worst case but in practice solves the small, dense
//! programs of NomLoc (tens of rows, 2 + N variables) in microseconds — the
//! `lp_scaling` bench quantifies this.

use crate::LpError;

/// Tolerance for reduced-cost and ratio tests.
const TOL: f64 = 1e-9;

/// An LP in inequality form. See the [module docs](self) for conventions.
///
/// # Example
///
/// ```
/// use nomloc_lp::simplex::Program;
///
/// // max x + y over the triangle x,y ≥ 0, x + y ≤ 4  ⇒  minimize −x − y.
/// let mut p = Program::new(2);
/// p.set_objective(0, -1.0).set_objective(1, -1.0);
/// p.set_nonneg(0).set_nonneg(1);
/// p.add_le(vec![1.0, 1.0], 4.0);
/// let s = p.solve()?;
/// assert!((s.objective + 4.0).abs() < 1e-6);
/// # Ok::<(), nomloc_lp::LpError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Objective coefficients (length = number of variables).
    c: Vec<f64>,
    /// Constraint matrix rows.
    a: Vec<Vec<f64>>,
    /// Right-hand sides (length = number of rows).
    b: Vec<f64>,
    /// `true` for variables constrained to be non-negative.
    nonneg: Vec<bool>,
}

/// An optimal solution returned by [`Program::solve`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable values, in the caller's variable order.
    pub x: Vec<f64>,
    /// Optimal objective value `cᵀx`.
    pub objective: f64,
    /// Simplex pivot-loop iterations spent across both phases — the
    /// solver-effort figure surfaced by the serving stats layer.
    pub iterations: u64,
}

impl Program {
    /// Creates a program with `n_vars` free variables and no constraints.
    pub fn new(n_vars: usize) -> Self {
        Program {
            c: vec![0.0; n_vars],
            a: Vec::new(),
            b: Vec::new(),
            nonneg: vec![false; n_vars],
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.c.len()
    }

    /// Number of constraint rows.
    pub fn n_rows(&self) -> usize {
        self.a.len()
    }

    /// Sets the objective coefficient of variable `j`.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn set_objective(&mut self, j: usize, coeff: f64) -> &mut Self {
        self.c[j] = coeff;
        self
    }

    /// Marks variable `j` as non-negative.
    ///
    /// # Panics
    ///
    /// Panics when `j` is out of range.
    pub fn set_nonneg(&mut self, j: usize) -> &mut Self {
        self.nonneg[j] = true;
        self
    }

    /// Adds the constraint `row · x ≤ rhs`.
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from the variable count.
    pub fn add_le(&mut self, row: Vec<f64>, rhs: f64) -> &mut Self {
        assert_eq!(row.len(), self.c.len(), "row length mismatch");
        self.a.push(row);
        self.b.push(rhs);
        self
    }

    /// Adds the constraint `row · x ≥ rhs` (stored as `−row · x ≤ −rhs`).
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from the variable count.
    pub fn add_ge(&mut self, row: Vec<f64>, rhs: f64) -> &mut Self {
        let neg: Vec<f64> = row.iter().map(|v| -v).collect();
        self.add_le(neg, -rhs)
    }

    /// Adds the equality `row · x = rhs` as a pair of inequalities.
    ///
    /// # Panics
    ///
    /// Panics when `row.len()` differs from the variable count.
    pub fn add_eq(&mut self, row: Vec<f64>, rhs: f64) -> &mut Self {
        self.add_le(row.clone(), rhs);
        self.add_ge(row, rhs)
    }

    /// Solves the program.
    ///
    /// # Errors
    ///
    /// * [`LpError::BadProblem`] — zero variables or non-finite data.
    /// * [`LpError::Infeasible`] — no point satisfies the constraints.
    /// * [`LpError::Unbounded`] — the objective decreases without bound.
    /// * [`LpError::Numerical`] — the pivot loop exceeded its iteration
    ///   budget (pathological degeneracy).
    pub fn solve(&self) -> Result<Solution, LpError> {
        if self.c.is_empty() {
            return Err(LpError::BadProblem);
        }
        let finite = self.c.iter().all(|v| v.is_finite())
            && self.b.iter().all(|v| v.is_finite())
            && self.a.iter().flatten().all(|v| v.is_finite());
        if !finite {
            return Err(LpError::BadProblem);
        }

        // --- Convert to standard form: min c̃ᵀy, Ãy = b̃, y ≥ 0. ---
        // Column map: for each original variable, either one column
        // (non-negative) or a (+,−) pair (free); then one slack per row.
        let n = self.c.len();
        let m = self.a.len();
        let mut col_of_var: Vec<(usize, Option<usize>)> = Vec::with_capacity(n);
        let mut c_std: Vec<f64> = Vec::new();
        for j in 0..n {
            if self.nonneg[j] {
                col_of_var.push((c_std.len(), None));
                c_std.push(self.c[j]);
            } else {
                col_of_var.push((c_std.len(), Some(c_std.len() + 1)));
                c_std.push(self.c[j]);
                c_std.push(-self.c[j]);
            }
        }
        let slack_base = c_std.len();
        c_std.resize(c_std.len() + m, 0.0);
        let total_cols = c_std.len();

        // Rows: Ãy + s = b̃, with each row flipped if b < 0 so b̃ ≥ 0.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs: Vec<f64> = Vec::with_capacity(m);
        for i in 0..m {
            let mut row = vec![0.0; total_cols];
            for (j, &(pos, neg)) in col_of_var.iter().enumerate() {
                row[pos] = self.a[i][j];
                if let Some(neg) = neg {
                    row[neg] = -self.a[i][j];
                }
            }
            row[slack_base + i] = 1.0;
            let mut b = self.b[i];
            if b < 0.0 {
                for v in &mut row {
                    *v = -*v;
                }
                b = -b;
            }
            rows.push(row);
            rhs.push(b);
        }

        let (y, iterations) = solve_standard(&c_std, &rows, &rhs)?;

        // Map back to the caller's variables.
        let mut x = vec![0.0; n];
        for j in 0..n {
            let (pos, neg) = col_of_var[j];
            x[j] = y[pos] - neg.map_or(0.0, |k| y[k]);
        }
        let objective = self.c.iter().zip(&x).map(|(c, x)| c * x).sum();
        Ok(Solution {
            x,
            objective,
            iterations,
        })
    }
}

/// Solves `min cᵀy s.t. Ry = rhs, y ≥ 0` with `rhs ≥ 0` by two-phase
/// simplex. Returns the optimal `y` and the total pivot-loop iterations.
fn solve_standard(c: &[f64], rows: &[Vec<f64>], rhs: &[f64]) -> Result<(Vec<f64>, u64), LpError> {
    let m = rows.len();
    let n = c.len();
    if m == 0 {
        // No constraints: optimum is 0 unless some cost is negative
        // (unbounded) — any variable with negative cost can grow forever.
        if c.iter().any(|&ci| ci < -TOL) {
            return Err(LpError::Unbounded);
        }
        return Ok((vec![0.0; n], 0));
    }

    // Tableau with artificial variables appended: columns
    // [0..n) original+slack, [n..n+m) artificial, last column rhs.
    let width = n + m + 1;
    let mut t = vec![vec![0.0; width]; m];
    let mut basis = vec![0usize; m];
    for i in 0..m {
        t[i][..n].copy_from_slice(&rows[i]);
        t[i][n + i] = 1.0;
        t[i][width - 1] = rhs[i];
        basis[i] = n + i;
    }

    // Phase 1: minimize the sum of artificials.
    let mut phase1_cost = vec![0.0; width];
    for c in &mut phase1_cost[n..n + m] {
        *c = 1.0;
    }
    let (opt1, iters1) = run_simplex(&mut t, &mut basis, &phase1_cost, n + m)?;
    if opt1 > 1e-7 {
        return Err(LpError::Infeasible);
    }
    // Drive any artificial still in the basis out (degenerate rows).
    for i in 0..m {
        if basis[i] >= n {
            // Find a non-artificial column with a non-zero entry.
            if let Some(j) = (0..n).find(|&j| t[i][j].abs() > TOL) {
                pivot(&mut t, &mut basis, i, j);
            }
            // If none exists, the row is all-zero (redundant) — harmless.
        }
    }

    // Phase 2: original costs; artificial columns are frozen out by
    // restricting the entering-variable scan to the first n columns.
    let mut phase2_cost = vec![0.0; width];
    phase2_cost[..n].copy_from_slice(c);
    let (_, iters2) = run_simplex(&mut t, &mut basis, &phase2_cost, n)?;

    let mut y = vec![0.0; n];
    for i in 0..m {
        if basis[i] < n {
            y[basis[i]] = t[i][width - 1];
        }
    }
    Ok((y, iters1 + iters2))
}

/// Runs the simplex pivot loop. `scan_cols` limits which columns may enter
/// the basis. Returns the optimal objective for `cost` and the number of
/// loop iterations spent reaching it.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    scan_cols: usize,
) -> Result<(f64, u64), LpError> {
    let m = t.len();
    let width = t[0].len();
    let max_iters = 2000 + 50 * (m + scan_cols);
    let bland_after = max_iters / 2;

    for iter in 0..max_iters {
        // Reduced costs: c_j − c_Bᵀ B⁻¹ A_j, computed from the tableau.
        let mut entering: Option<usize> = None;
        let mut best = -TOL;
        for j in 0..scan_cols {
            if basis.contains(&j) {
                continue;
            }
            let mut red = cost[j];
            for i in 0..m {
                red -= cost[basis[i]] * t[i][j];
            }
            if iter >= bland_after {
                // Bland: first improving column.
                if red < -TOL {
                    entering = Some(j);
                    break;
                }
            } else if red < best {
                best = red;
                entering = Some(j);
            }
        }
        let Some(e) = entering else {
            // Optimal: compute objective.
            let obj = (0..m)
                .map(|i| cost[basis[i]] * t[i][width - 1])
                .sum::<f64>();
            return Ok((obj, iter as u64));
        };

        // Ratio test (Bland ties: smallest basis index).
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if t[i][e] > TOL {
                let ratio = t[i][width - 1] / t[i][e];
                if ratio < best_ratio - TOL
                    || (ratio < best_ratio + TOL && leaving.is_some_and(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(l) = leaving else {
            return Err(LpError::Unbounded);
        };
        pivot(t, basis, l, e);
    }
    Err(LpError::Numerical)
}

/// Pivots the tableau on `(row, col)`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > 1e-14, "pivot on (near-)zero element");
    for v in &mut t[row] {
        *v /= p;
    }
    let pivot_row = t[row].clone();
    for (i, r) in t.iter_mut().enumerate() {
        if i != row {
            let factor = r[col];
            if factor != 0.0 {
                for (v, &pv) in r.iter_mut().zip(&pivot_row) {
                    *v -= factor * pv;
                }
            }
        }
    }
    basis[row] = col;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18, x,y ≥ 0.
        // Optimum (2, 6) with value 36 → minimize the negation.
        let mut p = Program::new(2);
        p.set_objective(0, -3.0).set_objective(1, -5.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_le(vec![1.0, 0.0], 4.0);
        p.add_le(vec![0.0, 2.0], 12.0);
        p.add_le(vec![3.0, 2.0], 18.0);
        let s = p.solve().unwrap();
        assert_near(s.x[0], 2.0);
        assert_near(s.x[1], 6.0);
        assert_near(s.objective, -36.0);
    }

    #[test]
    fn minimization_with_ge_rows() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1, y ≥ 0 → (4, 0), value 8?
        // Check: objective 2·4 = 8 at (4,0); (1,3) gives 11. Yes, (4,0).
        let mut p = Program::new(2);
        p.set_objective(0, 2.0).set_objective(1, 3.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_ge(vec![1.0, 1.0], 4.0);
        p.add_ge(vec![1.0, 0.0], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 8.0);
        assert_near(s.x[0], 4.0);
        assert_near(s.x[1], 0.0);
    }

    #[test]
    fn free_variables() {
        // min x s.t. x ≥ −5 (free x) → x = −5.
        let mut p = Program::new(1);
        p.set_objective(0, 1.0);
        p.add_ge(vec![1.0], -5.0);
        let s = p.solve().unwrap();
        assert_near(s.x[0], -5.0);
    }

    #[test]
    fn equality_constraint() {
        // min x + y s.t. x + y = 3, x − y ≤ 1, x, y ≥ 0.
        let mut p = Program::new(2);
        p.set_objective(0, 1.0).set_objective(1, 1.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_eq(vec![1.0, 1.0], 3.0);
        p.add_le(vec![1.0, -1.0], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 3.0);
        assert_near(s.x[0] + s.x[1], 3.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Program::new(1);
        p.set_nonneg(0);
        p.add_le(vec![1.0], 1.0);
        p.add_ge(vec![1.0], 3.0);
        assert_eq!(p.solve(), Err(LpError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Program::new(1);
        p.set_objective(0, -1.0); // min −x, x ≥ 0, no upper bound.
        p.set_nonneg(0);
        p.add_ge(vec![1.0], 0.0);
        assert_eq!(p.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn unbounded_free_variable_no_rows() {
        let mut p = Program::new(1);
        p.set_objective(0, 1.0);
        assert_eq!(p.solve(), Err(LpError::Unbounded));
    }

    #[test]
    fn zero_objective_feasibility_check() {
        // Pure feasibility: minimize 0 over a triangle.
        let mut p = Program::new(2);
        p.add_le(vec![1.0, 0.0], 2.0);
        p.add_le(vec![0.0, 1.0], 2.0);
        p.add_ge(vec![1.0, 1.0], 1.0);
        let s = p.solve().unwrap();
        assert_near(s.objective, 0.0);
        // The returned point must satisfy all constraints.
        assert!(s.x[0] <= 2.0 + 1e-9);
        assert!(s.x[1] <= 2.0 + 1e-9);
        assert!(s.x[0] + s.x[1] >= 1.0 - 1e-9);
    }

    #[test]
    fn bad_problem_rejected() {
        let p = Program::new(0);
        assert_eq!(p.solve(), Err(LpError::BadProblem));
        let mut p = Program::new(1);
        p.add_le(vec![f64::NAN], 1.0);
        assert_eq!(p.solve(), Err(LpError::BadProblem));
    }

    #[test]
    fn negative_rhs_handled() {
        // min y s.t. −x ≤ −2 (x ≥ 2), y ≥ x − 10, y free, x ≥ 0.
        let mut p = Program::new(2);
        p.set_objective(1, 1.0);
        p.set_nonneg(0);
        p.add_le(vec![-1.0, 0.0], -2.0);
        p.add_le(vec![1.0, -1.0], 10.0);
        let s = p.solve().unwrap();
        assert!(s.x[0] >= 2.0 - 1e-9);
        assert_near(s.objective, s.x[0] - 10.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: many redundant constraints through one vertex.
        let mut p = Program::new(2);
        p.set_objective(0, -1.0).set_objective(1, -1.0);
        p.set_nonneg(0).set_nonneg(1);
        for k in 1..=12 {
            let k = k as f64;
            p.add_le(vec![1.0, k], k); // all pass through (0, 1)… varied slopes
        }
        p.add_le(vec![1.0, 0.0], 1.0);
        let s = p.solve().unwrap();
        // Optimal point satisfies every constraint.
        for k in 1..=12 {
            let k = k as f64;
            assert!(s.x[0] + k * s.x[1] <= k + 1e-6);
        }
        assert!(s.x[0] <= 1.0 + 1e-6);
    }

    #[test]
    fn diet_problem() {
        // min 0.6a + 0.35b s.t. 5a + 7b ≥ 8 (protein), 4a + 2b ≥ 15
        // (iron), a, b ≥ 0. Known optimum at b = 0 intersection region.
        let mut p = Program::new(2);
        p.set_objective(0, 0.6).set_objective(1, 0.35);
        p.set_nonneg(0).set_nonneg(1);
        p.add_ge(vec![5.0, 7.0], 8.0);
        p.add_ge(vec![4.0, 2.0], 15.0);
        let s = p.solve().unwrap();
        // Verify feasibility and optimality against a fine grid search.
        assert!(5.0 * s.x[0] + 7.0 * s.x[1] >= 8.0 - 1e-6);
        assert!(4.0 * s.x[0] + 2.0 * s.x[1] >= 15.0 - 1e-6);
        let mut best = f64::INFINITY;
        let mut i = 0.0;
        while i <= 10.0 {
            let mut j = 0.0;
            while j <= 10.0 {
                if 5.0 * i + 7.0 * j >= 8.0 && 4.0 * i + 2.0 * j >= 15.0 {
                    best = best.min(0.6 * i + 0.35 * j);
                }
                j += 0.01;
            }
            i += 0.01;
        }
        assert!(
            s.objective <= best + 1e-3,
            "{} vs grid {}",
            s.objective,
            best
        );
    }

    #[test]
    fn iterations_reported() {
        let mut p = Program::new(2);
        p.set_objective(0, -3.0).set_objective(1, -5.0);
        p.set_nonneg(0).set_nonneg(1);
        p.add_le(vec![1.0, 0.0], 4.0);
        p.add_le(vec![0.0, 2.0], 12.0);
        p.add_le(vec![3.0, 2.0], 18.0);
        let s = p.solve().unwrap();
        // Reaching (2, 6) needs real pivot work in at least one phase.
        assert!(s.iterations > 0, "iterations = {}", s.iterations);
    }

    #[test]
    fn builder_accessors() {
        let mut p = Program::new(3);
        p.add_le(vec![1.0, 0.0, 0.0], 1.0);
        assert_eq!(p.n_vars(), 3);
        assert_eq!(p.n_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn row_length_checked() {
        let mut p = Program::new(2);
        p.add_le(vec![1.0], 1.0);
    }
}
