//! Centers of a feasible region.
//!
//! After relaxation, NomLoc reports "the center point of the region as the
//! approximation result for localization" (§IV-B-1); the original
//! implementation obtains it from CVX's interior-point solver, whose
//! logarithmic barrier converges to the *analytic center*. This module
//! provides that plus two alternatives, selectable via [`CenterMethod`]:
//!
//! * [`chebyshev_center`] — center of the largest inscribed disc, found by
//!   one auxiliary LP. Robust, and a natural "furthest from every wrong
//!   wall" estimate.
//! * [`analytic_center`] — minimizer of `−Σ log(bᵢ − aᵢ·z)` by damped
//!   Newton, the log-barrier center CVX produces.
//! * [`polygon_centroid`] — exact area centroid of the feasible polygon,
//!   recovered by half-plane clipping. Only possible because NomLoc's
//!   decision variable is 2-D.

use crate::simplex::SimplexWorkspace;
use crate::LpError;
use nomloc_geometry::{intersect_halfplanes, HalfPlane, Point, Polygon};

/// Strategy for reducing a feasible region to a single location estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CenterMethod {
    /// Center of the largest inscribed disc (one LP).
    #[default]
    Chebyshev,
    /// Log-barrier analytic center (damped Newton), mirroring the paper's
    /// CVX interior-point implementation.
    Analytic,
    /// Exact area centroid of the feasible polygon (2-D clipping).
    Centroid,
}

/// Computes the chosen center of `{z : aᵢ·z ≤ bᵢ} ∩ bounds`.
///
/// `bounds` keeps the region bounded even when the half-planes alone do
/// not (e.g. with very few APs); pass the floor-plan polygon or a bounding
/// box.
///
/// # Errors
///
/// Returns [`LpError::Infeasible`] when the region is empty, or forwards
/// solver errors.
pub fn center(
    method: CenterMethod,
    halfplanes: &[HalfPlane],
    bounds: &Polygon,
) -> Result<Point, LpError> {
    match method {
        CenterMethod::Chebyshev => chebyshev_center(halfplanes, bounds),
        CenterMethod::Analytic => analytic_center(halfplanes, bounds),
        CenterMethod::Centroid => polygon_centroid(halfplanes, bounds),
    }
}

/// Converts a convex polygon to its edge half-planes (interior side).
pub fn polygon_halfplanes(polygon: &Polygon) -> Vec<HalfPlane> {
    // CCW ring: interior is to the left of each edge, i.e. the outward
    // normal is the right perpendicular of the edge direction.
    polygon
        .edges()
        .filter_map(|e| {
            let d = (e.b - e.a).normalized()?;
            let outward = -d.perp(); // right perpendicular of CCW edge
            Some(HalfPlane::new(outward, outward.dot(e.a.to_vec())))
        })
        .collect()
}

/// Outcome of a workspace-based center solve, carrying the warm-start
/// diagnostics the serving stats layer aggregates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CenterSolve {
    /// The computed center.
    pub point: Point,
    /// Simplex pivots spent by the underlying LP (zero for LP-free paths).
    pub iterations: u64,
    /// Whether the LP accepted its warm-start point and skipped Phase-1.
    pub warm_start_hit: bool,
    /// Phase-1 pivots the warm start avoided (see
    /// [`SimplexWorkspace::phase1_pivots_saved`]).
    pub phase1_pivots_saved: u64,
}

/// Chebyshev center: `max r s.t. aᵢ·z + ‖aᵢ‖·r ≤ bᵢ, r ≥ 0`.
///
/// # Errors
///
/// [`LpError::Infeasible`] when the region is empty; other variants are
/// forwarded from the simplex solver.
pub fn chebyshev_center(halfplanes: &[HalfPlane], bounds: &Polygon) -> Result<Point, LpError> {
    let edges = polygon_halfplanes(bounds);
    SimplexWorkspace::with(|ws| chebyshev_center_in(ws, halfplanes, &edges, None))
        .map(|cs| cs.point)
}

/// Workspace form of [`chebyshev_center`] over an explicit half-plane
/// split: `halfplanes` (typically kept judgement constraints) followed by
/// `edges` (the bounding polygon's interior half-planes, usually
/// precomputed once per venue piece).
///
/// `warm`, when given, seeds the LP at a point believed feasible — the
/// relaxation witness in the serving pipeline — shifting the disc-center
/// variables so Phase-1 is skipped when the point checks out. An
/// infeasible seed silently degrades to a cold solve with an identical
/// result.
///
/// # Errors
///
/// Same contract as [`chebyshev_center`].
pub fn chebyshev_center_in(
    ws: &mut SimplexWorkspace,
    halfplanes: &[HalfPlane],
    edges: &[HalfPlane],
    warm: Option<Point>,
) -> Result<CenterSolve, LpError> {
    // Variables: x, y free; r ≥ 0. Maximize r ⇒ minimize −r.
    ws.begin(3);
    ws.set_objective(2, -1.0);
    ws.set_nonneg(2);
    for h in halfplanes.iter().chain(edges) {
        let norm = h.a.norm();
        if norm < 1e-12 {
            // Degenerate row: constant constraint, either trivially true
            // or makes the problem infeasible.
            if h.b < -1e-9 {
                return Err(LpError::Infeasible);
            }
            continue;
        }
        ws.push_row(h.b);
        ws.set_coeff(0, h.a.x);
        ws.set_coeff(1, h.a.y);
        ws.set_coeff(2, norm);
    }
    let s = match warm {
        Some(w) => ws.solve_from(&[w.x, w.y, 0.0])?,
        None => ws.solve()?,
    };
    if s.x[2] < -1e-9 {
        return Err(LpError::Infeasible);
    }
    Ok(CenterSolve {
        point: Point::new(s.x[0], s.x[1]),
        iterations: s.iterations,
        warm_start_hit: ws.last_warm_start_hit(),
        phase1_pivots_saved: ws.last_phase1_pivots_saved(),
    })
}

/// Analytic center: minimizer of the log-barrier `−Σ log(bᵢ − aᵢ·z)`.
///
/// Seeds Newton's method with the Chebyshev center (guaranteed strictly
/// interior when the region has positive inradius) and runs damped steps
/// with backtracking until the Newton decrement is negligible.
///
/// # Errors
///
/// [`LpError::Infeasible`] when the region is empty or has empty interior;
/// [`LpError::Numerical`] if Newton stalls (ill-conditioned Hessian).
pub fn analytic_center(halfplanes: &[HalfPlane], bounds: &Polygon) -> Result<Point, LpError> {
    let edges = polygon_halfplanes(bounds);
    SimplexWorkspace::with(|ws| analytic_center_in(ws, halfplanes, &edges, None)).map(|cs| cs.point)
}

/// Workspace form of [`analytic_center`]: the Newton seed comes from
/// [`chebyshev_center_in`] (optionally warm-started at `warm`), so the
/// serving pipeline's relaxation witness accelerates this method too.
///
/// # Errors
///
/// Same contract as [`analytic_center`].
pub fn analytic_center_in(
    ws: &mut SimplexWorkspace,
    halfplanes: &[HalfPlane],
    edges: &[HalfPlane],
    warm: Option<Point>,
) -> Result<CenterSolve, LpError> {
    let seed = chebyshev_center_in(ws, halfplanes, edges, warm)?;
    let point = newton_log_barrier(halfplanes, edges, seed.point)?;
    Ok(CenterSolve { point, ..seed })
}

/// Damped-Newton minimization of the log barrier over
/// `halfplanes ∪ edges`, from a strictly interior `start`.
fn newton_log_barrier(
    halfplanes: &[HalfPlane],
    edges: &[HalfPlane],
    start: Point,
) -> Result<Point, LpError> {
    let all: Vec<HalfPlane> = halfplanes.iter().chain(edges).copied().collect();
    let slack_at =
        |z: Point| -> Vec<f64> { all.iter().map(|h| h.b - h.a.dot(z.to_vec())).collect() };
    let s0 = slack_at(start);
    if s0.iter().any(|&s| s <= 1e-12) {
        // Zero inradius: fall back to the (boundary) Chebyshev point.
        return Ok(start);
    }

    let barrier = |z: Point| -> f64 {
        let mut v = 0.0;
        for h in &all {
            let s = h.b - h.a.dot(z.to_vec());
            if s <= 0.0 {
                return f64::INFINITY;
            }
            v -= s.ln();
        }
        v
    };

    let mut z = start;
    for _ in 0..100 {
        // Gradient and Hessian of the barrier.
        let (mut gx, mut gy) = (0.0f64, 0.0f64);
        let (mut hxx, mut hxy, mut hyy) = (0.0f64, 0.0f64, 0.0f64);
        for h in &all {
            let s = h.b - h.a.dot(z.to_vec());
            let inv = 1.0 / s;
            gx += h.a.x * inv;
            gy += h.a.y * inv;
            let inv2 = inv * inv;
            hxx += h.a.x * h.a.x * inv2;
            hxy += h.a.x * h.a.y * inv2;
            hyy += h.a.y * h.a.y * inv2;
        }
        // Newton step: solve H d = −g (2×2).
        let det = hxx * hyy - hxy * hxy;
        if det.abs() < 1e-18 {
            return Err(LpError::Numerical);
        }
        let dx = (-gx * hyy + gy * hxy) / det;
        let dy = (-hxx * gy + hxy * gx) / det;
        let decrement = -(gx * dx + gy * dy);
        if decrement < 1e-12 {
            break;
        }
        // Backtracking line search on the barrier value.
        let f0 = barrier(z);
        let mut t = 1.0;
        let mut accepted = false;
        for _ in 0..60 {
            let cand = Point::new(z.x + t * dx, z.y + t * dy);
            if barrier(cand) < f0 - 0.25 * t * decrement + 1e-15 {
                z = cand;
                accepted = true;
                break;
            }
            t *= 0.5;
        }
        if !accepted {
            break;
        }
    }
    Ok(z)
}

/// Exact centroid of the feasible polygon `bounds ∩ {aᵢ·z ≤ bᵢ}`.
///
/// # Errors
///
/// [`LpError::Infeasible`] when the clipped region is empty.
pub fn polygon_centroid(halfplanes: &[HalfPlane], bounds: &Polygon) -> Result<Point, LpError> {
    let region = intersect_halfplanes(bounds, halfplanes).ok_or(LpError::Infeasible)?;
    Ok(region.centroid())
}

/// The feasible polygon itself, when non-empty.
///
/// Useful for diagnostics and for the feasibility illustrations of Fig. 5.
pub fn feasible_region(halfplanes: &[HalfPlane], bounds: &Polygon) -> Option<Polygon> {
    intersect_halfplanes(bounds, halfplanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_geometry::Vec2;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    fn hp(ax: f64, ay: f64, b: f64) -> HalfPlane {
        HalfPlane::new(Vec2::new(ax, ay), b)
    }

    #[test]
    fn polygon_halfplanes_describe_interior() {
        let hps = polygon_halfplanes(&square());
        assert_eq!(hps.len(), 4);
        let inside = Point::new(5.0, 5.0);
        let outside = Point::new(11.0, 5.0);
        assert!(hps.iter().all(|h| h.contains(inside)));
        assert!(hps.iter().any(|h| !h.contains(outside)));
    }

    #[test]
    fn chebyshev_center_of_square() {
        let c = chebyshev_center(&[], &square()).unwrap();
        assert!(c.distance(Point::new(5.0, 5.0)) < 1e-6, "{c}");
    }

    #[test]
    fn chebyshev_center_of_halved_square() {
        let c = chebyshev_center(&[hp(1.0, 0.0, 4.0)], &square()).unwrap();
        // Left 4×10 strip: inscribed circle center (2, y) with any
        // y ∈ [2, 8]; x must be 2.
        assert!((c.x - 2.0).abs() < 1e-6, "{c}");
        assert!((2.0..=8.0).contains(&c.y));
    }

    #[test]
    fn chebyshev_infeasible() {
        let hps = [hp(1.0, 0.0, 2.0), hp(-1.0, 0.0, -8.0)];
        assert_eq!(chebyshev_center(&hps, &square()), Err(LpError::Infeasible));
    }

    #[test]
    fn analytic_center_of_square_is_middle() {
        let c = analytic_center(&[], &square()).unwrap();
        assert!(c.distance(Point::new(5.0, 5.0)) < 1e-4, "{c}");
    }

    #[test]
    fn analytic_center_strictly_interior() {
        let hps = [hp(1.0, 0.0, 3.0), hp(0.0, 1.0, 7.0)];
        let c = analytic_center(&hps, &square()).unwrap();
        for h in hps.iter().chain(polygon_halfplanes(&square()).iter()) {
            assert!(h.violation(c) < -1e-6, "{h} not strictly satisfied at {c}");
        }
    }

    #[test]
    fn analytic_center_matches_symmetry() {
        // A symmetric triangle: x ≥ 0, y ≥ 0, x + y ≤ 3 has analytic
        // center at (1, 1) (gradient of barrier vanishes by symmetry).
        let tri = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
        ])
        .unwrap();
        let c = analytic_center(&[], &tri).unwrap();
        assert!(c.distance(Point::new(1.0, 1.0)) < 1e-4, "{c}");
    }

    #[test]
    fn centroid_method_matches_polygon_centroid() {
        let c = polygon_centroid(&[hp(1.0, 0.0, 5.0)], &square()).unwrap();
        assert!(c.distance(Point::new(2.5, 5.0)) < 1e-6);
    }

    #[test]
    fn centroid_infeasible() {
        let hps = [hp(1.0, 0.0, -1.0)];
        assert_eq!(polygon_centroid(&hps, &square()), Err(LpError::Infeasible));
    }

    #[test]
    fn center_dispatch() {
        for m in [
            CenterMethod::Chebyshev,
            CenterMethod::Analytic,
            CenterMethod::Centroid,
        ] {
            let c = center(m, &[], &square()).unwrap();
            assert!(c.distance(Point::new(5.0, 5.0)) < 1e-4, "{m:?} → {c}");
        }
    }

    #[test]
    fn all_methods_return_feasible_points() {
        let hps = [hp(1.0, 1.0, 12.0), hp(-1.0, 2.0, 8.0), hp(0.3, -1.0, 1.0)];
        let region = feasible_region(&hps, &square()).unwrap();
        for m in [
            CenterMethod::Chebyshev,
            CenterMethod::Analytic,
            CenterMethod::Centroid,
        ] {
            let c = center(m, &hps, &square()).unwrap();
            assert!(region.contains(c), "{m:?} center {c} outside region");
        }
    }

    #[test]
    fn degenerate_zero_row_handled() {
        // 0·z ≤ 1 is trivially true; 0·z ≤ −1 is impossible.
        let ok = chebyshev_center(&[hp(0.0, 0.0, 1.0)], &square());
        assert!(ok.is_ok());
        let bad = chebyshev_center(&[hp(0.0, 0.0, -1.0)], &square());
        assert_eq!(bad, Err(LpError::Infeasible));
    }

    #[test]
    fn chebyshev_warm_start_matches_cold() {
        let edges = polygon_halfplanes(&square());
        let hps = [hp(1.0, 0.0, 4.0)];
        let mut ws = SimplexWorkspace::new();
        let cold = chebyshev_center_in(&mut ws, &hps, &edges, None).unwrap();
        assert!(!cold.warm_start_hit);
        let warm = chebyshev_center_in(&mut ws, &hps, &edges, Some(Point::new(1.0, 1.0))).unwrap();
        assert!(warm.warm_start_hit);
        // Left 4×10 strip: the inscribed-disc x is pinned at 2 for both.
        assert!((cold.point.x - 2.0).abs() < 1e-6, "{}", cold.point);
        assert!((warm.point.x - 2.0).abs() < 1e-6, "{}", warm.point);
    }

    #[test]
    fn chebyshev_infeasible_warm_seed_degrades_to_cold() {
        let edges = polygon_halfplanes(&square());
        let mut ws = SimplexWorkspace::new();
        let cold = chebyshev_center_in(&mut ws, &[], &edges, None).unwrap();
        // A seed outside the square cannot be accepted, but must not
        // change the result.
        let miss = chebyshev_center_in(&mut ws, &[], &edges, Some(Point::new(-50.0, 3.0))).unwrap();
        assert!(!miss.warm_start_hit);
        assert_eq!(cold.point, miss.point);
        assert_eq!(cold.iterations, miss.iterations);
    }

    #[test]
    fn analytic_center_in_matches_wrapper() {
        let edges = polygon_halfplanes(&square());
        let hps = [hp(1.0, 0.0, 3.0), hp(0.0, 1.0, 7.0)];
        let via_wrapper = analytic_center(&hps, &square()).unwrap();
        let mut ws = SimplexWorkspace::new();
        let direct = analytic_center_in(&mut ws, &hps, &edges, None).unwrap();
        assert!(via_wrapper.distance(direct.point) < 1e-9);
    }

    #[test]
    fn feasible_region_area_shrinks_with_constraints() {
        let r0 = feasible_region(&[], &square()).unwrap().area();
        let r1 = feasible_region(&[hp(1.0, 0.0, 5.0)], &square())
            .unwrap()
            .area();
        let r2 = feasible_region(&[hp(1.0, 0.0, 5.0), hp(0.0, 1.0, 5.0)], &square())
            .unwrap()
            .area();
        assert!(r0 > r1 && r1 > r2);
        assert!((r2 - 25.0).abs() < 1e-9);
    }
}
