//! Deterministic, seedable fault injection for the NomLoc serving stack.
//!
//! A [`FaultPlan`] holds one seed and a per-fault-class rate. Every fault
//! decision is a *pure function* of `(seed, stage, request_id)` — there is
//! no mutable RNG state — so any two parties holding the same plan agree on
//! exactly which requests are faulted and how. The chaos driver uses this
//! to corrupt a request on the client side while the verifier (and the
//! daemon's panic injector) independently predict the same fault from the
//! request id alone.
//!
//! Fault classes span the whole stack:
//!
//! * **measurement layer** — corrupt CSI payloads ([`CsiCorruption`]:
//!   NaN/Inf values, zeroed subcarriers, empty or length-mismatched
//!   coefficient vectors) and dropped per-site readings ([`DropMode`]);
//! * **wire layer** — truncated, bit-flipped, duplicated, or delayed
//!   frames, and connections killed mid-exchange;
//! * **compute layer** — panics injected into batch processing
//!   ([`FaultClass::InjectPanic`]), exercising the daemon's `catch_unwind`
//!   isolation and batcher watchdog.
//!
//! At most one class fires per request ([`FaultPlan::classify`] draws once
//! against the cumulative rates), which keeps chaos-run verification crisp:
//! each request has a single expected outcome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

/// The fault class assigned to one request (at most one per request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// No fault: the request must be answered bit-identically to a
    /// fault-free run.
    None,
    /// One CSI report is corrupted ([`CsiCorruption`] picks how); the
    /// server must answer a typed `Malformed` error.
    CorruptCsi,
    /// Per-site readings are dropped ([`DropMode`] picks how many); the
    /// server must answer with a degraded-quality estimate.
    DropReadings,
    /// The request frame is cut short and the connection closed; the
    /// client retries the intact frame on a fresh connection.
    TruncateFrame,
    /// One payload byte of the request frame is flipped; the server
    /// answers a protocol-level `Malformed` and closes, and the client
    /// retries intact.
    CorruptFrame,
    /// The request frame is sent twice; the server answers twice and the
    /// client keeps the first reply.
    DuplicateFrame,
    /// The request frame is written in two chunks with a pause between
    /// them, exercising the server's incremental decoder.
    DelayFrame,
    /// The connection is closed right after the request is written, losing
    /// the reply; the client retries on a fresh connection.
    KillConnection,
    /// The daemon panics while solving the batch containing this request;
    /// the request must be answered with a typed `Internal` error and its
    /// batch-mates must be unaffected.
    InjectPanic,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::None => "none",
            FaultClass::CorruptCsi => "corrupt-csi",
            FaultClass::DropReadings => "drop-readings",
            FaultClass::TruncateFrame => "truncate-frame",
            FaultClass::CorruptFrame => "corrupt-frame",
            FaultClass::DuplicateFrame => "duplicate-frame",
            FaultClass::DelayFrame => "delay-frame",
            FaultClass::KillConnection => "kill-connection",
            FaultClass::InjectPanic => "inject-panic",
        };
        write!(f, "{s}")
    }
}

/// All non-`None` fault classes, in the order `classify` walks them.
pub const FAULT_CLASSES: [FaultClass; 8] = [
    FaultClass::CorruptCsi,
    FaultClass::DropReadings,
    FaultClass::TruncateFrame,
    FaultClass::CorruptFrame,
    FaultClass::DuplicateFrame,
    FaultClass::DelayFrame,
    FaultClass::KillConnection,
    FaultClass::InjectPanic,
];

/// How a `CorruptCsi` fault mangles the request.
///
/// Every mode produces a request the server must *reject with a typed
/// error* — never panic on, never answer as if it were clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsiCorruption {
    /// The AP's reported position becomes NaN.
    NanPosition,
    /// One subcarrier offset becomes +∞.
    InfOffset,
    /// The subcarrier offsets are reversed (not strictly ascending).
    DescendingOffsets,
    /// The channel-coefficient vector is emptied while the grid stays.
    EmptyH,
    /// One coefficient is removed, so `h` and the grid disagree in length.
    MismatchedH,
    /// Every channel coefficient is zeroed *and* one offset becomes NaN —
    /// the "dead radio with a corrupt header" case.
    ZeroedSubcarriers,
}

const CSI_CORRUPTIONS: [CsiCorruption; 6] = [
    CsiCorruption::NanPosition,
    CsiCorruption::InfOffset,
    CsiCorruption::DescendingOffsets,
    CsiCorruption::EmptyH,
    CsiCorruption::MismatchedH,
    CsiCorruption::ZeroedSubcarriers,
];

/// How a `DropReadings` fault thins the request's reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropMode {
    /// Keep only the first report — too few for any pairwise judgement,
    /// forcing the weighted-centroid fallback tier.
    KeepOne,
    /// Drop every report — the estimate degenerates to the
    /// site-constraints-only (area) region tier.
    DropAll,
}

/// SplitMix64 finalizer: the avalanche permutation the whole workspace
/// uses for index-keyed determinism (`Campaign::parallel`, the synthetic
/// workload, and now fault decisions).
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes two words into one well-distributed word (two SplitMix64 rounds).
#[must_use]
pub fn mix64(a: u64, b: u64) -> u64 {
    splitmix64(splitmix64(a).wrapping_add(b))
}

/// Maps a mixed word to the unit interval `[0, 1)`.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Per-decision stream tags, so the classification draw and each
/// parameter draw (which byte to flip, where to truncate…) are
/// independent functions of the request id.
mod stream {
    pub const CLASSIFY: u64 = 1;
    pub const CSI_MODE: u64 = 2;
    pub const DROP_MODE: u64 = 3;
    pub const TRUNCATE: u64 = 4;
    pub const FLIP_INDEX: u64 = 5;
    pub const FLIP_MASK: u64 = 6;
    pub const DELAY_SPLIT: u64 = 7;
    pub const REPORT_INDEX: u64 = 8;
    pub const STALE_SESSION: u64 = 9;
}

/// A seeded fault-injection plan: one rate per fault class.
///
/// Rates are probabilities in `[0, 1]`; their sum must not exceed 1 (each
/// request draws a single uniform variate against the cumulative rates).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Rate of [`FaultClass::CorruptCsi`].
    pub corrupt_csi: f64,
    /// Rate of [`FaultClass::DropReadings`].
    pub drop_readings: f64,
    /// Rate of [`FaultClass::TruncateFrame`].
    pub truncate_frame: f64,
    /// Rate of [`FaultClass::CorruptFrame`].
    pub corrupt_frame: f64,
    /// Rate of [`FaultClass::DuplicateFrame`].
    pub duplicate_frame: f64,
    /// Rate of [`FaultClass::DelayFrame`].
    pub delay_frame: f64,
    /// Rate of [`FaultClass::KillConnection`].
    pub kill_connection: f64,
    /// Rate of [`FaultClass::InjectPanic`].
    pub inject_panic: f64,
    /// Rate of the *stale session* fault: before the request is sent,
    /// every tracked session on the server is force-expired, as if the
    /// TTL sweeper had reclaimed them all. Orthogonal to the per-request
    /// class draw (it perturbs server-side state, not the frame), so it
    /// composes with any [`FaultClass`] and does not count against the
    /// cumulative rate budget.
    pub stale_session: f64,
}

impl FaultPlan {
    /// A plan that injects nothing (every rate zero).
    #[must_use]
    pub fn disabled(seed: u64) -> Self {
        FaultPlan {
            seed,
            corrupt_csi: 0.0,
            drop_readings: 0.0,
            truncate_frame: 0.0,
            corrupt_frame: 0.0,
            duplicate_frame: 0.0,
            delay_frame: 0.0,
            kill_connection: 0.0,
            inject_panic: 0.0,
            stale_session: 0.0,
        }
    }

    /// A plan giving every fault class the same `rate`.
    ///
    /// `rate` is clamped so the eight classes sum to at most 1.
    #[must_use]
    pub fn uniform(seed: u64, rate: f64) -> Self {
        let r = rate.clamp(0.0, 1.0 / FAULT_CLASSES.len() as f64);
        FaultPlan {
            seed,
            corrupt_csi: r,
            drop_readings: r,
            truncate_frame: r,
            corrupt_frame: r,
            duplicate_frame: r,
            delay_frame: r,
            kill_connection: r,
            inject_panic: r,
            stale_session: r,
        }
    }

    /// The per-class rates in [`FAULT_CLASSES`] order.
    #[must_use]
    pub fn rates(&self) -> [f64; 8] {
        [
            self.corrupt_csi,
            self.drop_readings,
            self.truncate_frame,
            self.corrupt_frame,
            self.duplicate_frame,
            self.delay_frame,
            self.kill_connection,
            self.inject_panic,
        ]
    }

    /// Sum of all rates (the probability any fault fires per request).
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.rates().iter().sum()
    }

    /// Checks every rate is a probability and the total does not exceed 1.
    ///
    /// # Errors
    ///
    /// Returns a user-facing message naming the violation.
    pub fn validate(&self) -> Result<(), String> {
        for (class, r) in FAULT_CLASSES.iter().zip(self.rates()) {
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("fault rate for {class} is {r}, not in [0, 1]"));
            }
        }
        let total = self.total_rate();
        if total > 1.0 + 1e-12 {
            return Err(format!("fault rates sum to {total}, which exceeds 1"));
        }
        if !(0.0..=1.0).contains(&self.stale_session) {
            return Err(format!(
                "stale-session rate is {}, not in [0, 1]",
                self.stale_session
            ));
        }
        Ok(())
    }

    fn draw(&self, stream: u64, request_id: u64) -> u64 {
        mix64(mix64(self.seed, stream), request_id)
    }

    /// The fault class assigned to `request_id` — a pure function of
    /// `(seed, request_id)`, so every holder of the plan agrees.
    #[must_use]
    pub fn classify(&self, request_id: u64) -> FaultClass {
        let u = unit(self.draw(stream::CLASSIFY, request_id));
        let mut cum = 0.0;
        for (class, rate) in FAULT_CLASSES.iter().zip(self.rates()) {
            cum += rate.clamp(0.0, 1.0);
            if u < cum {
                return *class;
            }
        }
        FaultClass::None
    }

    /// Whether the stale-session fault fires before `request_id` is sent
    /// — a pure function of `(seed, request_id)`, drawn on its own stream
    /// so it is independent of [`FaultPlan::classify`].
    #[must_use]
    pub fn stale_session_fires(&self, request_id: u64) -> bool {
        unit(self.draw(stream::STALE_SESSION, request_id)) < self.stale_session
    }

    /// The corruption mode a `CorruptCsi` fault applies to `request_id`.
    #[must_use]
    pub fn csi_corruption(&self, request_id: u64) -> CsiCorruption {
        let d = self.draw(stream::CSI_MODE, request_id);
        CSI_CORRUPTIONS[(d % CSI_CORRUPTIONS.len() as u64) as usize]
    }

    /// Which of the request's `n_reports` reports the corruption targets.
    #[must_use]
    pub fn target_report(&self, request_id: u64, n_reports: usize) -> usize {
        if n_reports == 0 {
            return 0;
        }
        (self.draw(stream::REPORT_INDEX, request_id) % n_reports as u64) as usize
    }

    /// The drop mode a `DropReadings` fault applies to `request_id`.
    #[must_use]
    pub fn drop_mode(&self, request_id: u64) -> DropMode {
        if self.draw(stream::DROP_MODE, request_id) & 1 == 0 {
            DropMode::KeepOne
        } else {
            DropMode::DropAll
        }
    }

    /// How many leading bytes of a `frame_len`-byte frame survive a
    /// `TruncateFrame` fault (at least 1, strictly less than the frame).
    #[must_use]
    pub fn truncate_len(&self, request_id: u64, frame_len: usize) -> usize {
        if frame_len <= 1 {
            return 0;
        }
        1 + (self.draw(stream::TRUNCATE, request_id) % (frame_len as u64 - 1)) as usize
    }

    /// The `(byte index, XOR mask)` a `CorruptFrame` fault applies.
    /// The mask is never zero, so the frame always actually changes and
    /// the CRC (or a header invariant) must catch it.
    #[must_use]
    pub fn corrupt_byte(&self, request_id: u64, frame_len: usize) -> (usize, u8) {
        let idx = (self.draw(stream::FLIP_INDEX, request_id) % frame_len.max(1) as u64) as usize;
        let mask = (self.draw(stream::FLIP_MASK, request_id) % 255 + 1) as u8;
        (idx, mask)
    }

    /// Where a `DelayFrame` fault splits the frame and how long it pauses
    /// between the two writes.
    #[must_use]
    pub fn delay_split(&self, request_id: u64, frame_len: usize) -> (usize, Duration) {
        let d = self.draw(stream::DELAY_SPLIT, request_id);
        let split = if frame_len <= 1 {
            0
        } else {
            1 + (d % (frame_len as u64 - 1)) as usize
        };
        // 1–5 ms: long enough to force two reads server-side, short
        // enough to keep chaos runs fast.
        let millis = 1 + (d >> 32) % 5;
        (split, Duration::from_millis(millis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan::uniform(7, 0.02)
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let a = plan();
        let b = plan();
        for id in 0..10_000u64 {
            assert_eq!(a.classify(id), b.classify(id));
            assert_eq!(a.csi_corruption(id), b.csi_corruption(id));
            assert_eq!(a.drop_mode(id), b.drop_mode(id));
            assert_eq!(a.truncate_len(id, 64), b.truncate_len(id, 64));
            assert_eq!(a.corrupt_byte(id, 64), b.corrupt_byte(id, 64));
            assert_eq!(a.delay_split(id, 64), b.delay_split(id, 64));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::uniform(1, 0.1);
        let b = FaultPlan::uniform(2, 0.1);
        let disagreements = (0..10_000u64)
            .filter(|&id| a.classify(id) != b.classify(id))
            .count();
        assert!(disagreements > 0, "seeds 1 and 2 produced identical plans");
    }

    #[test]
    fn disabled_plan_never_faults() {
        let p = FaultPlan::disabled(99);
        assert_eq!(p.total_rate(), 0.0);
        for id in 0..5_000u64 {
            assert_eq!(p.classify(id), FaultClass::None);
        }
    }

    #[test]
    fn rates_land_near_expectation() {
        let p = FaultPlan::uniform(42, 0.05);
        let n = 40_000u64;
        let faulted = (0..n)
            .filter(|&id| p.classify(id) != FaultClass::None)
            .count() as f64;
        let expect = p.total_rate() * n as f64;
        assert!(
            (faulted - expect).abs() < 0.15 * expect,
            "observed {faulted}, expected ≈{expect}"
        );
        // Every class actually fires at this rate and sample size.
        for class in FAULT_CLASSES {
            assert!(
                (0..n).any(|id| p.classify(id) == class),
                "{class} never fired"
            );
        }
    }

    #[test]
    fn uniform_clamps_to_a_valid_plan() {
        let p = FaultPlan::uniform(3, 0.9);
        p.validate().unwrap();
        assert!(p.total_rate() <= 1.0 + 1e-12);
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let mut p = FaultPlan::disabled(1);
        p.corrupt_csi = -0.1;
        assert!(p.validate().is_err());
        p.corrupt_csi = 0.8;
        p.inject_panic = 0.7;
        assert!(p.validate().is_err(), "sum exceeds 1");
    }

    #[test]
    fn frame_fault_parameters_stay_in_bounds() {
        let p = FaultPlan::uniform(11, 0.125);
        for id in 0..2_000u64 {
            let len = 16 + (id as usize % 200);
            let t = p.truncate_len(id, len);
            assert!((1..len).contains(&t), "truncate_len {t} of {len}");
            let (idx, mask) = p.corrupt_byte(id, len);
            assert!(idx < len);
            assert_ne!(mask, 0);
            let (split, delay) = p.delay_split(id, len);
            assert!((1..len).contains(&split));
            assert!(delay >= Duration::from_millis(1));
            assert!(delay <= Duration::from_millis(5));
            assert!(p.target_report(id, 5) < 5);
        }
    }

    #[test]
    fn classification_is_single_draw() {
        // classify assigns at most one class; the cumulative walk means
        // raising one rate to 1 captures every request.
        let mut p = FaultPlan::disabled(5);
        p.corrupt_csi = 1.0;
        for id in 0..100u64 {
            assert_eq!(p.classify(id), FaultClass::CorruptCsi);
        }
    }

    #[test]
    fn stale_session_is_an_independent_stream() {
        let p = FaultPlan::uniform(17, 0.05);
        let n = 40_000u64;
        let fired = (0..n).filter(|&id| p.stale_session_fires(id)).count() as f64;
        let expect = p.stale_session * n as f64;
        assert!(
            (fired - expect).abs() < 0.2 * expect,
            "observed {fired}, expected ≈{expect}"
        );
        // It composes with the class draw: some stale-session firings must
        // coincide with a non-None class (they are independent draws).
        assert!(
            (0..n).any(|id| p.stale_session_fires(id) && p.classify(id) != FaultClass::None),
            "stale-session never overlapped a frame fault"
        );
        // Determinism across holders of the same plan.
        let q = FaultPlan::uniform(17, 0.05);
        for id in 0..5_000u64 {
            assert_eq!(p.stale_session_fires(id), q.stale_session_fires(id));
        }
        let mut bad = FaultPlan::disabled(1);
        bad.stale_session = 1.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn display_names_are_kebab() {
        assert_eq!(FaultClass::InjectPanic.to_string(), "inject-panic");
        assert_eq!(FaultClass::None.to_string(), "none");
    }
}
