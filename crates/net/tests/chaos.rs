//! Chaos tests: the daemon keeps serving under every fault class, answers
//! every non-faulted request bit-identically to a fault-free in-process
//! run, answers every faulted request with the typed error or degraded
//! tier its class demands, and never permanently loses a batcher thread.
//!
//! All tests speak the real wire protocol against a real daemon on
//! `127.0.0.1:0`, with the same seeded [`FaultPlan`] held by the client,
//! the daemon, and the verifier.
//!
//! Every test is parameterized over **both socket backends** (the
//! `backend_tests!` macro expands each into a `threaded` and an
//! `event_loop` case; the hostile property tests run each case against a
//! long-lived daemon per backend): the fault contract is a property of
//! the serving tier, not of how sockets are pumped.

use nomloc_core::localizability;
use nomloc_core::scenario::Venue;
use nomloc_core::server::CsiReport;
use nomloc_core::{ApSite, LocalizationServer};
use nomloc_faults::{FaultClass, FaultPlan};
use nomloc_geometry::Point;
use nomloc_net::chaos::{self, ChaosConfig};
use nomloc_net::sessions::{session_tracker, PREDICTED_ERROR_WIDENING, SESSION_TICK_SECONDS};
use nomloc_net::wire::{
    decode_frame, frame_to_vec, ErrorReply, LocateRequest, WireEstimate, WireReport, WireSnapshot,
};
use nomloc_net::{spawn, DaemonConfig, DaemonHandle, ErrorCode, Frame, SocketBackend};
use nomloc_rfsim::{Environment, RadioConfig, SubcarrierGrid};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Expands each listed test body `fn name(backend: SocketBackend)` into a
/// module with a `#[test]` per backend.
macro_rules! backend_tests {
    ($($name:ident),+ $(,)?) => {$(
        mod $name {
            use super::SocketBackend;

            #[test]
            fn threaded() {
                super::$name(SocketBackend::Threaded);
            }

            #[test]
            fn event_loop() {
                super::$name(SocketBackend::EventLoop);
            }
        }
    )+};
}

backend_tests!(
    every_fault_class_upholds_its_contract,
    mixed_chaos_run_answers_every_request,
    killed_batchers_are_respawned_without_losing_requests,
    pooled_reply_buffers_never_leak_stale_bytes,
    chaos_runs_are_deterministic_in_the_seed,
    warm_sessions_survive_payload_corruption,
    rate_one_drop_readings_never_degrades_a_warm_session,
    killed_connections_resume_their_session,
    batcher_respawns_lose_no_sessions,
    sessioned_chaos_crosses_no_wires,
    single_queue_oracle_survives_the_fault_matrix,
    sessioned_kills_are_bit_identical_across_queue_layouts,
);

fn lab_server() -> LocalizationServer {
    LocalizationServer::new(Venue::lab().plan.boundary().clone()).with_workers(1)
}

/// A realistic workload: each request carries one CSI report per static
/// AP, for a different test site per request.
fn workload(n: usize) -> Vec<Vec<CsiReport>> {
    let venue = Venue::lab();
    let env = Environment::new(venue.plan.clone(), RadioConfig::default());
    let grid = SubcarrierGrid::intel5300();
    (0..n)
        .map(|r| {
            let object = venue.test_sites[r % venue.test_sites.len()];
            let mut rng = StdRng::seed_from_u64(r as u64);
            venue
                .static_deployment()
                .iter()
                .enumerate()
                .map(|(i, &ap)| CsiReport {
                    site: ApSite::fixed(i + 1, ap),
                    burst: env.sample_csi_burst(object, ap, &grid, 2, &mut rng),
                })
                .collect()
        })
        .collect()
}

/// The fault-free replies an identically configured in-process server
/// gives — the bit-identity reference.
fn baseline(requests: &[Vec<CsiReport>]) -> Vec<Result<WireEstimate, ErrorReply>> {
    let server = lab_server();
    requests
        .iter()
        .map(|r| match server.process(r) {
            Ok(est) => Ok(WireEstimate::from_core(&est)),
            Err(e) => Err(ErrorReply {
                code: ErrorCode::from_estimate_error(&e),
                message: e.to_string(),
            }),
        })
        .collect()
}

fn spawn_daemon(
    plan: Option<FaultPlan>,
    kill_batcher_every: u64,
    backend: SocketBackend,
) -> DaemonHandle {
    spawn_daemon_with_shards(
        plan,
        kill_batcher_every,
        backend,
        DaemonConfig::default().queue_shards,
    )
}

/// [`spawn_daemon`] with an explicit dispatch layout: `queue_shards: 1`
/// selects the legacy single-queue oracle, `> 1` the sharded plane.
fn spawn_daemon_with_shards(
    plan: Option<FaultPlan>,
    kill_batcher_every: u64,
    backend: SocketBackend,
    queue_shards: usize,
) -> DaemonHandle {
    spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 2,
            fault_plan: plan,
            kill_batcher_every,
            socket_backend: backend,
            queue_shards,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon")
}

/// A plan that assigns `class` to every request (rate 1 on that class).
fn single_class_plan(seed: u64, class: FaultClass) -> FaultPlan {
    let mut plan = FaultPlan::disabled(seed);
    match class {
        FaultClass::CorruptCsi => plan.corrupt_csi = 1.0,
        FaultClass::DropReadings => plan.drop_readings = 1.0,
        FaultClass::TruncateFrame => plan.truncate_frame = 1.0,
        FaultClass::CorruptFrame => plan.corrupt_frame = 1.0,
        FaultClass::DuplicateFrame => plan.duplicate_frame = 1.0,
        FaultClass::DelayFrame => plan.delay_frame = 1.0,
        FaultClass::KillConnection => plan.kill_connection = 1.0,
        FaultClass::InjectPanic => plan.inject_panic = 1.0,
        FaultClass::None => {}
    }
    plan
}

/// Every fault class, injected at rate 1 so each request in the run hits
/// it: the daemon must uphold that class's contract on all of them.
fn every_fault_class_upholds_its_contract(backend: SocketBackend) {
    const N: usize = 8;
    let requests = workload(N);
    let reference = baseline(&requests);
    for class in nomloc_faults::FAULT_CLASSES {
        let plan = single_class_plan(42, class);
        let handle = spawn_daemon(Some(plan), 0, backend);
        let config = ChaosConfig::new(plan);
        let report = chaos::run(handle.local_addr(), &config, &requests)
            .unwrap_or_else(|e| panic!("chaos run failed under {class}: {e}"));
        let health = handle.shutdown();
        let summary = report
            .verify(&config, &reference)
            .unwrap_or_else(|v| panic!("contract violated under {class}: {v:?}"));
        assert_eq!(summary.total, N);
        assert_eq!(summary.faulted, N, "rate-1 plan must fault everything");
        assert_eq!(
            health.batchers_respawned, 0,
            "no batcher may die under {class} (panics are caught in place)"
        );
        if class == FaultClass::InjectPanic {
            assert!(health.batch_panics >= N as u64, "panic guard never fired");
            assert_eq!(health.requests_internal, N as u64);
        }
    }
}

/// A mixed-rate plan over a bigger run: every request is answered, the
/// non-faulted majority bit-identically, and the summary accounts for
/// every request.
fn mixed_chaos_run_answers_every_request(backend: SocketBackend) {
    const N: usize = 64;
    let requests = workload(N);
    let reference = baseline(&requests);
    let plan = FaultPlan::uniform(7, 0.04);
    let handle = spawn_daemon(Some(plan), 0, backend);
    let config = ChaosConfig::new(plan);
    let report = chaos::run(handle.local_addr(), &config, &requests).expect("chaos run completes");
    let health = handle.shutdown();
    assert_eq!(report.outcomes.len(), N, "every request got a reply");
    let summary = report
        .verify(&config, &reference)
        .unwrap_or_else(|v| panic!("contract violated: {v:?}"));
    assert!(summary.faulted > 0, "seed 7 at 4 %/class faults something");
    assert_eq!(
        summary.bit_identical + summary.typed_errors + summary.degraded,
        N,
        "every request is accounted for exactly once"
    );
    assert_eq!(health.batchers_respawned, 0);
}

/// The kill knob murders batchers mid-run; the watchdog respawns every
/// one of them, the dying batcher's requeued requests are still answered,
/// and all replies stay bit-identical to the fault-free baseline.
fn killed_batchers_are_respawned_without_losing_requests(backend: SocketBackend) {
    const N: usize = 24;
    let requests = workload(N);
    let reference = baseline(&requests);
    let plan = FaultPlan::disabled(3);
    let handle = spawn_daemon(None, 3, backend);
    let config = ChaosConfig::new(plan);
    let report = chaos::run(handle.local_addr(), &config, &requests)
        .expect("every request answered despite batcher deaths");
    let health = handle.shutdown();
    let summary = report
        .verify(&config, &reference)
        .unwrap_or_else(|v| panic!("kill knob broke replies: {v:?}"));
    assert_eq!(summary.bit_identical, N, "all replies bit-identical");
    assert!(
        health.batchers_respawned > 0,
        "kill-every-3 over {N} batches must kill at least one batcher"
    );
}

// ---------------------------------------------------------------------
// Hostile-CSI property tests: no request payload — however malformed or
// numerically pathological — may crash the daemon or go unanswered.
// ---------------------------------------------------------------------

/// One long-lived daemon per backend, shared by all proptest cases and
/// never shut down (the process exits at test end). Reusing one address
/// also proves the daemon survived every previous hostile case.
fn hostile_daemon_addr(backend: SocketBackend) -> SocketAddr {
    static THREADED: OnceLock<SocketAddr> = OnceLock::new();
    static EVENT_LOOP: OnceLock<SocketAddr> = OnceLock::new();
    let slot = match backend {
        SocketBackend::Threaded => &THREADED,
        SocketBackend::EventLoop => &EVENT_LOOP,
    };
    *slot.get_or_init(|| {
        let handle = spawn_daemon(None, 0, backend);
        let addr = handle.local_addr();
        std::mem::forget(handle);
        addr
    })
}

fn next_request_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Interprets raw bits as an `f64` — covers NaNs, infinities, subnormals.
fn bits(v: u64) -> f64 {
    f64::from_bits(v)
}

/// A report whose every float is a raw bit pattern — mostly rejected at
/// the wire layer as `Malformed`.
fn raw_report(seed: u64, subcarriers: usize) -> WireReport {
    let mix = |i: u64| nomloc_faults::mix64(seed, i);
    WireReport {
        ap: seed,
        visit: seed >> 9,
        x: bits(mix(1)),
        y: bits(mix(2)),
        burst: vec![WireSnapshot {
            offsets_hz: (0..subcarriers).map(|i| bits(mix(10 + i as u64))).collect(),
            h: (0..subcarriers)
                .map(|i| (bits(mix(100 + i as u64)), bits(mix(200 + i as u64))))
                .collect(),
        }],
    }
}

/// A report that *passes* wire validation (finite position, strictly
/// ascending finite offsets, matching `h` length) but carries raw-bit
/// channel coefficients — NaN/∞/subnormal values that flow all the way
/// into the PDP and estimator stages.
fn shaped_hostile_report(seed: u64, subcarriers: usize) -> WireReport {
    let mix = |i: u64| nomloc_faults::mix64(seed, i);
    let magnitudes = [0.0, 1.0e-308, 1.0, 1.0e300, -1.0e300, 5.5];
    WireReport {
        ap: seed % 7,
        visit: 0,
        x: magnitudes[(mix(1) % 6) as usize],
        y: magnitudes[(mix(2) % 6) as usize],
        burst: vec![WireSnapshot {
            offsets_hz: (0..subcarriers).map(|i| i as f64 * 312_500.0).collect(),
            h: (0..subcarriers)
                .map(|i| (bits(mix(100 + i as u64)), bits(mix(200 + i as u64))))
                .collect(),
        }],
    }
}

/// Sends one request and insists on exactly one well-formed reply with
/// the matching id. Any hang, crash, or mismatched reply fails the test.
fn expect_reply(addr: SocketAddr, reports: Vec<WireReport>) -> Result<(), TestCaseError> {
    let request_id = next_request_id();
    let frame = Frame::LocateRequest(LocateRequest {
        request_id,
        deadline_us: 0,
        venue_id: 0,
        session_id: 0,
        reports,
    });
    let mut stream = TcpStream::connect(addr).expect("connect to hostile daemon");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("set read timeout");
    stream
        .write_all(&frame_to_vec(&frame))
        .expect("send request");
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    loop {
        match decode_frame(&buf) {
            Ok((Frame::LocateResponse(resp), _)) => {
                prop_assert_eq!(resp.request_id, request_id, "reply for the wrong request");
                return Ok(());
            }
            Ok((other, _)) => {
                return Err(TestCaseError::Fail(format!("unexpected frame: {other:?}")))
            }
            Err(nomloc_net::WireError::Incomplete { .. }) => {}
            Err(e) => return Err(TestCaseError::Fail(format!("malformed reply: {e}"))),
        }
        let got = stream.read(&mut tmp).expect("read reply (daemon alive?)");
        prop_assert!(got > 0, "daemon closed the connection without replying");
        buf.extend_from_slice(&tmp[..got]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Raw-bit reports — NaN positions, descending offsets, the lot —
    /// always draw a reply (typically a typed `Malformed` error) and
    /// never take the daemon down, on either socket backend.
    #[test]
    fn hostile_raw_reports_are_always_answered(
        seeds in prop::collection::vec(0u64..u64::MAX, 0..4),
        subcarriers in 0usize..5,
    ) {
        for backend in [SocketBackend::Threaded, SocketBackend::EventLoop] {
            let addr = hostile_daemon_addr(backend);
            let reports: Vec<_> =
                seeds.iter().map(|&s| raw_report(s, subcarriers)).collect();
            expect_reply(addr, reports)?;
        }
    }

    /// Wire-valid reports with pathological channel coefficients reach
    /// the DSP and estimator stages; the daemon still answers every one
    /// (degraded estimate or typed error) and never panics — on either
    /// socket backend.
    #[test]
    fn hostile_but_wire_valid_reports_are_always_answered(
        seeds in prop::collection::vec(0u64..u64::MAX, 1..5),
        subcarriers in 1usize..6,
    ) {
        for backend in [SocketBackend::Threaded, SocketBackend::EventLoop] {
            let addr = hostile_daemon_addr(backend);
            let reports: Vec<_> =
                seeds.iter().map(|&s| shaped_hostile_report(s, subcarriers)).collect();
            expect_reply(addr, reports)?;
        }
    }
}

/// Pooled reply buffers must never leak stale bytes across requests:
/// serve a varied-size workload twice over a single connection — so the
/// same backing stores are recycled across micro-batches whose replies
/// (full estimates and typed errors with different message lengths)
/// encode to different lengths — and insist every reply is bit-identical
/// to the in-process baseline. The health counters prove buffer reuse
/// actually happened, so a poisoning bug could not hide behind a
/// fresh-allocation fallback.
fn pooled_reply_buffers_never_leak_stale_bytes(backend: SocketBackend) {
    const N: usize = 24;
    let full = workload(N);
    // Vary the request shape so consecutive replies differ in size: a
    // request with one report draws a typed error, fuller ones draw
    // estimates.
    let requests: Vec<Vec<CsiReport>> = full
        .iter()
        .enumerate()
        .map(|(i, r)| r[..(i % r.len()) + 1].to_vec())
        .collect();
    let reference = baseline(&requests);
    let handle = spawn_daemon(None, 0, backend);
    let config = nomloc_net::LoadgenConfig {
        connections: 1,
        ..Default::default()
    };
    for pass in 0..2 {
        let report = nomloc_net::loadgen::run(handle.local_addr(), &config, &requests)
            .expect("loadgen run completes");
        for (i, (outcome, expected)) in report.outcomes.iter().zip(&reference).enumerate() {
            match (&outcome.reply, expected) {
                (Ok(got), Ok(want)) => {
                    assert_eq!(got.x.to_bits(), want.x.to_bits(), "pass {pass} req {i}: x");
                    assert_eq!(got.y.to_bits(), want.y.to_bits(), "pass {pass} req {i}: y");
                    assert_eq!(got, want, "pass {pass} request {i}: estimate diverged");
                }
                (Err(got), Err(want)) => {
                    assert_eq!(got, want, "pass {pass} request {i}: error diverged");
                }
                (got, want) => panic!("pass {pass} request {i}: {got:?} vs {want:?}"),
            }
        }
    }
    let health = handle.shutdown();
    assert!(
        health.pool_hits > 0,
        "run must actually recycle pooled buffers (hits = 0 would prove nothing)"
    );
    assert!(health.reply_bytes_pooled > 0);
}

// ---------------------------------------------------------------------
// Sessioned chaos: the session plane under every fault class. The
// verifier replays each session's tracker, so these runs prove faults
// never corrupt, cross-wire, or leak sessions.
// ---------------------------------------------------------------------

/// A chaos config interleaving `sessions` concurrent sessions.
fn sessioned_config(plan: FaultPlan, sessions: u64) -> ChaosConfig {
    let mut config = ChaosConfig::new(plan);
    config.sessions = sessions;
    config
}

/// Warm sessions answer rate-1 corrupt-CSI traffic from the motion model:
/// a clean sessioned pass warms two sessions, then **every** request's
/// payload is corrupted — and instead of the cold-path `Malformed`, each
/// reply must be `Predicted` at the (independently replayed) extrapolated
/// position with the venue's localizability bound widened exactly
/// [`PREDICTED_ERROR_WIDENING`]-fold.
fn warm_sessions_survive_payload_corruption(backend: SocketBackend) {
    const N: usize = 12;
    const SESSIONS: u64 = 2;
    let requests = workload(N);
    let reference = baseline(&requests);
    let handle = spawn_daemon(None, 0, backend);
    let addr = handle.local_addr();

    // Phase 1 — clean sessioned traffic; the standard verifier pins every
    // session block to the replay.
    let clean = sessioned_config(FaultPlan::disabled(5), SESSIONS);
    let warmup = chaos::run(addr, &clean, &requests).expect("warmup run completes");
    warmup
        .verify(&clean, &reference)
        .unwrap_or_else(|v| panic!("warmup violated the session contract: {v:?}"));

    // Replicate the daemon's trackers from the observed warmup replies.
    let mut trackers = HashMap::new();
    for (i, outcome) in warmup.outcomes.iter().enumerate() {
        let sid = clean.session_id_for(i as u64);
        if let Ok(est) = &outcome.reply {
            if est.quality <= 1 {
                trackers
                    .entry(sid)
                    .or_insert_with(session_tracker)
                    .push(Point::new(est.x, est.y), SESSION_TICK_SECONDS);
            }
        }
    }

    // Phase 2 — same sessions, every payload corrupted.
    let corrupt = sessioned_config(single_class_plan(5, FaultClass::CorruptCsi), SESSIONS);
    let report = chaos::run(addr, &corrupt, &requests).expect("corrupt run completes");
    // The registry's venue-0 map, rebuilt identically (analyze is pure).
    let map = localizability::analyze(
        lab_server().area(),
        &[],
        nomloc_net::registry::LOCALIZABILITY_PITCH_M,
    );
    let mut predicted = 0u64;
    for (i, outcome) in report.outcomes.iter().enumerate() {
        let sid = corrupt.session_id_for(i as u64);
        let expected = trackers
            .get(&sid)
            .and_then(|t| t.predict(SESSION_TICK_SECONDS));
        match (expected, &outcome.reply) {
            (Some(pred), Ok(est)) => {
                assert_eq!(
                    est.quality, 3,
                    "request {i}: warm session must answer Predicted"
                );
                assert_eq!(est.x.to_bits(), pred.x.to_bits(), "request {i}: x");
                assert_eq!(est.y.to_bits(), pred.y.to_bits(), "request {i}: y");
                let block = est
                    .session
                    .as_ref()
                    .expect("Predicted reply carries a block");
                let want_bound = map
                    .predicted_error_at(pred)
                    .map_or(f64::NAN, |e| e * PREDICTED_ERROR_WIDENING);
                assert_eq!(
                    block.error_bound.to_bits(),
                    want_bound.to_bits(),
                    "request {i}: bound must be the localizability map's, widened ×{PREDICTED_ERROR_WIDENING}"
                );
                predicted += 1;
            }
            (None, Err(e)) => assert_eq!(e.code, ErrorCode::Malformed, "request {i}"),
            (want, got) => panic!("request {i}: expected {want:?}-shaped reply, got {got:?}"),
        }
    }
    assert!(
        predicted as usize == N,
        "both sessions warmed in phase 1, so all {N} corrupt requests must be \
         answered Predicted; got {predicted}"
    );
    let health = handle.shutdown();
    assert!(
        health.quality_predicted >= predicted,
        "stats must count the intercepts"
    );
    assert_eq!(
        health.sessions_created, SESSIONS,
        "no session forked or leaked"
    );
}

/// Rate-1 drop-readings with sessions: `DropAll` requests (region tier)
/// feed the sessions, so later `KeepOne` requests — a centroid answer
/// stateless — are promoted to `Predicted`. The verifier's replay checks
/// each promotion exactly; nothing is ever *worse* than the stateless
/// tier.
fn rate_one_drop_readings_never_degrades_a_warm_session(backend: SocketBackend) {
    const N: usize = 24;
    let requests = workload(N);
    let reference = baseline(&requests);
    let plan = single_class_plan(11, FaultClass::DropReadings);
    let handle = spawn_daemon(Some(plan), 0, backend);
    let config = sessioned_config(plan, 2);
    let report = chaos::run(handle.local_addr(), &config, &requests).expect("chaos run completes");
    let health = handle.shutdown();
    let summary = report
        .verify(&config, &reference)
        .unwrap_or_else(|v| panic!("session degradation contract violated: {v:?}"));
    assert_eq!(summary.faulted, N);
    assert_eq!(
        summary.degraded + summary.predicted,
        N,
        "every faulted request answers degraded-or-better"
    );
    assert!(
        summary.predicted > 0,
        "seed 11 interleaves DropAll warmups with KeepOne requests, so some \
         centroid answers must be promoted"
    );
    assert!(health.sessions_active <= 2);
}

/// Rate-1 kill-connection: every request's connection dies before the
/// reply and is resent on a fresh one — and every resend must resume the
/// *same* session (the verifier replays each tracker straight through the
/// kills; a session restarted or forked by the reconnect would diverge).
fn killed_connections_resume_their_session(backend: SocketBackend) {
    const N: usize = 16;
    let requests = workload(N);
    let reference = baseline(&requests);
    let plan = single_class_plan(21, FaultClass::KillConnection);
    let handle = spawn_daemon(None, 0, backend);
    let config = sessioned_config(plan, 2);
    let report = chaos::run(handle.local_addr(), &config, &requests).expect("chaos run completes");
    let health = handle.shutdown();
    let summary = report
        .verify(&config, &reference)
        .unwrap_or_else(|v| panic!("kill+reconnect broke a session: {v:?}"));
    assert_eq!(
        report.reconnects, N as u64,
        "every request burned a connection"
    );
    assert_eq!(summary.bit_identical + summary.predicted, N);
    assert_eq!(
        health.sessions_created, 2,
        "reconnects must resume sessions, never fork fresh ones"
    );
}

/// The batcher kill knob murders solver threads mid-run while sessioned
/// traffic flows: the watchdog respawns them and — because the session
/// table lives outside the batchers — the verifier's uninterrupted replay
/// still matches every reply. Zero sessions lost, zero state diverged.
fn batcher_respawns_lose_no_sessions(backend: SocketBackend) {
    const N: usize = 24;
    let requests = workload(N);
    let reference = baseline(&requests);
    let plan = FaultPlan::disabled(3);
    let handle = spawn_daemon(None, 3, backend);
    let config = sessioned_config(plan, 2);
    let report = chaos::run(handle.local_addr(), &config, &requests)
        .expect("every request answered despite batcher deaths");
    let health = handle.shutdown();
    let summary = report
        .verify(&config, &reference)
        .unwrap_or_else(|v| panic!("a batcher respawn corrupted session state: {v:?}"));
    assert_eq!(summary.bit_identical + summary.predicted, N);
    assert!(
        health.batchers_respawned > 0,
        "kill-every-3 over {N} batches must kill at least one batcher"
    );
    assert_eq!(
        health.sessions_created, 2,
        "respawns must not lose or fork sessions"
    );
}

/// Mixed chaos over three interleaved sessions with the stale-session
/// fault armed: every fault class fires somewhere, the server's sessions
/// are force-expired mid-run, and the per-session replay still matches
/// every reply — proving no fault class ever returns another session's
/// position (a cross-wired answer cannot match its own session's replay)
/// and that forced expiry degrades cleanly instead of corrupting.
fn sessioned_chaos_crosses_no_wires(backend: SocketBackend) {
    const N: usize = 64;
    let requests = workload(N);
    let reference = baseline(&requests);
    let plan = FaultPlan::uniform(7, 0.04);
    let handle = spawn_daemon(Some(plan), 0, backend);
    let mut config = sessioned_config(plan, 3);
    config.session_table = Some(handle.sessions());
    let report = chaos::run(handle.local_addr(), &config, &requests).expect("chaos run completes");
    let health = handle.shutdown();
    let summary = report
        .verify(&config, &reference)
        .unwrap_or_else(|v| panic!("sessioned chaos contract violated: {v:?}"));
    assert_eq!(
        summary.bit_identical + summary.typed_errors + summary.degraded + summary.predicted,
        N,
        "every request is accounted for exactly once"
    );
    assert!(summary.faulted > 0, "seed 7 at 4 %/class faults something");
    assert!(
        report.stale_expiries > 0,
        "seed 7 at 4 % must fire the stale-session fault at least once over {N} requests"
    );
    assert!(
        health.sessions_created > 3,
        "forced expiries must have recreated sessions ({} created)",
        health.sessions_created
    );
}

/// Same seed ⇒ the same requests are faulted the same way and every reply
/// is identical across two independent daemon instances — the property
/// that makes chaos failures reproducible from a seed alone.
fn chaos_runs_are_deterministic_in_the_seed(backend: SocketBackend) {
    const N: usize = 32;
    let requests = workload(N);
    let plan = FaultPlan::uniform(99, 0.05);
    let run = || {
        let handle = spawn_daemon(Some(plan), 0, backend);
        let report = chaos::run(handle.local_addr(), &ChaosConfig::new(plan), &requests)
            .expect("chaos run completes");
        handle.shutdown();
        report
    };
    let a = run();
    let b = run();
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(x.class, y.class, "request {i} classified differently");
        match (&x.reply, &y.reply) {
            (Ok(p), Ok(q)) => {
                assert_eq!(p.x.to_bits(), q.x.to_bits(), "request {i} x diverged");
                assert_eq!(p.y.to_bits(), q.y.to_bits(), "request {i} y diverged");
                assert_eq!(p.quality, q.quality, "request {i} quality diverged");
            }
            (Err(p), Err(q)) => assert_eq!(p.code, q.code, "request {i} error diverged"),
            (p, q) => panic!("request {i}: {p:?} vs {q:?}"),
        }
    }
}

/// The single-queue oracle (`queue_shards: 1`) survives the full fault
/// matrix with exactly the contract the sharded plane upholds: every
/// class's rate-1 run verifies, and the kill knob loses nothing. Keeping
/// the legacy layout green under chaos is what makes it a trustworthy
/// A/B reference for the sharded plane.
fn single_queue_oracle_survives_the_fault_matrix(backend: SocketBackend) {
    const N: usize = 8;
    let requests = workload(N);
    let reference = baseline(&requests);
    for class in nomloc_faults::FAULT_CLASSES {
        let plan = single_class_plan(42, class);
        let handle = spawn_daemon_with_shards(Some(plan), 0, backend, 1);
        let config = ChaosConfig::new(plan);
        let report = chaos::run(handle.local_addr(), &config, &requests)
            .unwrap_or_else(|e| panic!("oracle chaos run failed under {class}: {e}"));
        let health = handle.shutdown();
        let summary = report
            .verify(&config, &reference)
            .unwrap_or_else(|v| panic!("oracle contract violated under {class}: {v:?}"));
        assert_eq!(summary.total, N);
        assert_eq!(summary.faulted, N, "rate-1 plan must fault everything");
        assert_eq!(health.queue_shards, 1, "oracle layout selected");
        assert_eq!(health.queue_steals, 0, "single queue cannot steal");
    }

    // The kill knob on the oracle: requeue-at-front on the legacy queue
    // still answers every request bit-identically.
    let handle = spawn_daemon_with_shards(None, 3, backend, 1);
    let config = ChaosConfig::new(FaultPlan::disabled(3));
    let report = chaos::run(handle.local_addr(), &config, &requests)
        .expect("every request answered despite batcher deaths");
    let health = handle.shutdown();
    let summary = report
        .verify(&config, &reference)
        .unwrap_or_else(|v| panic!("oracle kill knob broke replies: {v:?}"));
    assert_eq!(summary.bit_identical, N, "all replies bit-identical");
    assert!(health.batchers_respawned > 0, "kill knob never fired");
}

/// A sessioned run under the batcher kill knob produces **bit-identical
/// replies on both queue layouts**: a killed batcher requeues its batch
/// at the front of the batch venue's own shard, so replay order — and
/// therefore every session-smoothed coordinate — matches the single
/// queue's requeue-at-front exactly. A lost, duplicated, or reordered
/// requeue would diverge the session state and fail the comparison.
fn sessioned_kills_are_bit_identical_across_queue_layouts(backend: SocketBackend) {
    const N: usize = 24;
    let requests = workload(N);
    let reference = baseline(&requests);
    let run = |queue_shards: usize| {
        let handle = spawn_daemon_with_shards(None, 3, backend, queue_shards);
        let config = sessioned_config(FaultPlan::disabled(3), 2);
        let report = chaos::run(handle.local_addr(), &config, &requests)
            .expect("every sessioned request answered despite batcher deaths");
        let health = handle.shutdown();
        let summary = report
            .verify(&config, &reference)
            .unwrap_or_else(|v| panic!("sessioned kill run diverged from replay: {v:?}"));
        assert_eq!(summary.bit_identical + summary.predicted, N);
        assert!(health.batchers_respawned > 0, "kill knob never fired");
        assert_eq!(health.sessions_created, 2, "no session lost or forked");
        report
    };
    let sharded = run(DaemonConfig::default().queue_shards);
    let oracle = run(1);
    for (i, (s, o)) in sharded.outcomes.iter().zip(&oracle.outcomes).enumerate() {
        match (&s.reply, &o.reply) {
            (Ok(p), Ok(q)) => {
                assert_eq!(p.x.to_bits(), q.x.to_bits(), "request {i} x diverged");
                assert_eq!(p.y.to_bits(), q.y.to_bits(), "request {i} y diverged");
                assert_eq!(p.quality, q.quality, "request {i} quality diverged");
            }
            (Err(p), Err(q)) => assert_eq!(p.code, q.code, "request {i} error diverged"),
            (p, q) => panic!("request {i} differs across layouts: {p:?} vs {q:?}"),
        }
    }
}
