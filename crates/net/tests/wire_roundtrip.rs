//! Property tests for the wire codec: every frame type survives an
//! encode → decode → re-encode cycle byte-for-byte (round trips are
//! checked on the canonical encoding so NaN payload bit-patterns — which
//! defeat `PartialEq` — are still pinned exactly), and corrupted input
//! (truncation, bit flips, garbage) decodes to a clean [`WireError`]
//! without panicking.

use nomloc_net::wire::{
    decode_frame, frame_to_vec, ErrorCode, ErrorReply, LocateRequest, LocateResponse, ServerHealth,
    WireError, WireEstimate, WireReport, WireSession, WireSnapshot,
};
use nomloc_net::Frame;
use proptest::prelude::*;

/// Interprets raw bits as an `f64` — covers NaNs, infinities, subnormals.
fn bits(v: u64) -> f64 {
    f64::from_bits(v)
}

fn error_code(tag: u8) -> ErrorCode {
    match tag % 8 {
        0 => ErrorCode::EstimateFailed,
        1 => ErrorCode::Malformed,
        2 => ErrorCode::Overloaded,
        3 => ErrorCode::DeadlineExceeded,
        4 => ErrorCode::Internal,
        5 => ErrorCode::InsufficientJudgements,
        6 => ErrorCode::LpInfeasible,
        _ => ErrorCode::LpNumerical,
    }
}

fn snapshot(seed: u64, subcarriers: usize) -> WireSnapshot {
    let mix = |i: u64| {
        let mut z = seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    };
    WireSnapshot {
        offsets_hz: (0..subcarriers).map(|i| bits(mix(i as u64))).collect(),
        h: (0..subcarriers)
            .map(|i| (bits(mix(1000 + i as u64)), bits(mix(2000 + i as u64))))
            .collect(),
    }
}

fn report(seed: u64, bursts: usize, subcarriers: usize) -> WireReport {
    WireReport {
        ap: seed,
        visit: seed >> 7,
        x: bits(seed.rotate_left(13)),
        y: bits(seed.rotate_left(29)),
        burst: (0..bursts)
            .map(|b| snapshot(seed.wrapping_add(b as u64 * 77), subcarriers))
            .collect(),
    }
}

/// Encode → decode → re-encode must reproduce the bytes exactly and
/// consume the whole buffer.
fn assert_roundtrip(frame: &Frame) -> Result<(), TestCaseError> {
    let bytes = frame_to_vec(frame);
    let (decoded, consumed) = match decode_frame(&bytes) {
        Ok(v) => v,
        Err(e) => {
            return Err(TestCaseError::Fail(format!(
                "decode failed on a valid frame: {e}"
            )))
        }
    };
    prop_assert_eq!(consumed, bytes.len());
    prop_assert_eq!(frame_to_vec(&decoded), bytes);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn locate_request_roundtrip(
        request_id in 0u64..u64::MAX,
        deadline_us in 0u32..u32::MAX,
        venue_id in 0u64..u64::MAX,
        session_id in 0u64..u64::MAX,
        seeds in prop::collection::vec(0u64..u64::MAX, 0..4),
        bursts in 0usize..3,
        subcarriers in 0usize..6,
    ) {
        let frame = Frame::LocateRequest(LocateRequest {
            request_id,
            deadline_us,
            venue_id,
            session_id,
            reports: seeds.iter().map(|&s| report(s, bursts, subcarriers)).collect(),
        });
        assert_roundtrip(&frame)?;
    }

    #[test]
    fn locate_response_ok_roundtrip(fields in prop::collection::vec(0u64..u64::MAX, 9..10)) {
        let session = if fields[0] % 2 == 0 {
            None
        } else {
            Some(WireSession {
                smoothed_x: bits(fields[1].rotate_left(3)),
                smoothed_y: bits(fields[2].rotate_left(5)),
                velocity_x: bits(fields[3].rotate_left(7)),
                velocity_y: bits(fields[4].rotate_left(11)),
                error_bound: bits(fields[5].rotate_left(13)),
            })
        };
        let frame = Frame::LocateResponse(LocateResponse {
            request_id: fields[0],
            outcome: Ok(WireEstimate {
                x: bits(fields[1]),
                y: bits(fields[2]),
                relaxation_cost: bits(fields[3]),
                region_area: bits(fields[4]),
                n_constraints: fields[5],
                n_winning_pieces: fields[6],
                lp_iterations: fields[7],
                warm_start_hits: fields[8],
                phase1_pivots_saved: fields[0].rotate_left(17),
                quality: (fields[0] % 4) as u8,
                session,
            }),
        });
        assert_roundtrip(&frame)?;
    }

    #[test]
    fn locate_response_err_roundtrip(
        request_id in 0u64..u64::MAX,
        code in 0u8..4,
        message in prop::collection::vec(32u8..127, 0..64),
    ) {
        let frame = Frame::LocateResponse(LocateResponse {
            request_id,
            outcome: Err(ErrorReply {
                code: error_code(code),
                message: String::from_utf8(message).expect("printable ASCII"),
            }),
        });
        assert_roundtrip(&frame)?;
    }

    #[test]
    fn stats_response_roundtrip(fields in prop::collection::vec(0u64..u64::MAX, 22..23)) {
        let frame = Frame::StatsResponse(ServerHealth {
            connections_accepted: fields[0],
            frames_in: fields[1],
            frames_out: fields[2],
            protocol_errors: fields[3],
            requests_enqueued: fields[4],
            rejected_overload: fields[5],
            deadline_missed: fields[6],
            batches_formed: fields[7],
            queue_depth_peak: fields[8],
            batch_size_p50: fields[9],
            batch_size_max: fields[10],
            requests_ok: fields[11],
            requests_failed: fields[12],
            solve_p50_ns: fields[13],
            solve_p95_ns: fields[14],
            solve_p99_ns: fields[15],
            requests_internal: fields[16],
            batch_panics: fields[17],
            batchers_respawned: fields[18],
            quality_full: fields[19],
            quality_region: fields[20],
            quality_centroid: fields[21],
            // The payload-reuse counters are daemon-local display only and
            // never serialized, so they must stay zero to round-trip.
            ..ServerHealth::default()
        });
        assert_roundtrip(&frame)?;
    }

    /// Any strict prefix of a valid frame decodes to `Incomplete` with an
    /// honest `needed` hint — never a panic, never a bogus success.
    #[test]
    fn truncation_reports_incomplete(
        seed in 0u64..u64::MAX,
        cut_num in 0usize..1000,
    ) {
        let frame = Frame::LocateRequest(LocateRequest {
            request_id: seed,
            deadline_us: (seed >> 32) as u32,
            venue_id: seed.rotate_left(23),
            session_id: seed.rotate_left(7),
            reports: vec![report(seed, 2, 4)],
        });
        let bytes = frame_to_vec(&frame);
        let cut = cut_num * (bytes.len() - 1) / 1000;
        match decode_frame(&bytes[..cut]) {
            Err(WireError::Incomplete { needed }) => {
                prop_assert!(
                    needed <= bytes.len(),
                    "needed {} exceeds true frame length {}", needed, bytes.len()
                );
            }
            other => {
                return Err(TestCaseError::Fail(format!(
                    "truncated frame (cut at {cut}/{}) decoded to {other:?}",
                    bytes.len()
                )));
            }
        }
    }

    /// Any single-byte corruption of a frame is rejected: the header
    /// checks catch corrupted framing fields and the CRC catches payload
    /// damage. (CRC32 detects all single-byte errors.)
    #[test]
    fn single_byte_corruption_is_rejected(
        seed in 0u64..u64::MAX,
        pos_num in 0usize..1000,
        flip in (1u32..256).prop_map(|v| v as u8),
    ) {
        let frame = Frame::LocateRequest(LocateRequest {
            request_id: seed,
            deadline_us: 0,
            venue_id: seed.rotate_left(41),
            session_id: seed.rotate_left(13),
            reports: vec![report(seed, 1, 3)],
        });
        let mut bytes = frame_to_vec(&frame);
        let pos = pos_num * (bytes.len() - 1) / 999;
        bytes[pos] ^= flip;
        prop_assert!(
            decode_frame(&bytes).is_err(),
            "corruption at byte {} (xor {:#04x}) went undetected", pos, flip
        );
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(
        junk in prop::collection::vec((0u32..256).prop_map(|v| v as u8), 0..256),
    ) {
        let _ = decode_frame(&junk);
    }

    /// Garbage that happens to start with a valid-looking header still
    /// cannot claim an oversized payload or pass the CRC.
    #[test]
    fn hostile_header_is_bounded(
        len_bits in 0u32..u32::MAX,
        junk in prop::collection::vec((0u32..256).prop_map(|v| v as u8), 0..64),
    ) {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"NMLC");
        buf.push(nomloc_net::wire::VERSION); // current version, so the
        // hostile length field (not a version mismatch) is what's tested
        buf.push(1); // LocateRequest
        buf.extend_from_slice(&0u16.to_le_bytes());
        buf.extend_from_slice(&len_bits.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // bogus CRC
        buf.extend_from_slice(&junk);
        match decode_frame(&buf) {
            Ok((frame, _)) => {
                return Err(TestCaseError::Fail(format!(
                    "hostile header decoded to {frame:?}"
                )));
            }
            Err(WireError::Incomplete { needed }) => {
                // An Incomplete claim may only ask for a bounded frame.
                prop_assert!(
                    needed <= nomloc_net::wire::HEADER_LEN + nomloc_net::wire::MAX_PAYLOAD as usize,
                    "decoder asked for {} bytes", needed
                );
            }
            Err(_) => {}
        }
    }
}

/// The `ErrorCode` wire tags are part of the protocol: pin them so a
/// refactor cannot silently renumber deployed peers apart.
#[test]
fn error_code_tags_are_stable() {
    assert_eq!(ErrorCode::EstimateFailed as u8, 1);
    assert_eq!(ErrorCode::Malformed as u8, 2);
    assert_eq!(ErrorCode::Overloaded as u8, 3);
    assert_eq!(ErrorCode::DeadlineExceeded as u8, 4);
    assert_eq!(ErrorCode::Internal as u8, 5);
    assert_eq!(ErrorCode::InsufficientJudgements as u8, 6);
    assert_eq!(ErrorCode::LpInfeasible as u8, 7);
    assert_eq!(ErrorCode::LpNumerical as u8, 8);
}

/// A StatsRequest is a bare header; its round trip is a plain unit check.
#[test]
fn stats_request_roundtrip() {
    let bytes = frame_to_vec(&Frame::StatsRequest);
    assert_eq!(bytes.len(), nomloc_net::wire::HEADER_LEN);
    let (frame, consumed) = decode_frame(&bytes).expect("decodes");
    assert_eq!(frame, Frame::StatsRequest);
    assert_eq!(consumed, bytes.len());
}

/// Two frames back-to-back in one buffer decode in sequence — the
/// consumed count is the streaming contract the daemon's reader uses.
#[test]
fn streaming_consumes_frame_by_frame() {
    let a = frame_to_vec(&Frame::StatsRequest);
    let b = frame_to_vec(&Frame::LocateRequest(LocateRequest {
        request_id: 7,
        deadline_us: 0,
        venue_id: 3,
        session_id: 0,
        reports: vec![report(42, 1, 2)],
    }));
    let mut buf = a.clone();
    buf.extend_from_slice(&b);
    let (first, consumed_a) = decode_frame(&buf).expect("first frame");
    assert_eq!(first, Frame::StatsRequest);
    assert_eq!(consumed_a, a.len());
    let (_, consumed_b) = decode_frame(&buf[consumed_a..]).expect("second frame");
    assert_eq!(consumed_b, b.len());
}
