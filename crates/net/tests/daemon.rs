//! Behavioral tests for the serving daemon: admission control under
//! overload, queued-deadline expiry, per-request error isolation inside a
//! micro-batch, protocol-error handling, stats frames, and graceful drain.
//!
//! All tests run against a real daemon on `127.0.0.1:0` and speak the wire
//! protocol over actual sockets. Overload/deadline tests use
//! `DaemonConfig::batch_pause` as a deterministic throttle so they don't
//! depend on machine speed.
//!
//! Every contract test is parameterized over **both socket backends**
//! (`backend_tests!` expands each into a `threaded` and an `event_loop`
//! case): the event-loop transplant must not change a single observable
//! serving behavior. Backend-specific mechanics (slow-reader eviction,
//! reader-thread reaping) get their own single-backend tests at the end.

use nomloc_core::scenario::Venue;
use nomloc_core::server::CsiReport;
use nomloc_core::{ApSite, LocalizationServer};
use nomloc_net::wire::{
    decode_frame, frame_to_vec, LocateRequest, LocateResponse, WireReport, WireSnapshot,
};
use nomloc_net::{
    admin, spawn, DaemonConfig, ErrorCode, Frame, LoadgenConfig, SocketBackend, WireVenue,
};
use nomloc_rfsim::{Environment, RadioConfig, SubcarrierGrid};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Expands each listed test body `fn name(backend: SocketBackend)` into a
/// module with a `#[test]` per backend, so one contract written once is
/// pinned on both socket layers.
macro_rules! backend_tests {
    ($($name:ident),+ $(,)?) => {$(
        mod $name {
            use super::SocketBackend;

            #[test]
            fn threaded() {
                super::$name(SocketBackend::Threaded);
            }

            #[test]
            fn event_loop() {
                super::$name(SocketBackend::EventLoop);
            }
        }
    )+};
}

backend_tests!(
    overload_answers_with_bounded_queue,
    queued_deadline_expiry_is_reported,
    malformed_request_does_not_poison_the_batch,
    protocol_error_closes_only_that_connection,
    stats_frame_reports_health,
    shutdown_drains_admitted_requests,
    cold_venue_is_answered_under_hot_flood,
    single_queue_oracle_upholds_the_serving_contract,
    closed_loop_loadgen_measures_contended_dispatch,
);

/// A default config pinned to one backend.
fn config(backend: SocketBackend) -> DaemonConfig {
    DaemonConfig {
        socket_backend: backend,
        ..DaemonConfig::default()
    }
}

fn lab_server() -> LocalizationServer {
    LocalizationServer::new(Venue::lab().plan.boundary().clone()).with_workers(1)
}

/// A structurally and semantically valid request whose reports carry empty
/// bursts: the pipeline skips them and solves a boundary-only region, so
/// it is the cheapest possible admissible request — ideal for flooding.
fn cheap_request(request_id: u64, deadline_us: u32) -> Vec<u8> {
    cheap_request_for(request_id, 0, deadline_us)
}

/// [`cheap_request`] aimed at a specific venue.
fn cheap_request_for(request_id: u64, venue_id: u64, deadline_us: u32) -> Vec<u8> {
    let venue = Venue::lab();
    let ap = venue.static_deployment()[0];
    frame_to_vec(&Frame::LocateRequest(LocateRequest {
        request_id,
        deadline_us,
        venue_id,
        session_id: 0,
        reports: vec![WireReport {
            ap: 1,
            visit: 0,
            x: ap.x,
            y: ap.y,
            burst: Vec::new(),
        }],
    }))
}

/// A realistic request: one CSI report per static AP in the lab venue.
fn real_reports(venue: &Venue, seed: u64) -> Vec<CsiReport> {
    let env = Environment::new(venue.plan.clone(), RadioConfig::default());
    let grid = SubcarrierGrid::intel5300();
    let object = venue.test_sites[seed as usize % venue.test_sites.len()];
    let mut rng = StdRng::seed_from_u64(seed);
    venue
        .static_deployment()
        .iter()
        .enumerate()
        .map(|(i, &ap)| CsiReport {
            site: ApSite::fixed(i + 1, ap),
            burst: env.sample_csi_burst(object, ap, &grid, 2, &mut rng),
        })
        .collect()
}

/// Reads `LocateResponse` frames off `stream` until `n` have arrived.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<LocateResponse> {
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 64 * 1024];
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        match decode_frame(&buf) {
            Ok((Frame::LocateResponse(resp), consumed)) => {
                buf.drain(..consumed);
                out.push(resp);
                continue;
            }
            Ok((other, _)) => panic!("unexpected frame from daemon: {other:?}"),
            Err(nomloc_net::WireError::Incomplete { .. }) => {}
            Err(e) => panic!("daemon sent a malformed frame: {e}"),
        }
        let got = stream.read(&mut tmp).expect("read from daemon");
        assert!(got > 0, "daemon closed with {} of {n} responses", out.len());
        buf.extend_from_slice(&tmp[..got]);
    }
    out
}

/// Flooding a throttled daemon past its queue capacity yields explicit
/// `Overloaded` replies — every request is answered, nothing buffers
/// without bound, and the recorded queue depth respects the cap.
fn overload_answers_with_bounded_queue(backend: SocketBackend) {
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 4,
            batch_pause: Duration::from_millis(25),
            ..config(backend)
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");

    const FLOOD: usize = 48;
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut blob = Vec::new();
    for id in 0..FLOOD as u64 {
        blob.extend_from_slice(&cheap_request(id, 0));
    }
    stream.write_all(&blob).expect("flood the daemon");

    let responses = read_responses(&mut stream, FLOOD);
    let overloaded = responses
        .iter()
        .filter(|r| matches!(&r.outcome, Err(e) if e.code == ErrorCode::Overloaded))
        .count();
    let solved = responses.iter().filter(|r| r.outcome.is_ok()).count();
    // The throttle guarantees the flood outruns the drain: with a 25 ms
    // pause per single-request batch, at most a handful of the 48 requests
    // can be admitted before the 4-slot queue fills.
    assert!(overloaded > 0, "no Overloaded replies in {responses:?}");
    assert!(solved > 0, "no request was solved at all");
    assert_eq!(overloaded + solved, FLOOD, "every request gets an answer");

    let health = handle.shutdown();
    assert_eq!(health.rejected_overload, overloaded as u64);
    assert!(
        health.queue_depth_peak <= 4,
        "queue depth {} exceeded the capacity of 4",
        health.queue_depth_peak
    );
}

/// A request whose deadline expires while it waits in the queue is
/// answered `DeadlineExceeded` and never solved.
fn queued_deadline_expiry_is_reported(backend: SocketBackend) {
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 1,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
            // Every batch waits 30 ms before solving, so a 1 ms deadline
            // is always stale by solve time.
            batch_pause: Duration::from_millis(30),
            ..config(backend)
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(&cheap_request(9, 1_000)).unwrap();
    let responses = read_responses(&mut stream, 1);
    match &responses[0].outcome {
        Err(e) if e.code == ErrorCode::DeadlineExceeded => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(responses[0].request_id, 9);

    let health = handle.shutdown();
    assert_eq!(health.deadline_missed, 1);
}

/// A semantically malformed request inside a pipelined burst errors only
/// itself: its neighbors in the same micro-batch still get estimates, and
/// the connection stays open.
fn malformed_request_does_not_poison_the_batch(backend: SocketBackend) {
    let venue = Venue::lab();
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 1,
            max_batch: 16,
            max_wait: Duration::from_millis(20),
            ..config(backend)
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");

    let good = |id: u64| {
        frame_to_vec(&Frame::LocateRequest(LocateRequest {
            request_id: id,
            deadline_us: 0,
            venue_id: 0,
            session_id: 0,
            reports: real_reports(&venue, id)
                .iter()
                .map(WireReport::from_core)
                .collect(),
        }))
    };
    // Structurally valid, semantically broken: a NaN AP position.
    let bad = frame_to_vec(&Frame::LocateRequest(LocateRequest {
        request_id: 1,
        deadline_us: 0,
        venue_id: 0,
        session_id: 0,
        reports: vec![WireReport {
            ap: 1,
            visit: 0,
            x: f64::NAN,
            y: 0.0,
            burst: vec![WireSnapshot {
                offsets_hz: vec![0.0],
                h: vec![(1.0, 0.0)],
            }],
        }],
    }));

    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut blob = good(0);
    blob.extend_from_slice(&bad);
    blob.extend_from_slice(&good(2));
    stream.write_all(&blob).unwrap();

    let mut responses = read_responses(&mut stream, 3);
    responses.sort_by_key(|r| r.request_id);
    assert!(
        responses[0].outcome.is_ok(),
        "request 0 should localize: {:?}",
        responses[0].outcome
    );
    match &responses[1].outcome {
        Err(e) if e.code == ErrorCode::Malformed => {}
        other => panic!("expected Malformed for request 1, got {other:?}"),
    }
    assert!(
        responses[2].outcome.is_ok(),
        "request 2 should localize: {:?}",
        responses[2].outcome
    );
    handle.shutdown();
}

/// A frame-level protocol violation (garbage on the socket) is answered
/// with a `Malformed` reply for request id 0 and the connection closes;
/// other connections are untouched.
fn protocol_error_closes_only_that_connection(backend: SocketBackend) {
    let handle = spawn(lab_server(), config(backend), "127.0.0.1:0").expect("spawn daemon");

    let mut bad = TcpStream::connect(handle.local_addr()).expect("connect");
    bad.write_all(b"this is not a NMLC frame at all............")
        .unwrap();
    let responses = read_responses(&mut bad, 1);
    assert_eq!(responses[0].request_id, 0);
    match &responses[0].outcome {
        Err(e) if e.code == ErrorCode::Malformed => {}
        other => panic!("expected Malformed, got {other:?}"),
    }
    // The daemon closes its side after the error reply.
    let mut tail = Vec::new();
    bad.read_to_end(&mut tail).expect("read until close");
    assert!(tail.is_empty(), "unexpected bytes after protocol error");

    // A healthy connection still works afterwards.
    let mut good = TcpStream::connect(handle.local_addr()).expect("connect");
    good.write_all(&cheap_request(5, 0)).unwrap();
    let ok = read_responses(&mut good, 1);
    assert_eq!(ok[0].request_id, 5);

    let health = handle.shutdown();
    assert_eq!(health.protocol_errors, 1);
}

/// A `StatsRequest` frame answers with the daemon's health snapshot.
fn stats_frame_reports_health(backend: SocketBackend) {
    let handle = spawn(lab_server(), config(backend), "127.0.0.1:0").expect("spawn daemon");
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.write_all(&cheap_request(1, 0)).unwrap();
    let _ = read_responses(&mut stream, 1);

    stream
        .write_all(&frame_to_vec(&Frame::StatsRequest))
        .unwrap();
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    let health = loop {
        match decode_frame(&buf) {
            Ok((Frame::StatsResponse(h), _)) => break h,
            Ok((other, _)) => panic!("unexpected frame: {other:?}"),
            Err(nomloc_net::WireError::Incomplete { .. }) => {
                let n = stream.read(&mut tmp).expect("read");
                assert!(n > 0, "daemon closed before answering StatsRequest");
                buf.extend_from_slice(&tmp[..n]);
            }
            Err(e) => panic!("malformed stats frame: {e}"),
        }
    };
    assert!(health.connections_accepted >= 1);
    assert!(health.requests_enqueued >= 1);
    assert!(health.frames_in >= 2);
    handle.shutdown();
}

/// Shutdown drains: every admitted request is answered before the daemon
/// exits, even when a throttle keeps the queue deep at shutdown time —
/// and on the threaded backend, shutdown joins every reader thread it
/// spawned (no handle or thread leaks past the drain).
fn shutdown_drains_admitted_requests(backend: SocketBackend) {
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 1,
            max_batch: 4,
            max_wait: Duration::ZERO,
            queue_capacity: 64,
            batch_pause: Duration::from_millis(10),
            ..config(backend)
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");

    // A few sacrificial connections that come and go before the drain:
    // their reader threads (threaded backend) must be reaped, not
    // accumulated until shutdown.
    for id in 100..105u64 {
        let mut scratch = TcpStream::connect(handle.local_addr()).expect("connect");
        scratch.write_all(&cheap_request(id, 0)).unwrap();
        let _ = read_responses(&mut scratch, 1);
    }

    const N: usize = 20;
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    let mut blob = Vec::new();
    for id in 0..N as u64 {
        blob.extend_from_slice(&cheap_request(id, 0));
    }
    stream.write_all(&blob).unwrap();

    // Wait until the daemon has admitted all N (they queue behind the
    // throttle), then shut down mid-drain.
    while handle.health().requests_enqueued < (N + 5) as u64 {
        std::thread::sleep(Duration::from_millis(2));
    }
    if backend == SocketBackend::Threaded {
        // The leak regression: handles of finished readers used to pile
        // up until shutdown. The accept path now reaps them, so at most
        // the live connection (plus stragglers not yet noticed by an
        // accept) remain. The last accept happened after all five
        // sacrificial connections closed, but reader exit is asynchronous
        // — poke accepts until the count settles.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let _ = TcpStream::connect(handle.local_addr());
            if handle.live_conn_threads() <= 2 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "reader-thread handles not reaped: {} live",
                handle.live_conn_threads()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    } else {
        assert_eq!(
            handle.live_conn_threads(),
            0,
            "event-loop backend must not spawn reader threads"
        );
    }
    let health = handle.shutdown();
    assert_eq!(
        health.requests_ok + health.requests_failed + health.rejected_overload,
        (N + 5) as u64,
        "shutdown lost admitted requests: {health}"
    );
    // The socket still holds every reply.
    let responses = read_responses(&mut stream, N);
    assert_eq!(responses.len(), N);
}

/// Slow-reader eviction (event-loop backend): a connection that floods
/// requests but never drains its socket is evicted once its bounded
/// outbound buffer fills — while a well-behaved connection **on the same
/// single event loop** keeps getting answers throughout. Unbounded reply
/// buffering (the alternative) would OOM; blocking writes (the threaded
/// backend's behavior) would be the slow reader's problem alone there,
/// but on a shared loop would stall every batch-mate.
#[test]
fn slow_reader_is_evicted_without_stalling_loop_mates() {
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 1,
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_capacity: 8192,
            socket_backend: SocketBackend::EventLoop,
            event_loops: 1, // both connections share one loop
            write_buffer_cap: 16 * 1024,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");

    let slow = TcpStream::connect(handle.local_addr()).expect("connect slow");
    slow.set_nodelay(true).unwrap();
    let mut good = TcpStream::connect(handle.local_addr()).expect("connect good");
    good.set_nodelay(true).unwrap();
    good.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Flood the slow connection in chunks without ever reading it. Its
    // replies pile up: first in the kernel's socket buffers, then in the
    // daemon's bounded write buffer — until the cap trips and the daemon
    // evicts it. Interleave one request on the good connection per chunk
    // and require its reply promptly: the loop must never block on the
    // stuffed socket. Bounded: kernel buffering is finite, so eviction
    // must fire within a bounded number of chunks.
    const CHUNK: usize = 500;
    const MAX_CHUNKS: usize = 200; // ≥ 100k replies ≈ 10 MB ≫ any sndbuf+rcvbuf
    let mut next_id = 0u64;
    let mut good_id = 1_000_000u64;
    let mut chunks = 0usize;
    while handle.slow_readers_evicted() == 0 {
        assert!(
            chunks < MAX_CHUNKS,
            "no eviction after {} pipelined requests",
            chunks * CHUNK
        );
        let mut blob = Vec::with_capacity(CHUNK * 80);
        for _ in 0..CHUNK {
            blob.extend_from_slice(&cheap_request(next_id, 0));
            next_id += 1;
        }
        // Writes may start failing once the daemon closes the evicted
        // socket — that's the expected end state, not a test failure.
        let _ = (&slow).write_all(&blob);
        chunks += 1;

        (&good).write_all(&cheap_request(good_id, 0)).unwrap();
        let replies = read_responses(&mut good, 1);
        assert_eq!(replies[0].request_id, good_id, "good conn got wrong reply");
        assert!(
            replies[0].outcome.is_ok(),
            "good conn failed mid-flood: {:?}",
            replies[0].outcome
        );
        good_id += 1;
    }
    assert_eq!(handle.slow_readers_evicted(), 1, "exactly one eviction");

    // The good connection still works after the eviction.
    (&good).write_all(&cheap_request(good_id, 0)).unwrap();
    let replies = read_responses(&mut good, 1);
    assert_eq!(replies[0].request_id, good_id);

    let health = handle.shutdown();
    assert_eq!(health.slow_readers_evicted, 1, "health mirrors: {health}");
}

/// Fairness under work stealing: while one venue floods the plane with a
/// sustained hot backlog, a single request for a cold venue is still
/// answered within a bounded number of batches. The per-shard per-venue
/// round-robin (and the batcher's round-robin over its owned shards)
/// guarantees the cold venue's turn comes after at most a few batches; a
/// FIFO queue would drain the entire hot backlog first. The throttle
/// makes the two outcomes cleanly separable: draining 160 hot requests
/// at 8 per 25 ms-paused batch takes ≥ 500 ms, while a fair plane
/// answers the cold request in a handful of batch pauses.
fn cold_venue_is_answered_under_hot_flood(backend: SocketBackend) {
    const HOT: usize = 160;
    const COLD_VENUE: u64 = 7;
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 1,
            max_batch: 8,
            max_wait: Duration::ZERO,
            queue_capacity: 4096,
            batch_pause: Duration::from_millis(25),
            ..config(backend)
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");
    admin::onboard(
        handle.local_addr(),
        &WireVenue::from_venue(COLD_VENUE, &Venue::lab()),
    )
    .expect("onboard cold venue");

    // Conn A floods the hot venue in one pipelined blob.
    let mut hot = TcpStream::connect(handle.local_addr()).expect("connect hot");
    hot.set_nodelay(true).unwrap();
    hot.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut blob = Vec::new();
    for id in 0..HOT as u64 {
        blob.extend_from_slice(&cheap_request(id, 0));
    }
    hot.write_all(&blob).expect("flood hot venue");

    // Wait until the backlog is actually admitted — the fairness claim
    // is about a cold request *behind* a standing hot queue.
    let admitted = Instant::now();
    while (handle.health().requests_enqueued as usize) < HOT {
        assert!(
            admitted.elapsed() < Duration::from_secs(10),
            "hot flood was never admitted"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Conn B sends one cold-venue request and times the answer.
    let mut cold = TcpStream::connect(handle.local_addr()).expect("connect cold");
    cold.set_nodelay(true).unwrap();
    cold.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let sent = Instant::now();
    cold.write_all(&cheap_request_for(9_999, COLD_VENUE, 0))
        .unwrap();
    let replies = read_responses(&mut cold, 1);
    let waited = sent.elapsed();
    assert_eq!(replies[0].request_id, 9_999);
    assert!(
        replies[0].outcome.is_ok(),
        "cold venue request failed: {:?}",
        replies[0].outcome
    );
    assert!(
        waited < Duration::from_millis(300),
        "cold venue starved behind the hot flood: answered after {waited:?} \
         (full hot drain takes ≥ 500 ms)"
    );

    // The hot flood still completes in full.
    let responses = read_responses(&mut hot, HOT);
    assert_eq!(responses.len(), HOT);
    let health = handle.shutdown();
    assert_eq!(health.rejected_overload, 0, "{health}");
    assert_eq!(
        health.requests_ok + health.requests_failed,
        (HOT + 1) as u64,
        "every admitted request is answered: {health}"
    );
}

/// The legacy single-queue layout (`queue_shards: 1`) stays available as
/// the A/B correctness oracle and upholds the same serving contract:
/// every request answered, overload explicit, depth bounded by capacity
/// — with the sharded plane's counters pinned at zero (one queue has
/// nothing to steal from and no shard locks to contend).
fn single_queue_oracle_upholds_the_serving_contract(backend: SocketBackend) {
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 2,
            max_batch: 1,
            max_wait: Duration::ZERO,
            queue_capacity: 4,
            queue_shards: 1,
            batch_pause: Duration::from_millis(25),
            ..config(backend)
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");

    const FLOOD: usize = 48;
    let mut stream = TcpStream::connect(handle.local_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut blob = Vec::new();
    for id in 0..FLOOD as u64 {
        blob.extend_from_slice(&cheap_request(id, 0));
    }
    stream.write_all(&blob).expect("flood the daemon");

    let responses = read_responses(&mut stream, FLOOD);
    let overloaded = responses
        .iter()
        .filter(|r| matches!(&r.outcome, Err(e) if e.code == ErrorCode::Overloaded))
        .count();
    let solved = responses.iter().filter(|r| r.outcome.is_ok()).count();
    assert!(overloaded > 0, "no Overloaded replies in {responses:?}");
    assert!(solved > 0, "no request was solved at all");
    assert_eq!(overloaded + solved, FLOOD, "every request gets an answer");

    let health = handle.shutdown();
    assert_eq!(health.rejected_overload, overloaded as u64);
    assert!(
        health.queue_depth_peak <= 4,
        "queue depth {} exceeded the capacity of 4",
        health.queue_depth_peak
    );
    assert_eq!(health.queue_shards, 1, "{health}");
    assert_eq!(health.queue_steals, 0, "single queue cannot steal");
    assert_eq!(
        health.enqueue_contention, 0,
        "single queue takes the blocking lock, never a try_lock miss"
    );
}

/// Closed-loop loadgen smoke: `concurrency: N` drives N synchronous
/// workers (send-one-wait-one, each on its own connection) against the
/// sharded plane, every request is answered with a strict reply-id
/// match, and the report carries per-worker latency quantiles.
fn closed_loop_loadgen_measures_contended_dispatch(backend: SocketBackend) {
    let venue = Venue::lab();
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            acceptors: 1,
            batchers: 2,
            max_batch: 8,
            max_wait: Duration::ZERO,
            ..config(backend)
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");

    const N: usize = 12;
    let requests: Vec<_> = (0..N as u64).map(|i| real_reports(&venue, i)).collect();
    let report = nomloc_net::loadgen::run(
        handle.local_addr(),
        &LoadgenConfig {
            concurrency: 4,
            ..LoadgenConfig::default()
        },
        &requests,
    )
    .expect("closed-loop run");

    assert_eq!(report.ok_count(), N, "every request answered ok");
    assert_eq!(report.concurrency, 4);
    assert_eq!(report.connections, 4, "one connection per worker");
    let per_worker = report.per_worker_quantile(0.99);
    assert_eq!(per_worker.len(), 4, "one p99 per worker");
    assert!(per_worker.iter().all(|d| *d > Duration::ZERO));

    let counters = handle.stats_snapshot().counters;
    assert_eq!(
        counters.batches_mixed, 0,
        "venue-homogeneous by construction"
    );
    let health = handle.shutdown();
    assert_eq!(health.requests_ok, N as u64, "{health}");
}
