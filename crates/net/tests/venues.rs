//! Multi-venue serving tests: the registry lifecycle over real sockets.
//!
//! Three contracts from the venue-registry design are pinned here:
//!
//! 1. **Onboarding is exact.** A venue onboarded over the wire-v3 admin
//!    plane answers every locate request bit-identically to a daemon whose
//!    *resident* venue it is — and retiring then re-onboarding it rebuilds
//!    the same bits. The registry's cache construction from a `WireVenue`
//!    spec must therefore match in-process construction exactly.
//! 2. **Venues are isolated.** A chaos driver hammering one venue with
//!    the full fault zoo never degrades — or cross-wires — another
//!    venue's replies: the clean venue stays bit-identical to an
//!    in-process baseline throughout.
//! 3. **Eviction is invisible.** Under a memory budget too tight to keep
//!    every venue resident, LRU eviction and rebuild-on-next-request lose
//!    no requests and answer with the same bits a never-evicted daemon
//!    produces.

use nomloc_core::scenario::{fleet_venue, synthetic_workload, Venue};
use nomloc_core::server::CsiReport;
use nomloc_core::{ApSite, LocalizationServer};
use nomloc_faults::{FaultClass, FaultPlan};
use nomloc_net::wire::{
    read_frame, write_frame, ErrorReply, LocateRequest, LocateResponse, WireEstimate, WireReport,
    WireVenue,
};
use nomloc_net::{admin, chaos, spawn, ChaosConfig, DaemonConfig, ErrorCode, Frame};
use proptest::prelude::*;
use std::net::TcpStream;

fn resident_server(venue: &Venue) -> LocalizationServer {
    LocalizationServer::new(venue.plan.boundary().clone()).with_workers(1)
}

/// Sends one locate request for `venue_id` and reads its reply.
fn locate(
    stream: &mut TcpStream,
    request_id: u64,
    venue_id: u64,
    reports: &[CsiReport],
) -> LocateResponse {
    write_frame(
        stream,
        &Frame::LocateRequest(LocateRequest {
            request_id,
            deadline_us: 0,
            venue_id,
            session_id: 0,
            reports: reports.iter().map(WireReport::from_core).collect(),
        }),
    )
    .expect("send request");
    match read_frame(stream).expect("read reply") {
        Some(Frame::LocateResponse(resp)) => resp,
        other => panic!("expected LocateResponse, got {other:?}"),
    }
}

/// Canonical bytes of a reply's outcome — the bit-identity yardstick
/// (encoded, so NaN payload patterns are compared exactly too).
fn outcome_bytes(resp: &LocateResponse) -> Vec<u8> {
    nomloc_net::wire::frame_to_vec(&Frame::LocateResponse(resp.clone()))
}

proptest! {
    // Each case spawns two daemons and speaks to both over TCP, so a
    // handful of cases is plenty — the venue id and seed still vary the
    // geometry (all three plans, several scales) and the workload.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Contract 1: onboard → locate → retire → re-onboard → locate. Both
    /// locate passes must be bit-identical to a daemon born resident in
    /// that venue, and the retired window answers `UnknownVenue`.
    #[test]
    fn onboarded_venue_is_bit_identical_to_a_resident_daemon(
        seed in 0u64..1_000,
        venue_id in 1u64..7,
    ) {
        let venue = fleet_venue(venue_id);
        let (_, batch) = synthetic_workload(&venue, 2, 2, seed);

        // Reference: this venue as the resident venue (id 0).
        let reference = spawn(resident_server(&venue), DaemonConfig::default(), "127.0.0.1:0")
            .expect("spawn reference daemon");
        let mut ref_conn = TcpStream::connect(reference.local_addr()).expect("connect");
        let want: Vec<(u64, Vec<u8>)> = batch
            .iter()
            .enumerate()
            .map(|(i, reports)| {
                let resp = locate(&mut ref_conn, i as u64, 0, reports);
                (resp.request_id, outcome_bytes(&resp))
            })
            .collect();
        drop(ref_conn);
        reference.shutdown();

        // Subject: a lab-resident daemon that learns the venue over the
        // admin plane.
        let subject = spawn(resident_server(&Venue::lab()), DaemonConfig::default(), "127.0.0.1:0")
            .expect("spawn subject daemon");
        let addr = subject.local_addr();
        admin::onboard(addr, &WireVenue::from_venue(venue_id, &venue)).expect("onboard");
        let mut conn = TcpStream::connect(addr).expect("connect");
        for (i, reports) in batch.iter().enumerate() {
            let resp = locate(&mut conn, i as u64, venue_id, reports);
            prop_assert_eq!(
                (resp.request_id, outcome_bytes(&resp)),
                want[i].clone(),
                "request {} diverged after onboarding", i
            );
        }

        // The retired window: a typed UnknownVenue error, not silence.
        admin::retire(addr, venue_id).expect("retire");
        let resp = locate(&mut conn, 99, venue_id, &batch[0]);
        prop_assert!(
            matches!(&resp.outcome, Err(e) if e.code == ErrorCode::UnknownVenue),
            "retired venue answered {:?}", resp.outcome
        );

        // Re-onboarding rebuilds the exact same venue.
        admin::onboard(addr, &WireVenue::from_venue(venue_id, &venue)).expect("re-onboard");
        for (i, reports) in batch.iter().enumerate() {
            let resp = locate(&mut conn, i as u64, venue_id, reports);
            prop_assert_eq!(
                (resp.request_id, outcome_bytes(&resp)),
                want[i].clone(),
                "request {} diverged after re-onboarding", i
            );
        }
        drop(conn);
        subject.shutdown();
    }
}

/// Contract 2: a chaos driver running the full fault zoo against venue 1
/// never perturbs venue 2 — every concurrent clean-venue reply stays
/// bit-identical to an in-process fault-free baseline.
#[test]
fn faults_on_one_venue_never_degrade_another() {
    let plan = FaultPlan::uniform(7, 0.05);
    plan.validate().expect("valid plan");
    let chaos_venue = fleet_venue(1);
    let clean_venue = fleet_venue(2);

    let handle = spawn(
        resident_server(&Venue::lab()),
        DaemonConfig {
            fault_plan: Some(plan),
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");
    let addr = handle.local_addr();
    admin::onboard(addr, &WireVenue::from_venue(1, &chaos_venue)).expect("onboard chaos venue");
    admin::onboard(addr, &WireVenue::from_venue(2, &clean_venue)).expect("onboard clean venue");

    let (_, chaos_batch) = synthetic_workload(&chaos_venue, 60, 2, 7);
    let (_, clean_batch) = synthetic_workload(&clean_venue, 16, 2, 11);

    // The daemon-side fault plan keys on request ids, so the clean
    // driver picks ids the plan leaves untouched — any fault observed on
    // them would be leakage from the chaos venue.
    let clean_ids: Vec<u64> = (1_000u64..)
        .filter(|&id| plan.classify(id) == FaultClass::None)
        .take(clean_batch.len())
        .collect();

    // In-process fault-free baseline for the clean venue, built exactly
    // like the registry builds it.
    let baseline_server = resident_server(&clean_venue);
    let want: Vec<Vec<u8>> = clean_batch
        .iter()
        .zip(&clean_ids)
        .map(|(reports, &id)| {
            let outcome = match baseline_server.process(reports) {
                Ok(est) => Ok(WireEstimate::from_core(&est)),
                Err(e) => Err(ErrorReply {
                    code: ErrorCode::from_estimate_error(&e),
                    message: e.to_string(),
                }),
            };
            outcome_bytes(&LocateResponse {
                request_id: id,
                outcome,
            })
        })
        .collect();

    // Chaos hammers venue 1 on its own connections while the clean
    // driver interleaves venue-2 requests.
    let chaos_thread = std::thread::spawn(move || {
        let config = ChaosConfig {
            venue_id: 1,
            ..ChaosConfig::new(plan)
        };
        chaos::run(addr, &config, &chaos_batch).expect("chaos run completes")
    });
    let mut conn = TcpStream::connect(addr).expect("connect clean driver");
    for (reports, (&id, want_bytes)) in clean_batch.iter().zip(clean_ids.iter().zip(&want)) {
        let resp = locate(&mut conn, id, 2, reports);
        assert_eq!(resp.request_id, id, "reply cross-wired between venues");
        assert_eq!(
            outcome_bytes(&resp),
            *want_bytes,
            "clean venue degraded while venue 1 was under chaos"
        );
    }
    let report = chaos_thread.join().expect("chaos driver panicked");
    assert_eq!(report.outcomes.len(), 60, "chaos run lost requests");
    drop(conn);

    // The per-venue counters kept the two tenants apart.
    let health = handle.shutdown();
    let requests_of = |id: u64| {
        health
            .venues
            .iter()
            .find(|v| v.venue_id == id)
            .map(|v| v.requests)
            .unwrap_or(0)
    };
    assert_eq!(requests_of(2), 16, "clean venue request count");
    assert!(requests_of(1) > 0, "chaos venue never resolved");
}

/// Contract 3: with a budget that fits only one fleet venue at a time,
/// round-robin traffic forces constant evict/rebuild churn — yet every
/// request is answered and attributed to its venue.
#[test]
fn lru_eviction_under_tight_budget_loses_no_requests() {
    let resident = resident_server(&Venue::lab());
    let fleet_bytes = |id: u64| {
        LocalizationServer::new(fleet_venue(id).plan.boundary().clone())
            .venue_cache()
            .approx_bytes()
    };
    // Resident (never evicted) + the largest fleet cache + slack: at most
    // one of the three fleet venues can be resident at any moment.
    let budget =
        resident.venue_cache().approx_bytes() + (1..=3).map(fleet_bytes).max().unwrap() + 64;

    let handle = spawn(
        resident,
        DaemonConfig {
            venue_budget_bytes: budget,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");
    let addr = handle.local_addr();
    for id in 1..=3u64 {
        admin::onboard(addr, &WireVenue::from_venue(id, &fleet_venue(id))).expect("onboard");
    }

    // Cheapest admissible request per venue: one empty-burst report, so
    // the solve is boundary-only and the test exercises churn, not DSP.
    let cheap = |id: u64| {
        let ap = fleet_venue(id).static_deployment()[0];
        vec![CsiReport {
            site: ApSite::fixed(1, ap),
            burst: Vec::new(),
        }]
    };

    const ROUNDS: u64 = 10;
    let mut conn = TcpStream::connect(addr).expect("connect");
    for round in 0..ROUNDS {
        for id in 1..=3u64 {
            let request_id = round * 3 + id;
            let resp = locate(&mut conn, request_id, id, &cheap(id));
            assert_eq!(resp.request_id, request_id);
            assert!(
                resp.outcome.is_ok(),
                "request {request_id} to venue {id} failed under eviction churn: {:?}",
                resp.outcome
            );
        }
    }
    drop(conn);

    let health = handle.shutdown();
    let venue = |id: u64| {
        health
            .venues
            .iter()
            .find(|v| v.venue_id == id)
            .unwrap_or_else(|| panic!("venue {id} missing from health"))
    };
    let total: u64 = (1..=3).map(|id| venue(id).requests).sum();
    assert_eq!(total, 3 * ROUNDS, "per-venue counters must sum to total");
    let evictions: u64 = (1..=3).map(|id| venue(id).cache_evictions).sum();
    let rebuilds: u64 = (1..=3).map(|id| venue(id).cache_rebuilds).sum();
    assert!(
        evictions > 0,
        "budget {budget} never forced an eviction: {:?}",
        health.venues
    );
    assert!(rebuilds > 0, "no rebuild ever served a request");
}
