//! Property and fuzz tests for [`StreamDecoder`], the incremental frame
//! decoder behind the event-loop socket backend.
//!
//! The contract under test: however a byte stream is sliced into reads —
//! one byte at a time, split at every possible boundary, or coalesced
//! into one giant read — the decoder yields exactly the frame sequence a
//! whole-buffer [`decode_frame`] loop yields, errors on exactly the
//! inputs `decode_frame` rejects, and keeps its internal buffer bounded
//! by compaction. A nonblocking socket delivers bytes at arbitrary
//! boundaries, so any slicing-dependence here would be a heisenbug in
//! production.

use nomloc_net::wire::{
    decode_frame, frame_to_vec, ErrorReply, LocateRequest, LocateResponse, ServerHealth,
    StreamDecoder, WireEstimate, WireReport, WireSession, WireSnapshot,
};
use nomloc_net::{ErrorCode, Frame, WireError};
use proptest::prelude::*;

/// A deterministic little frame zoo: every frame kind, with payloads from
/// empty to multi-report, derived from `seed`.
fn frame_zoo(seed: u64) -> Vec<Frame> {
    let mix = |i: u64| nomloc_faults::mix64(seed, i);
    let f = |i: u64| (mix(i) % 10_000) as f64 / 100.0;
    let snapshot = |i: u64, n: usize| WireSnapshot {
        offsets_hz: (0..n).map(|k| k as f64 * 312_500.0).collect(),
        h: (0..n)
            .map(|k| (f(i + k as u64), f(i + 50 + k as u64)))
            .collect(),
    };
    vec![
        Frame::LocateRequest(LocateRequest {
            request_id: mix(1),
            deadline_us: (mix(2) % 1_000_000) as u32,
            venue_id: mix(9),
            session_id: mix(11),
            reports: vec![
                WireReport {
                    ap: 1,
                    visit: 0,
                    x: f(3),
                    y: f(4),
                    burst: vec![snapshot(5, 4), snapshot(6, 2)],
                },
                WireReport {
                    ap: 2,
                    visit: 1,
                    x: f(7),
                    y: f(8),
                    burst: Vec::new(),
                },
            ],
        }),
        Frame::LocateResponse(LocateResponse {
            request_id: mix(9),
            outcome: Ok(WireEstimate {
                x: f(10),
                y: f(11),
                relaxation_cost: f(12),
                region_area: f(13),
                quality: (mix(21) % 3) as u8,
                n_constraints: mix(14) % 100,
                n_winning_pieces: mix(15) % 100,
                lp_iterations: mix(16) % 100,
                warm_start_hits: mix(17) % 100,
                phase1_pivots_saved: mix(18) % 100,
                session: if mix(22) % 2 == 0 {
                    None
                } else {
                    Some(WireSession {
                        smoothed_x: f(23),
                        smoothed_y: f(24),
                        velocity_x: f(25),
                        velocity_y: f(26),
                        error_bound: f(27),
                    })
                },
            }),
        }),
        Frame::LocateResponse(LocateResponse {
            request_id: mix(19),
            outcome: Err(ErrorReply {
                code: ErrorCode::Malformed,
                message: format!("hostile payload {}", mix(20)),
            }),
        }),
        Frame::StatsRequest,
        Frame::StatsResponse(ServerHealth::default()),
    ]
}

/// Ground truth: decode `bytes` with repeated whole-buffer `decode_frame`
/// calls. Returns the frames and what terminated the stream.
fn reference_decode(bytes: &[u8]) -> (Vec<Frame>, Option<WireError>) {
    let mut frames = Vec::new();
    let mut rest = bytes;
    loop {
        if rest.is_empty() {
            return (frames, None);
        }
        match decode_frame(rest) {
            Ok((frame, consumed)) => {
                frames.push(frame);
                rest = &rest[consumed..];
            }
            Err(WireError::Incomplete { .. }) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
}

/// Feed `bytes` to a fresh decoder in the given chunks; collect frames
/// until exhaustion or error.
fn chunked_decode(bytes: &[u8], chunk_sizes: &[usize]) -> (Vec<Frame>, Option<WireError>) {
    let mut dec = StreamDecoder::new();
    let mut frames = Vec::new();
    let mut offset = 0;
    let mut sizes = chunk_sizes.iter().copied().cycle();
    while offset < bytes.len() {
        let take = sizes.next().unwrap_or(1).clamp(1, bytes.len() - offset);
        dec.extend(&bytes[offset..offset + take]);
        offset += take;
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => frames.push(frame),
                Ok(None) => break,
                Err(e) => return (frames, Some(e)),
            }
        }
    }
    (frames, None)
}

/// Errors must match in kind; messages may differ in offsets (the
/// incremental decoder reports positions relative to its own buffer).
fn same_error_kind(a: &WireError, b: &WireError) -> bool {
    std::mem::discriminant(a) == std::mem::discriminant(b)
}

fn assert_parity(bytes: &[u8], chunk_sizes: &[usize], label: &str) {
    let (want_frames, want_err) = reference_decode(bytes);
    let (got_frames, got_err) = chunked_decode(bytes, chunk_sizes);
    assert_eq!(
        got_frames, want_frames,
        "{label}: frame sequence diverged from whole-buffer decode"
    );
    match (&got_err, &want_err) {
        (None, None) => {}
        (Some(g), Some(w)) => assert!(
            same_error_kind(g, w),
            "{label}: error kind diverged: {g:?} vs {w:?}"
        ),
        (g, w) => panic!("{label}: error presence diverged: {g:?} vs {w:?}"),
    }
}

/// One byte at a time — the worst case a nonblocking socket can deliver.
#[test]
fn byte_at_a_time_decodes_identically() {
    let blob: Vec<u8> = frame_zoo(42).iter().flat_map(frame_to_vec).collect();
    assert_parity(&blob, &[1], "byte-at-a-time");
}

/// Every possible two-chunk split of a multi-frame blob: the boundary
/// sweeps through magic, length, payload, and CRC of every frame.
#[test]
fn every_split_boundary_decodes_identically() {
    // A smaller zoo keeps the quadratic sweep fast but still crosses
    // every header field of several frames.
    let frames = frame_zoo(7);
    let blob: Vec<u8> = frames[..3].iter().flat_map(frame_to_vec).collect();
    let (want_frames, want_err) = reference_decode(&blob);
    assert!(want_err.is_none());
    for split in 0..=blob.len() {
        let mut dec = StreamDecoder::new();
        let mut got = Vec::new();
        for part in [&blob[..split], &blob[split..]] {
            dec.extend(part);
            while let Some(frame) = dec
                .next_frame()
                .unwrap_or_else(|e| panic!("split at {split}: {e}"))
            {
                got.push(frame);
            }
        }
        assert_eq!(got, want_frames, "split at byte {split} diverged");
        assert_eq!(dec.buffered(), 0, "split at {split}: bytes left behind");
    }
}

/// Coalesced reads — everything in one `extend` — decode identically too,
/// and a trailing partial frame stays buffered until completed.
#[test]
fn coalesced_and_resumed_reads_decode_identically() {
    let frames = frame_zoo(1234);
    let blob: Vec<u8> = frames.iter().flat_map(frame_to_vec).collect();
    let (want_frames, _) = reference_decode(&blob);

    // Whole blob plus a partial frame in one shot.
    let tail = frame_to_vec(&frames[0]);
    let mut dec = StreamDecoder::new();
    dec.extend(&blob);
    dec.extend(&tail[..tail.len() - 1]);
    let mut got = Vec::new();
    while let Some(frame) = dec.next_frame().expect("valid stream") {
        got.push(frame);
    }
    assert_eq!(got, want_frames);
    assert_eq!(dec.buffered(), tail.len() - 1, "partial frame not retained");

    // The last byte arrives: the buffered frame completes.
    dec.extend(&tail[tail.len() - 1..]);
    let last = dec.next_frame().expect("valid stream").expect("one frame");
    assert_eq!(last, frames[0]);
    assert_eq!(dec.buffered(), 0);
}

/// Garbage inputs error exactly where whole-buffer decoding errors:
/// corrupting any single byte of a frame stream produces the same error
/// kind (or the same silently-valid decode, for bytes CRC can't see —
/// there are none, but the parity check does not presuppose that).
#[test]
fn corrupted_streams_error_identically() {
    let frames = frame_zoo(99);
    let blob: Vec<u8> = frames[..2].iter().flat_map(frame_to_vec).collect();
    for pos in 0..blob.len() {
        let mut bad = blob.clone();
        bad[pos] ^= 0x5A;
        assert_parity(&bad, &[1], &format!("corrupt byte {pos}, 1B chunks"));
        assert_parity(
            &bad,
            &[7, 3, 1],
            &format!("corrupt byte {pos}, mixed chunks"),
        );
    }
}

/// The decoder's buffer stays bounded: after draining a long stream fed
/// in small chunks, compaction has kept capacity near the largest frame,
/// not near the total bytes ever seen.
#[test]
fn compaction_bounds_the_buffer() {
    let frames = frame_zoo(5);
    let one = frame_to_vec(&frames[0]);
    let mut dec = StreamDecoder::new();
    let mut total = 0usize;
    for _ in 0..2_000 {
        dec.extend(&one);
        total += one.len();
        while dec.next_frame().expect("valid stream").is_some() {}
    }
    assert_eq!(dec.buffered(), 0);
    assert!(
        dec.capacity() < total / 4,
        "no compaction: capacity {} after {} bytes streamed",
        dec.capacity(),
        total
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary frame sequences sliced into arbitrary chunk patterns —
    /// with optional leading/trailing garbage — always decode exactly
    /// like the whole-buffer reference.
    #[test]
    fn arbitrary_slicing_has_decode_parity(
        seed in 0u64..u64::MAX,
        n_frames in 1usize..6,
        chunk_sizes in prop::collection::vec(1usize..96, 1..8),
        garbage in prop::collection::vec(0u32..256, 0..24),
        garbage_leads in 0u32..2,
    ) {
        let zoo = frame_zoo(seed);
        let garbage: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        let garbage_leads = garbage_leads == 1;
        let mut blob = Vec::new();
        if garbage_leads {
            blob.extend_from_slice(&garbage);
        }
        for i in 0..n_frames {
            blob.extend_from_slice(&frame_to_vec(&zoo[i % zoo.len()]));
        }
        if !garbage_leads {
            blob.extend_from_slice(&garbage);
        }
        assert_parity(&blob, &chunk_sizes, "proptest slicing");
    }

    /// Truncating a valid stream at any point never errors — the decoder
    /// waits for more bytes — and yields exactly the frames whose bytes
    /// fully arrived.
    #[test]
    fn truncation_never_errors(
        seed in 0u64..u64::MAX,
        cut_num in 0u32..1_001,
    ) {
        let zoo = frame_zoo(seed);
        let blob: Vec<u8> = zoo.iter().flat_map(frame_to_vec).collect();
        let cut = (blob.len() as u64 * cut_num as u64 / 1_000) as usize;
        let (got, err) = chunked_decode(&blob[..cut], &[13]);
        prop_assert!(err.is_none(), "truncation at {cut} errored: {err:?}");
        let (want, _) = reference_decode(&blob[..cut]);
        prop_assert_eq!(got, want);
    }
}
