//! Idle-connection soak: the event-loop backend holds thousands of
//! mostly-idle connections with bounded per-connection memory and no
//! measurable impact on the active traffic sharing the loops.
//!
//! This is the scaling claim that motivated the transplant: a nomadic-AP
//! deployment keeps one long-lived connection per AP, and almost all of
//! them are quiet at any instant. Thread-per-connection burns a stack
//! per idle socket; the event loop pays one registered fd. The full-size
//! 10k run (fd limits want a daemon in its own process) lives in the
//! serving benchmark; this in-process test pins the same properties at
//! 2 000 connections so regressions fail `cargo test`, not just a bench.
//!
//! Memory is asserted via `VmRSS` deltas on Linux (the only platform the
//! CI image runs); elsewhere the connection-count and latency assertions
//! still run.

#![cfg(unix)]

use nomloc_core::scenario::Venue;
use nomloc_core::server::CsiReport;
use nomloc_core::{ApSite, LocalizationServer};
use nomloc_net::{loadgen, spawn, DaemonConfig, LoadgenConfig, SocketBackend};
use std::time::Duration;

const IDLE_CONNS: usize = 2_000;
const ACTIVE_REQUESTS: usize = 400;

/// Current resident set size in bytes, from `/proc/self/status`.
/// `None` off Linux (or if the field ever goes missing).
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

fn lab_server() -> LocalizationServer {
    LocalizationServer::new(Venue::lab().plan.boundary().clone()).with_workers(2)
}

/// Cheap-but-valid requests (empty bursts → boundary-only solves): the
/// soak measures the socket layer, not the estimator.
fn workload(n: usize) -> Vec<Vec<CsiReport>> {
    let venue = Venue::lab();
    let ap = venue.static_deployment()[0];
    (0..n)
        .map(|_| {
            vec![CsiReport {
                site: ApSite::fixed(1, ap),
                burst: Vec::new(),
            }]
        })
        .collect()
}

#[test]
fn thousands_of_idle_connections_are_cheap_and_harmless() {
    let handle = spawn(
        lab_server(),
        DaemonConfig {
            socket_backend: SocketBackend::EventLoop,
            event_loops: 2,
            ..DaemonConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("spawn daemon");
    let addr = handle.local_addr();
    let requests = workload(ACTIVE_REQUESTS);

    // Baseline: the same active workload with no idle crowd.
    let base_config = LoadgenConfig {
        connections: 4,
        ..LoadgenConfig::default()
    };
    let base = loadgen::run(addr, &base_config, &requests).expect("baseline run");
    assert_eq!(base.outcomes.len(), ACTIVE_REQUESTS);
    let base_p99 = base.latency_quantile(0.99);

    // Soak: 2 000 idle connections held open for the whole run while the
    // same 4 active connections re-drive the workload.
    let rss_before = rss_bytes();
    let soak_config = LoadgenConfig {
        connections: 4,
        idle_connections: IDLE_CONNS,
        ..LoadgenConfig::default()
    };
    let soak = loadgen::run(addr, &soak_config, &requests).expect("soak run");
    let rss_after = rss_bytes();

    // Every idle connection was actually established and held.
    assert_eq!(
        soak.idle_held, IDLE_CONNS,
        "could not hold {IDLE_CONNS} idle connections"
    );
    // The active traffic was fully served alongside the idle crowd.
    assert_eq!(soak.outcomes.len(), ACTIVE_REQUESTS);
    for (i, outcome) in soak.outcomes.iter().enumerate() {
        assert!(
            outcome.reply.is_ok(),
            "active request {i} failed during soak: {:?}",
            outcome.reply
        );
    }

    // Idle connections must not meaningfully tax active latency. Debug
    // builds under parallel test load are noisy, so the bound is loose —
    // an event loop that *walked* idle connections per wakeup would blow
    // through it at 2 000 sockets (that's the regression this catches).
    let soak_p99 = soak.latency_quantile(0.99);
    let allowed = std::cmp::max(base_p99 * 20, Duration::from_millis(100));
    assert!(
        soak_p99 <= allowed,
        "idle crowd degraded active p99: {base_p99:?} -> {soak_p99:?} (allowed {allowed:?})"
    );

    // Bounded per-connection memory: both sides of every socket live in
    // this process, and the crowd must still cost well under 8 KiB per
    // connection on average (a thread stack would be ≥ 64× that).
    if let (Some(before), Some(after)) = (rss_before, rss_after) {
        let delta = after.saturating_sub(before);
        assert!(
            delta < 16 << 20,
            "idle crowd cost {delta} bytes RSS (limit 16 MiB)"
        );
        assert!(
            delta / (IDLE_CONNS as u64) < 8 * 1024,
            "per-connection RSS {} bytes exceeds 8 KiB",
            delta / (IDLE_CONNS as u64)
        );
    }

    let health = handle.shutdown();
    assert_eq!(health.protocol_errors, 0, "soak caused protocol errors");
    assert!(
        health.connections_accepted >= (IDLE_CONNS + 8) as u64,
        "daemon did not accept the idle crowd: {health}"
    );
}
