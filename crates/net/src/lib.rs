//! `nomloc-net`: the network serving tier of NomLoc.
//!
//! Everything before this crate runs in one process: `nomloc-core`'s
//! [`LocalizationServer`](nomloc_core::LocalizationServer) turns CSI
//! reports into position estimates, batched and cached. Real deployments,
//! though, ingest CSI reports from *remote* clients — phones and APs
//! forwarding measurements over the network — so this crate adds:
//!
//! * [`wire`]: a versioned, length-prefixed, CRC-protected binary frame
//!   format with explicit encode/decode for CSI-report requests, location
//!   estimates, per-request error codes, and a stats/health frame;
//! * [`daemon`]: a std-only TCP daemon (no async runtime) with two
//!   socket backends — a readiness-driven event loop (the default on
//!   Unix: nonblocking connections on [`poll`]-based loop threads, with
//!   bounded per-connection write buffers and slow-reader eviction) and
//!   a thread-per-connection fallback — that coalesces requests *across
//!   connections* into adaptive micro-batches feeding
//!   `LocalizationServer::process_batch`, and applies admission control
//!   (bounded queue → explicit `Overloaded` replies), per-request
//!   deadlines, and graceful drain-on-shutdown;
//! * [`poll`] (Unix): a minimal std-only readiness abstraction (epoll on
//!   Linux, `poll(2)` elsewhere) backing the event-loop socket layer;
//! * [`loadgen`]: a pipelining multi-connection load generator reporting
//!   throughput and exact p50/p95/p99 latency, with reconnect-and-resend
//!   on transport failures (capped exponential backoff plus jitter);
//! * [`chaos`]: a fault-injecting replay driver that mangles requests
//!   according to a seeded [`nomloc_faults::FaultPlan`] and verifies the
//!   daemon's per-fault-class serving contract against a fault-free
//!   baseline;
//! * [`registry`]: the multi-venue registry — venues onboard as pure
//!   data over the wire v3 admin frames, publish through a hand-rolled
//!   read-mostly arc-swap (one atomic load per locate in steady state),
//!   and LRU-evict cold caches under a memory budget with bit-identical
//!   rebuild on the next request;
//! * [`sessions`]: the crash-safe session plane — per-(venue, session)
//!   motion trackers in a sharded, TTL-evicted table owned outside the
//!   batcher threads, so sessions survive per-batch panics and batcher
//!   respawn bit-identically, and power the `Predicted` degradation
//!   tier;
//! * [`admin`]: the blocking admin-plane client (onboard/retire/list)
//!   shared by the CLI, the bench bins, and the tests.
//!
//! The wire codec is bit-exact for `f64`s, so a request decoded by the
//! daemon is *identical* to the in-process value and the pipeline —
//! deterministic by construction — returns byte-identical estimates over
//! the network and in process. The loopback integration test pins that.

// `deny` instead of `forbid` for one reason: the event-loop backend's
// readiness layer needs four libc symbols std does not re-export. All
// `unsafe` lives in the tiny `sys` module of `poll.rs` (explicitly
// `allow`ed there); everything else in the crate still refuses it.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod chaos;
pub mod crc32;
pub mod daemon;
pub mod loadgen;
#[cfg(unix)]
pub mod poll;
pub mod pool;
pub mod registry;
pub mod sessions;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosReport, ChaosSummary};
pub use daemon::{spawn, DaemonConfig, DaemonHandle, SocketBackend};
pub use loadgen::{LoadgenConfig, LoadgenReport, VenuePicker};
pub use pool::BufferPool;
pub use registry::{RegistryReader, VenueRegistry};
pub use sessions::{SessionConfig, SessionTable};
pub use wire::{ErrorCode, Frame, ServerHealth, VenueSummary, WireError, WireVenue};
