//! `nomloc-net`: the network serving tier of NomLoc.
//!
//! Everything before this crate runs in one process: `nomloc-core`'s
//! [`LocalizationServer`](nomloc_core::LocalizationServer) turns CSI
//! reports into position estimates, batched and cached. Real deployments,
//! though, ingest CSI reports from *remote* clients — phones and APs
//! forwarding measurements over the network — so this crate adds:
//!
//! * [`wire`]: a versioned, length-prefixed, CRC-protected binary frame
//!   format with explicit encode/decode for CSI-report requests, location
//!   estimates, per-request error codes, and a stats/health frame;
//! * [`daemon`]: a std-only TCP daemon (no async runtime) that accepts
//!   connections on sharded acceptor threads, coalesces requests *across
//!   connections* into adaptive micro-batches feeding
//!   `LocalizationServer::process_batch`, and applies admission control
//!   (bounded queue → explicit `Overloaded` replies), per-request
//!   deadlines, and graceful drain-on-shutdown;
//! * [`loadgen`]: a pipelining multi-connection load generator reporting
//!   throughput and exact p50/p95/p99 latency, with reconnect-and-resend
//!   on transport failures (capped exponential backoff plus jitter);
//! * [`chaos`]: a fault-injecting replay driver that mangles requests
//!   according to a seeded [`nomloc_faults::FaultPlan`] and verifies the
//!   daemon's per-fault-class serving contract against a fault-free
//!   baseline.
//!
//! The wire codec is bit-exact for `f64`s, so a request decoded by the
//! daemon is *identical* to the in-process value and the pipeline —
//! deterministic by construction — returns byte-identical estimates over
//! the network and in process. The loopback integration test pins that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod crc32;
pub mod daemon;
pub mod loadgen;
pub mod pool;
pub mod wire;

pub use chaos::{ChaosConfig, ChaosReport, ChaosSummary};
pub use daemon::{spawn, DaemonConfig, DaemonHandle};
pub use loadgen::{LoadgenConfig, LoadgenReport};
pub use pool::BufferPool;
pub use wire::{ErrorCode, Frame, ServerHealth, WireError};
