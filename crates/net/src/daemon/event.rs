//! The event-driven socket backend: N event-loop threads own every
//! connection through a [`Poller`](crate::poll::Poller), replacing the
//! thread-per-connection reader model while feeding the *same* admission
//! queue, batchers, and reply encoding — the serving contract is
//! backend-invariant and the parameterized test suites pin it.
//!
//! Per loop: one waker (batchers nudge the loop when they queue reply
//! bytes), one nonblocking clone of the listener (every loop accepts;
//! the kernel hands each connection to exactly one), and a slab of
//! nonblocking connections, each with an incremental
//! [`StreamDecoder`](crate::wire::StreamDecoder) and a bounded outbound
//! buffer ([`QueuedSink`]).
//!
//! **Writes are readiness-aware and bounded.** Batchers never touch a
//! socket: they append encoded reply frames to the connection's
//! `QueuedSink` and wake its loop, which flushes on writability. A
//! connection whose peer stops reading fills its buffer to
//! `write_buffer_cap` and is *evicted* (buffer dropped, socket closed,
//! `slow_readers_evicted` bumped) instead of buffering without bound —
//! batch-mates on the same loop keep flowing because the loop never
//! blocks in `write`.
//!
//! **Shutdown is two-phase.** Phase one (`shutting_down`): loops
//! deregister their listeners and stop reading, while batchers drain the
//! admitted queue and append replies. Phase two (`drain_flush`, set after
//! the watchdog joins the batchers): loops flush every remaining
//! outbound byte (bounded by a deadline), then close and exit — so
//! "every admitted request is answered" holds on the wire, not just in
//! the buffers.

use super::{error_reply, handle_frame, reply, version_reject, ConnWriter, Shared, POLL_INTERVAL};
use crate::poll::{Event, Interest, Poller, Waker};
use crate::wire::{ErrorCode, StreamDecoder, WireError};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token of the loop's waker fd.
const WAKER_TOKEN: u64 = 0;
/// Token of the loop's listener clone.
const LISTENER_TOKEN: u64 = 1;
/// Connection tokens are `slab slot + CONN_TOKEN_BASE`.
const CONN_TOKEN_BASE: u64 = 2;

/// Upper bound on the final flush phase: a peer that reads slower than
/// this at shutdown forfeits its tail replies (the socket closes anyway).
const FLUSH_DEADLINE: Duration = Duration::from_secs(5);
/// Poll granularity inside the final flush phase.
const FLUSH_POLL: Duration = Duration::from_millis(5);

/// Accepts drained per listener-readiness pass. An accept storm (a herd
/// of clients connecting at once) used to stall the whole loop while it
/// drained *every* pending accept — ~10µs of syscalls each — before any
/// established connection's requests were served, which is where the
/// idle-crowd p99 inflation lived. Level-triggered polling re-reports
/// the listener on the next pass, so capping the drain just interleaves
/// the remaining backlog with request handling.
const ACCEPTS_PER_PASS: usize = 64;

/// The cross-thread face of one event loop: batchers (and `shutdown`)
/// reach the loop only through this — mark a connection dirty, wake the
/// poller.
pub(super) struct LoopShared {
    waker: Waker,
    /// Slab slots with freshly queued outbound bytes (or an eviction to
    /// act on). Deduplicated by each sink's [`QueuedSink::dirty`] flag —
    /// a producer pushes its slot at most once per loop pass, so marking
    /// is O(1) regardless of how many replies are in flight. Drained by
    /// the loop each pass.
    dirty: Mutex<Vec<usize>>,
    /// A wake byte is already in the waker pipe (or this pass will pick
    /// the work up anyway) — dedups the wake syscall under reply bursts.
    wake_pending: AtomicBool,
}

impl LoopShared {
    /// Nudges the loop out of `Poller::wait` (shutdown phase changes,
    /// freshly queued replies). One pipe write per loop pass, no matter
    /// how many producers call this.
    pub(super) fn wake(&self) {
        if !self.wake_pending.swap(true, Ordering::AcqRel) {
            self.waker.wake();
        }
    }

    fn mark_dirty(&self, slot: usize) {
        self.dirty.lock().unwrap().push(slot);
        self.wake();
    }

    /// Swaps the dirty list out and re-arms the wake dedup: producers
    /// pushing after this write a fresh wake byte, producers pushing
    /// before it are in `into`.
    fn take_dirty(&self, into: &mut Vec<usize>) {
        into.clear();
        self.wake_pending.store(false, Ordering::Release);
        std::mem::swap(&mut *self.dirty.lock().unwrap(), into);
    }
}

/// The bounded outbound buffer of one event-loop connection — the
/// `Queued` arm of [`ConnWriter`]. Producers append whole encoded
/// frames; only the owning loop writes to the socket.
pub(super) struct QueuedSink {
    owner: Arc<LoopShared>,
    slot: usize,
    cap: usize,
    /// This sink's slot is already on the owner's dirty list. Cleared by
    /// the loop as it drains the list, so each send is one `swap` — not
    /// a locked `contains` scan over the list.
    dirty: AtomicBool,
    out: Mutex<OutBuf>,
}

#[derive(Default)]
struct OutBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already written to the socket.
    written: usize,
    /// The loop closed the socket; appends are dropped.
    closed: bool,
    /// The buffer overflowed `cap`; the loop will close the socket.
    evicted: bool,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.written
    }
}

impl QueuedSink {
    /// Appends reply bytes and wakes the loop. Returns `false` if the
    /// connection is gone or just got evicted for overflowing its cap.
    pub(super) fn send(&self, bytes: &[u8]) -> bool {
        let queued = {
            let mut out = self.out.lock().unwrap();
            if out.closed || out.evicted {
                return false;
            }
            if out.written > 0 && out.written == out.buf.len() {
                out.buf.clear();
                out.written = 0;
            }
            if out.pending() + bytes.len() > self.cap {
                // Slow reader: the peer stopped draining its socket and
                // the bounded buffer is full. Evict instead of buffering
                // without bound; the loop closes the socket.
                out.evicted = true;
                out.buf.clear();
                out.written = 0;
                false
            } else {
                out.buf.extend_from_slice(bytes);
                true
            }
        };
        if !self.dirty.swap(true, Ordering::AcqRel) {
            self.owner.mark_dirty(self.slot);
        }
        queued
    }

    fn mark_closed(&self) {
        let mut out = self.out.lock().unwrap();
        out.closed = true;
        out.buf = Vec::new();
        out.written = 0;
    }
}

/// One connection owned by an event loop.
struct Conn {
    stream: TcpStream,
    decoder: StreamDecoder,
    writer: Arc<ConnWriter>,
    /// A fatal reply (protocol error) is queued; close the socket as
    /// soon as the outbound buffer flushes.
    close_after_flush: bool,
    /// Whether the fd is currently registered for write-readiness.
    want_write: bool,
}

/// A minimal slab: O(1) insert/remove with stable indices (the poller
/// tokens) and slot reuse.
#[derive(Default)]
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Slab {
    fn insert_with(&mut self, make: impl FnOnce(usize) -> Conn) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot] = Some(make(slot));
                slot
            }
            None => {
                let slot = self.slots.len();
                let conn = make(slot);
                self.slots.push(Some(conn));
                slot
            }
        }
    }

    fn get_mut(&mut self, slot: usize) -> Option<&mut Conn> {
        self.slots.get_mut(slot).and_then(|s| s.as_mut())
    }

    fn remove(&mut self, slot: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(slot).and_then(|s| s.take());
        if conn.is_some() {
            self.free.push(slot);
        }
        conn
    }

    fn occupied(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }

    fn any_pending(&self) -> bool {
        self.slots.iter().flatten().any(|conn| {
            let ConnWriter::Queued(sink) = &*conn.writer else {
                return false;
            };
            let out = sink.out.lock().unwrap();
            !out.closed && !out.evicted && out.pending() > 0
        })
    }
}

/// The loop threads and their cross-thread handles, as spawned.
pub(super) type SpawnedLoops = (Vec<JoinHandle<()>>, Vec<Arc<LoopShared>>);

/// Spawns `config.event_loops` loop threads sharing the listener.
pub(super) fn spawn_loops(
    shared: &Arc<Shared>,
    listener: &TcpListener,
) -> io::Result<SpawnedLoops> {
    let n = shared.config.event_loops.max(1);
    let mut threads = Vec::with_capacity(n);
    let mut loops = Vec::with_capacity(n);
    for i in 0..n {
        let listener = listener.try_clone()?;
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.register(waker.rx_fd(), WAKER_TOKEN, Interest::READABLE)?;
        poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READABLE)?;
        let loop_shared = Arc::new(LoopShared {
            waker,
            dirty: Mutex::new(Vec::new()),
            wake_pending: AtomicBool::new(false),
        });
        loops.push(Arc::clone(&loop_shared));
        let shared = Arc::clone(shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("nomloc-evloop-{i}"))
                .spawn(move || run_loop(&shared, poller, &listener, &loop_shared))?,
        );
    }
    Ok((threads, loops))
}

fn run_loop(
    shared: &Arc<Shared>,
    mut poller: Poller,
    listener: &TcpListener,
    ls: &Arc<LoopShared>,
) {
    let mut conns = Slab::default();
    let mut events: Vec<Event> = Vec::new();
    let mut dirty: Vec<usize> = Vec::new();
    let mut tmp = vec![0u8; 64 * 1024];
    let mut listener_registered = true;
    loop {
        if shared.drain_flush.load(Ordering::Acquire) {
            flush_phase(shared, &mut poller, &mut conns, ls);
            return;
        }
        let shutting = shared.shutting_down.load(Ordering::Acquire);
        if shutting && listener_registered {
            let _ = poller.deregister(listener.as_raw_fd());
            listener_registered = false;
        }
        if poller.wait(&mut events, Some(POLL_INTERVAL)).is_err() {
            // A failed wait would otherwise spin; pace it like the
            // threaded backend paces accept errors.
            std::thread::sleep(POLL_INTERVAL);
            continue;
        }
        for &ev in &events {
            match ev.token {
                WAKER_TOKEN => ls.waker.drain(),
                LISTENER_TOKEN => {
                    if !shutting {
                        accept_ready(shared, &poller, listener, &mut conns, ls);
                    }
                }
                token => {
                    let slot = (token - CONN_TOKEN_BASE) as usize;
                    if ev.readable {
                        if shutting {
                            // Drain mode: stop consuming input (admission
                            // is closed anyway) but keep flushing replies.
                        } else {
                            handle_readable(shared, &poller, &mut conns, slot, &mut tmp);
                        }
                    }
                    if ev.writable {
                        flush_slot(shared, &poller, &mut conns, slot);
                    }
                }
            }
        }
        ls.take_dirty(&mut dirty);
        for &slot in &dirty {
            // Re-arm the sink's dedup *before* flushing: a reply queued
            // mid-flush re-marks the slot instead of being stranded.
            if let Some(conn) = conns.get_mut(slot) {
                if let ConnWriter::Queued(sink) = &*conn.writer {
                    sink.dirty.store(false, Ordering::Release);
                }
            }
            flush_slot(shared, &poller, &mut conns, slot);
        }
    }
}

fn accept_ready(
    shared: &Arc<Shared>,
    poller: &Poller,
    listener: &TcpListener,
    conns: &mut Slab,
    ls: &Arc<LoopShared>,
) {
    for _ in 0..ACCEPTS_PER_PASS {
        match listener.accept() {
            Ok((stream, _)) => {
                shared
                    .net
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue; // drop it; the peer sees a reset
                }
                let cap = shared.config.write_buffer_cap.max(1);
                let owner = Arc::clone(ls);
                let slot = conns.insert_with(|slot| Conn {
                    writer: Arc::new(ConnWriter::Queued(QueuedSink {
                        owner,
                        slot,
                        cap,
                        dirty: AtomicBool::new(false),
                        out: Mutex::new(OutBuf::default()),
                    })),
                    stream,
                    decoder: StreamDecoder::new(),
                    close_after_flush: false,
                    want_write: false,
                });
                let fd = conns
                    .get_mut(slot)
                    .map(|c| c.stream.as_raw_fd())
                    .expect("slot just inserted");
                if poller
                    .register(fd, CONN_TOKEN_BASE + slot as u64, Interest::READABLE)
                    .is_err()
                {
                    // Can't watch it; drop the connection rather than leak.
                    conns.remove(slot);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient (e.g. EMFILE). The listener stays readable, so
                // back off briefly instead of spinning on the error.
                std::thread::sleep(Duration::from_millis(5));
                return;
            }
        }
    }
}

/// Reads until `WouldBlock`, feeding the incremental decoder and handing
/// complete frames to the shared `handle_frame` path.
fn handle_readable(
    shared: &Arc<Shared>,
    poller: &Poller,
    conns: &mut Slab,
    slot: usize,
    tmp: &mut [u8],
) {
    enum Action {
        ReadMore,
        WouldBlock,
        Close,
        CloseAfterFlush,
    }
    loop {
        let action = {
            let Some(conn) = conns.get_mut(slot) else {
                return;
            };
            match conn.stream.read(tmp) {
                Ok(0) => Action::Close, // peer closed
                Ok(n) => {
                    conn.decoder.extend(&tmp[..n]);
                    let mut action = Action::ReadMore;
                    loop {
                        match conn.decoder.next_frame() {
                            Ok(Some(frame)) => {
                                if handle_frame(shared, &conn.writer, frame).is_err() {
                                    action = Action::CloseAfterFlush;
                                    break;
                                }
                            }
                            Ok(None) => break,
                            Err(WireError::BadVersion { got }) => {
                                // Version mismatch: reply in the *client's*
                                // protocol version so it can decode the
                                // rejection, then close.
                                shared.net.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                version_reject(shared, &conn.writer, got);
                                action = Action::CloseAfterFlush;
                                break;
                            }
                            Err(e) => {
                                // Protocol violation: same contract as the
                                // threaded backend — explain, then close
                                // (once the explanation has flushed).
                                shared.net.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                reply(
                                    shared,
                                    &conn.writer,
                                    error_reply(0, ErrorCode::Malformed, e.to_string()),
                                );
                                action = Action::CloseAfterFlush;
                                break;
                            }
                        }
                    }
                    action
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Action::WouldBlock,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => Action::ReadMore,
                Err(_) => Action::Close,
            }
        };
        match action {
            Action::ReadMore => {}
            Action::WouldBlock => return,
            Action::Close => {
                close_slot(poller, conns, slot);
                return;
            }
            Action::CloseAfterFlush => {
                if let Some(conn) = conns.get_mut(slot) {
                    conn.close_after_flush = true;
                }
                flush_slot(shared, poller, conns, slot);
                return;
            }
        }
    }
}

/// Writes as much buffered output as the socket accepts, then updates
/// write-interest / closes / evicts accordingly. Never blocks.
fn flush_slot(shared: &Arc<Shared>, poller: &Poller, conns: &mut Slab, slot: usize) {
    enum Flush {
        Evicted,
        Error,
        Pending,
        Clean,
    }
    let (outcome, close_after) = {
        let Some(conn) = conns.get_mut(slot) else {
            return;
        };
        let ConnWriter::Queued(sink) = &*conn.writer else {
            return;
        };
        let mut out = sink.out.lock().unwrap();
        if out.evicted {
            (Flush::Evicted, conn.close_after_flush)
        } else {
            let mut outcome = Flush::Clean;
            while out.written < out.buf.len() {
                match (&conn.stream).write(&out.buf[out.written..]) {
                    Ok(0) => {
                        outcome = Flush::Error;
                        break;
                    }
                    Ok(n) => out.written += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        outcome = Flush::Pending;
                        break;
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        outcome = Flush::Error;
                        break;
                    }
                }
            }
            if matches!(outcome, Flush::Clean) {
                out.buf.clear();
                out.written = 0;
            }
            (outcome, conn.close_after_flush)
        }
    };
    match outcome {
        Flush::Evicted => {
            shared
                .net
                .slow_readers_evicted
                .fetch_add(1, Ordering::Relaxed);
            close_slot(poller, conns, slot);
        }
        Flush::Error => close_slot(poller, conns, slot),
        Flush::Clean if close_after => close_slot(poller, conns, slot),
        Flush::Clean => set_write_interest(poller, conns, slot, false),
        Flush::Pending => set_write_interest(poller, conns, slot, true),
    }
}

fn set_write_interest(poller: &Poller, conns: &mut Slab, slot: usize, want: bool) {
    let Some(conn) = conns.get_mut(slot) else {
        return;
    };
    if conn.want_write == want {
        return;
    }
    let interest = Interest {
        readable: true,
        writable: want,
    };
    if poller
        .modify(
            conn.stream.as_raw_fd(),
            CONN_TOKEN_BASE + slot as u64,
            interest,
        )
        .is_ok()
    {
        conn.want_write = want;
    }
}

fn close_slot(poller: &Poller, conns: &mut Slab, slot: usize) {
    let Some(conn) = conns.remove(slot) else {
        return;
    };
    let _ = poller.deregister(conn.stream.as_raw_fd());
    if let ConnWriter::Queued(sink) = &*conn.writer {
        sink.mark_closed();
    }
    // Dropping `conn.stream` closes the fd (after deregistration, so the
    // slot can be reused without a stale kernel registration).
}

/// The terminal phase: batchers are joined, every reply is queued — push
/// the remaining bytes onto the wire (bounded by [`FLUSH_DEADLINE`]),
/// then close everything and exit the loop thread.
fn flush_phase(shared: &Arc<Shared>, poller: &mut Poller, conns: &mut Slab, ls: &Arc<LoopShared>) {
    let deadline = Instant::now() + FLUSH_DEADLINE;
    let mut events: Vec<Event> = Vec::new();
    loop {
        ls.waker.drain();
        ls.dirty.lock().unwrap().clear();
        for slot in conns.occupied() {
            flush_slot(shared, poller, conns, slot);
        }
        if !conns.any_pending() || Instant::now() >= deadline {
            break;
        }
        let _ = poller.wait(&mut events, Some(FLUSH_POLL));
    }
    for slot in conns.occupied() {
        close_slot(poller, conns, slot);
    }
}
