//! The admission/dispatch plane between the socket layer and the
//! batcher pool: either the legacy single global queue (the correctness
//! oracle, `queue_shards <= 1`) or the venue-affine sharded batching
//! plane (`queue_shards > 1`).
//!
//! **Single queue** (legacy layout, retained behind the flag): one
//! `Mutex<VecDeque>` + `Condvar`. Every enqueue and every batch pop
//! contends on the same lock, batch formation scans the whole queue for
//! same-venue requests, and wakeups are condvar broadcasts.
//!
//! **Sharded plane**: `queue_shards` bounded shard queues, venue→shard
//! by fibonacci hash, so a socket thread enqueues with exactly one
//! shard-local lock (contention is counted, never spun on) and batchers
//! pop *already venue-homogeneous* batches with no scan at all — each
//! shard keeps per-venue FIFOs threaded on a round-robin venue order,
//! so batch formation is pop-front. Shard `s` is *owned* by batcher
//! `s mod B`: each batcher round-robins its disjoint owned set (so
//! every shard has a bounded service interval even with `B < N`), and
//! only when the whole set is dry does it steal from the others, in
//! deterministic order from a per-batcher rotating cursor — a hot venue
//! can neither strand cold batchers nor starve a cold shard. Wakeups
//! are targeted park/unpark: an enqueue unparks the shard's owner
//! (falling back to any parked batcher, which will steal), bounded by
//! the same [`POLL_INTERVAL`] backstop every blocking wait in the
//! daemon uses.
//!
//! **Shared contract, both layouts**: admission control is a *global*
//! capacity (an atomic depth gauge on the sharded plane), so
//! `queue_depth_peak <= queue_capacity` and `Overloaded` accounting are
//! layout-invariant; queued-deadline expiry stays per-request at solve
//! time; a dying batcher requeues its (venue-homogeneous) batch at the
//! front of that venue's FIFO in its own shard; and drain-on-shutdown
//! empties every shard before `next_batch` reports dry — every admitted
//! request is answered.

use super::{Pending, POLL_INTERVAL};
use nomloc_core::stats::PipelineStats;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::Thread;
use std::time::{Duration, Instant};

/// Venue→shard by fibonacci hashing — the same multiplicative mix the
/// session table uses, so consecutive venue ids spread evenly.
fn shard_of(venue: u64, shards: usize) -> usize {
    (venue.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % shards
}

/// Parameters `next_batch` needs from the daemon config, copied once at
/// construction so the plane is self-contained.
#[derive(Clone, Copy)]
pub(super) struct DispatchConfig {
    pub max_batch: usize,
    pub max_wait: Duration,
    pub queue_capacity: usize,
}

/// One venue's FIFO within a shard, plus whether the venue currently
/// occupies a slot in the shard's round-robin order.
#[derive(Default)]
struct VenueQueue {
    q: VecDeque<Pending>,
    /// The venue id is present in `ShardState::order`. Kept in lockstep
    /// so a venue is never listed twice (which would double-serve it) or
    /// dropped while it still holds requests (which would strand them).
    listed: bool,
}

#[derive(Default)]
struct ShardState {
    /// Round-robin service order over venues with queued requests. A
    /// venue goes to the *back* after each batch, so a cold venue in the
    /// same shard is reached within one pass of the listed venues —
    /// bounded batches, no starvation.
    order: VecDeque<u64>,
    venues: HashMap<u64, VenueQueue>,
    /// Requests queued in this shard (the global gauge lives in
    /// [`Sharded::depth`]).
    len: usize,
}

/// One batcher's parking slot: the targeted-wakeup half of the plane.
struct BatcherSlot {
    /// The batcher is parked (or about to park) and wants an unpark.
    /// `swap(false)` on the waker side makes each token single-use.
    parked: AtomicBool,
    /// The thread to unpark, registered by the batcher itself on entry
    /// (and re-registered by a watchdog respawn taking over the slot).
    thread: Mutex<Option<Thread>>,
    /// Round-robin cursor over the batcher's *owned* shards (shard `s`
    /// is owned by batcher `s % B`). Advanced past each batch, so a
    /// persistently hot owned shard cannot shadow a cold sibling in the
    /// same set — the cross-shard half of the no-starvation guarantee
    /// (the per-venue round-robin in [`ShardState::order`] is the
    /// within-shard half).
    own_cursor: AtomicUsize,
    /// Rotating start of the steal scan over *non-owned* shards, used
    /// only when every owned shard is dry. Advanced past each
    /// successful steal for the same fairness reason.
    steal_cursor: AtomicUsize,
}

/// The sharded half of the plane (fields private to this module; the
/// daemon drives it through [`Dispatch`]'s methods).
pub(super) struct Sharded {
    shards: Vec<Mutex<ShardState>>,
    /// Global queued-request gauge: admission CAS-reserves a slot here
    /// *before* touching any shard, so the `queue_capacity` bound and
    /// `queue_depth_peak` keep the exact single-queue semantics.
    depth: AtomicUsize,
    batchers: Vec<BatcherSlot>,
}

impl Sharded {
    fn try_unpark(&self, idx: usize) -> bool {
        if self.batchers[idx].parked.swap(false, Ordering::AcqRel) {
            if let Some(t) = &*self.batchers[idx].thread.lock().unwrap() {
                t.unpark();
            }
            true
        } else {
            false
        }
    }

    /// Targeted wakeup for an enqueue into `shard`: first the shard's
    /// owner (`shard % B`), then any parked batcher (which will steal
    /// its way to the work). At most one thread is woken per enqueue.
    fn wake_for_shard(&self, shard: usize) {
        if self.try_unpark(shard % self.batchers.len()) {
            return;
        }
        for b in 0..self.batchers.len() {
            if self.try_unpark(b) {
                return;
            }
        }
    }

    /// Pops one venue-homogeneous batch (≤ `max_batch`) off `shard`'s
    /// round-robin order. No scan: the per-venue FIFO is drained from
    /// the front. Returns the batch's venue, or `None` if the shard has
    /// no queued requests.
    fn pop_batch_from(
        &self,
        shard: usize,
        batch: &mut Vec<Pending>,
        max_batch: usize,
    ) -> Option<u64> {
        let mut state = self.shards[shard].lock().unwrap();
        loop {
            let venue = *state.order.front()?;
            state.order.pop_front();
            let vq = state
                .venues
                .get_mut(&venue)
                .expect("listed venues have a queue");
            if vq.q.is_empty() {
                // Stale listing (a fill-wait or steal emptied it after it
                // was re-listed): unlist and keep looking.
                vq.listed = false;
                state.venues.remove(&venue);
                continue;
            }
            let take = vq.q.len().min(max_batch.saturating_sub(batch.len()).max(1));
            batch.extend(vq.q.drain(..take));
            if vq.q.is_empty() {
                vq.listed = false;
                state.venues.remove(&venue);
            } else {
                // Round-robin: the venue's remainder goes to the back, so
                // shard-mates get served before its next batch.
                state.order.push_back(venue);
            }
            state.len -= take;
            self.depth.fetch_sub(take, Ordering::AcqRel);
            return Some(venue);
        }
    }

    /// Pops any queued requests for `venue` from `shard` (front of its
    /// FIFO, up to the batch's remaining headroom) during the max_wait
    /// fill window. Returns how many were taken.
    fn pop_same_venue(
        &self,
        shard: usize,
        venue: u64,
        batch: &mut Vec<Pending>,
        max_batch: usize,
    ) -> usize {
        let mut state = self.shards[shard].lock().unwrap();
        let Some(vq) = state.venues.get_mut(&venue) else {
            return 0;
        };
        let take = vq.q.len().min(max_batch.saturating_sub(batch.len()));
        if take == 0 {
            return 0;
        }
        batch.extend(vq.q.drain(..take));
        if vq.q.is_empty() && !vq.listed {
            state.venues.remove(&venue);
        }
        state.len -= take;
        self.depth.fetch_sub(take, Ordering::AcqRel);
        take
    }
}

/// The dispatch plane, selected by `DaemonConfig::queue_shards`.
pub(super) enum Dispatch {
    /// The legacy single global queue — the A/B correctness oracle.
    Single {
        queue: Mutex<VecDeque<Pending>>,
        cv: Condvar,
    },
    /// The venue-affine sharded batching plane.
    Sharded(Sharded),
}

impl Dispatch {
    pub(super) fn new(queue_shards: usize, batchers: usize) -> Self {
        if queue_shards <= 1 {
            Dispatch::Single {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
            }
        } else {
            Dispatch::Sharded(Sharded {
                shards: (0..queue_shards).map(|_| Mutex::default()).collect(),
                depth: AtomicUsize::new(0),
                batchers: (0..batchers.max(1))
                    .map(|_| BatcherSlot {
                        parked: AtomicBool::new(false),
                        thread: Mutex::new(None),
                        own_cursor: AtomicUsize::new(0),
                        steal_cursor: AtomicUsize::new(0),
                    })
                    .collect(),
            })
        }
    }

    /// Registers the calling thread as batcher `idx` for targeted
    /// unparks. Called on batcher entry; a watchdog respawn re-registers
    /// the slot with the replacement thread.
    pub(super) fn register_batcher(&self, idx: usize) {
        if let Dispatch::Sharded(s) = self {
            if let Some(slot) = s.batchers.get(idx) {
                *slot.thread.lock().unwrap() = Some(std::thread::current());
            }
        }
    }

    /// Admits `p` under the global capacity bound, or hands it back (the
    /// `Err`) for an `Overloaded` reply. `shutting_down` closes admission
    /// entirely. Updates the depth high-water mark (and the per-shard one
    /// on the sharded plane), then wakes exactly one batcher.
    pub(super) fn admit(
        &self,
        p: Pending,
        shutting_down: bool,
        config: &DispatchConfig,
        stats: &PipelineStats,
    ) -> Result<(), Pending> {
        match self {
            Dispatch::Single { queue, cv } => {
                let mut q = queue.lock().unwrap();
                if shutting_down || q.len() >= config.queue_capacity {
                    return Err(p);
                }
                q.push_back(p);
                stats.note_queue_depth(q.len() as u64);
                drop(q);
                cv.notify_one();
                Ok(())
            }
            Dispatch::Sharded(s) => {
                if shutting_down {
                    return Err(p);
                }
                // Reserve a global slot first (CAS, so two shards can
                // never jointly overshoot the capacity), then take the
                // one shard-local lock.
                let mut depth = s.depth.load(Ordering::Acquire);
                loop {
                    if depth >= config.queue_capacity {
                        return Err(p);
                    }
                    match s.depth.compare_exchange_weak(
                        depth,
                        depth + 1,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => break,
                        Err(now) => depth = now,
                    }
                }
                stats.note_queue_depth(depth as u64 + 1);
                let shard = shard_of(p.venue, s.shards.len());
                let venue = p.venue;
                let mut state = match s.shards[shard].try_lock() {
                    Ok(g) => g,
                    Err(std::sync::TryLockError::WouldBlock) => {
                        stats.record_enqueue_contention();
                        s.shards[shard].lock().unwrap()
                    }
                    Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
                };
                let vq = state.venues.entry(venue).or_default();
                vq.q.push_back(p);
                if !vq.listed {
                    vq.listed = true;
                    state.order.push_back(venue);
                }
                state.len += 1;
                stats.note_shard_depth(state.len as u64);
                drop(state);
                s.wake_for_shard(shard);
                Ok(())
            }
        }
    }

    /// Requeues a dying batcher's batch at the *front* of its queue (its
    /// own shard's venue FIFO on the sharded plane), preserving request
    /// order, then wakes everyone so a sibling picks it up. The batch is
    /// venue-homogeneous by construction, so the whole thing goes back
    /// to one venue FIFO.
    pub(super) fn requeue_front(&self, batch: &mut Vec<Pending>) {
        match self {
            Dispatch::Single { queue, cv } => {
                let mut q = queue.lock().unwrap();
                for p in batch.drain(..).rev() {
                    q.push_front(p);
                }
                drop(q);
                cv.notify_all();
            }
            Dispatch::Sharded(s) => {
                if batch.is_empty() {
                    return;
                }
                let venue = batch[0].venue;
                let shard = shard_of(venue, s.shards.len());
                let n = batch.len();
                // Re-reserve the depth *before* pushing content, keeping
                // the invariant depth >= queued content (so depth == 0
                // still implies an empty plane for drain checks).
                s.depth.fetch_add(n, Ordering::AcqRel);
                let mut state = s.shards[shard].lock().unwrap();
                let vq = state.venues.entry(venue).or_default();
                for p in batch.drain(..).rev() {
                    vq.q.push_front(p);
                }
                if !vq.listed {
                    vq.listed = true;
                }
                // The venue goes to the order *front*: the requeued batch
                // is the oldest admitted work in this shard.
                if let Some(pos) = state.order.iter().position(|&v| v == venue) {
                    state.order.remove(pos);
                }
                state.order.push_front(venue);
                state.len += n;
                drop(state);
                self.wake_all();
            }
        }
    }

    /// Wakes every waiter (shutdown, or a requeue that any batcher may
    /// claim).
    pub(super) fn wake_all(&self) {
        match self {
            Dispatch::Single { cv, .. } => cv.notify_all(),
            Dispatch::Sharded(s) => {
                for i in 0..s.batchers.len() {
                    s.try_unpark(i);
                }
            }
        }
    }

    /// Blocks for the next venue-homogeneous micro-batch into `batch`
    /// (cleared first; capacity reused). `batcher` is the caller's slot
    /// index — it selects the affined shard and the parking slot on the
    /// sharded plane (the watchdog's final drain passes 0; it never
    /// parks because a drained plane returns `false` immediately).
    /// Returns `false` once the plane is empty *and* shutting down.
    pub(super) fn next_batch(
        &self,
        batcher: usize,
        batch: &mut Vec<Pending>,
        config: &DispatchConfig,
        shutting_down: impl Fn() -> bool,
        stats: &PipelineStats,
    ) -> bool {
        batch.clear();
        match self {
            Dispatch::Single { queue, cv } => {
                let mut q = queue.lock().unwrap();
                let venue;
                loop {
                    if let Some(p) = q.pop_front() {
                        venue = p.venue;
                        batch.push(p);
                        break;
                    }
                    if shutting_down() {
                        return false;
                    }
                    let (guard, _) = cv.wait_timeout(q, POLL_INTERVAL).unwrap();
                    q = guard;
                }
                // Pulls the first queued request for the head's venue, if
                // any. Other venues' requests stay queued in arrival order
                // for the next batcher.
                let pop_same_venue = |q: &mut VecDeque<Pending>| {
                    let pos = q.iter().position(|p| p.venue == venue)?;
                    q.remove(pos)
                };
                let flush_by = Instant::now() + config.max_wait;
                while batch.len() < config.max_batch {
                    if let Some(p) = pop_same_venue(&mut q) {
                        batch.push(p);
                        continue;
                    }
                    if shutting_down() {
                        break; // drain mode: flush immediately
                    }
                    let now = Instant::now();
                    if now >= flush_by {
                        break;
                    }
                    let (guard, timeout) = cv.wait_timeout(q, flush_by - now).unwrap();
                    q = guard;
                    if timeout.timed_out() {
                        // Re-check the queue once more, then flush.
                        if let Some(p) = pop_same_venue(&mut q) {
                            batch.push(p);
                        }
                        break;
                    }
                }
                true
            }
            Dispatch::Sharded(s) => {
                let nshards = s.shards.len();
                let nb = s.batchers.len();
                let b = batcher % nb;
                // This batcher owns shards `b, b+B, b+2B, …` — every
                // shard has exactly one owner (for B <= N), so an active
                // owner round-robinning its set bounds every shard's
                // service interval even if no steal ever fires.
                let owned = if b < nshards {
                    (nshards - b).div_ceil(nb)
                } else {
                    0
                };
                let slot = s.batchers.get(batcher);
                let venue = loop {
                    // Owned shards first, entered at the rotating cursor
                    // so a hot owned shard cannot shadow a cold one.
                    let mut got = None;
                    let oc = slot
                        .map(|sl| sl.own_cursor.load(Ordering::Relaxed))
                        .unwrap_or(0);
                    for k in 0..owned {
                        let idx = (oc + k) % owned;
                        let shard = b + idx * nb;
                        if let Some(v) = s.pop_batch_from(shard, batch, config.max_batch) {
                            if let Some(sl) = slot {
                                sl.own_cursor.store((idx + 1) % owned, Ordering::Relaxed);
                            }
                            got = Some(v);
                            break;
                        }
                    }
                    // Every owned shard is dry: steal from the rest,
                    // again from a rotating start, so dry batchers fan
                    // out over hot shards without re-draining the first
                    // one they find.
                    if got.is_none() {
                        let sc = slot
                            .map(|sl| sl.steal_cursor.load(Ordering::Relaxed))
                            .unwrap_or(0);
                        for k in 0..nshards {
                            let shard = (sc + k) % nshards;
                            if shard % nb == b {
                                continue; // owned; just scanned above
                            }
                            if let Some(v) = s.pop_batch_from(shard, batch, config.max_batch) {
                                stats.record_queue_steal();
                                if let Some(sl) = slot {
                                    sl.steal_cursor
                                        .store((shard + 1) % nshards, Ordering::Relaxed);
                                }
                                got = Some(v);
                                break;
                            }
                        }
                    }
                    if let Some(v) = got {
                        break v;
                    }
                    if shutting_down() && s.depth.load(Ordering::Acquire) == 0 {
                        return false;
                    }
                    // Park until an enqueue targets us (or the poll
                    // backstop fires — same bound as every blocking wait
                    // here). The parked flag is published before the
                    // re-check, so an enqueue between our scan and the
                    // park is guaranteed to either land in the re-check
                    // or leave us an unpark token.
                    if let Some(slot) = s.batchers.get(batcher) {
                        slot.parked.store(true, Ordering::Release);
                        if s.depth.load(Ordering::Acquire) > 0 || shutting_down() {
                            slot.parked.store(false, Ordering::Release);
                            continue;
                        }
                        std::thread::park_timeout(POLL_INTERVAL);
                        slot.parked.store(false, Ordering::Release);
                    } else {
                        // Unregistered caller (the watchdog drain): the
                        // plane still has depth, so spin-wait briefly for
                        // the in-flight enqueue to land.
                        std::thread::sleep(Duration::from_micros(50));
                    }
                };
                // Fill window: wait out max_wait for more same-venue
                // arrivals, exactly like the single-queue layout — but
                // the re-check is a front-pop on one venue FIFO, not a
                // scan. The batch's venue lives in *its* shard even if
                // this batcher stole it.
                let home = shard_of(venue, nshards);
                let flush_by = Instant::now() + config.max_wait;
                while batch.len() < config.max_batch && !shutting_down() {
                    let now = Instant::now();
                    if now >= flush_by {
                        break;
                    }
                    if s.pop_same_venue(home, venue, batch, config.max_batch) > 0 {
                        continue;
                    }
                    if let Some(slot) = s.batchers.get(batcher) {
                        slot.parked.store(true, Ordering::Release);
                        if s.pop_same_venue(home, venue, batch, config.max_batch) == 0 {
                            std::thread::park_timeout((flush_by - now).min(POLL_INTERVAL));
                        }
                        slot.parked.store(false, Ordering::Release);
                    } else {
                        std::thread::sleep((flush_by - now).min(Duration::from_micros(50)));
                    }
                }
                // One last sweep so a just-arrived straggler ships now
                // instead of paying a whole extra batch.
                if batch.len() < config.max_batch {
                    s.pop_same_venue(home, venue, batch, config.max_batch);
                }
                true
            }
        }
    }
}
