//! A small `Vec<u8>` buffer pool for the frame encode path.
//!
//! The daemon's reply path used to allocate a fresh `Vec` per frame
//! (`frame_to_vec`). With request rates in the tens of thousands per second
//! that is pure allocator churn: reply frames are all within a few dozen
//! bytes of each other, so the backing stores are perfectly reusable. The
//! [`BufferPool`] keeps returned buffers on a bounded stack; checkouts pop a
//! cleared buffer (capacity intact) and report whether they reused one, so
//! the serving stats can surface allocator pressure
//! (`reply bytes encoded … pool hit-rate`).
//!
//! Poisoning safety: [`BufferPool::get`] always returns a **cleared** buffer
//! and encoding only ever appends, so stale bytes from a previous request
//! can never leak into a later reply. The chaos suite pins this with a
//! bit-identity test over varied-size requests.

use std::sync::Mutex;

/// A bounded stack of reusable `Vec<u8>` backing stores.
///
/// Shared across the daemon's connection and batcher threads; the lock is
/// held only for a push/pop.
#[derive(Debug)]
pub struct BufferPool {
    stack: Mutex<Vec<Vec<u8>>>,
    max_buffers: usize,
}

impl BufferPool {
    /// Creates a pool retaining at most `max_buffers` idle buffers.
    pub fn new(max_buffers: usize) -> Self {
        BufferPool {
            stack: Mutex::new(Vec::new()),
            max_buffers,
        }
    }

    /// Checks out a cleared buffer. The second element is `true` when an
    /// existing backing store was reused, `false` when the pool was empty
    /// and a fresh `Vec` was created.
    pub fn get(&self) -> (Vec<u8>, bool) {
        let popped = self.stack.lock().unwrap_or_else(|e| e.into_inner()).pop();
        match popped {
            Some(mut buf) => {
                buf.clear();
                (buf, true)
            }
            None => (Vec::new(), false),
        }
    }

    /// Returns a buffer to the pool. Dropped instead when the pool is at
    /// capacity, so a burst can't pin memory forever.
    pub fn put(&self, buf: Vec<u8>) {
        let mut stack = self.stack.lock().unwrap_or_else(|e| e.into_inner());
        if stack.len() < self.max_buffers {
            stack.push(buf);
        }
    }

    /// Number of idle buffers currently held.
    pub fn idle(&self) -> usize {
        self.stack.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_checkout_misses_then_hits() {
        let pool = BufferPool::new(4);
        let (buf, reused) = pool.get();
        assert!(!reused);
        pool.put(buf);
        assert_eq!(pool.idle(), 1);
        let (_, reused) = pool.get();
        assert!(reused);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn checkout_is_cleared_but_keeps_capacity() {
        let pool = BufferPool::new(4);
        let (mut buf, _) = pool.get();
        buf.extend_from_slice(b"stale reply bytes");
        let cap = buf.capacity();
        pool.put(buf);
        let (buf, reused) = pool.get();
        assert!(reused);
        assert!(buf.is_empty(), "pooled buffer must come back cleared");
        assert_eq!(buf.capacity(), cap, "backing store must be reused");
    }

    #[test]
    fn capacity_bound_drops_excess() {
        let pool = BufferPool::new(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(64));
        }
        assert_eq!(pool.idle(), 2);
    }
}
