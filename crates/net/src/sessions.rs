//! The crash-safe session plane: per-(venue, session) trackers that turn
//! a stream of independent locate answers into a smoothed trajectory.
//!
//! A v4 [`crate::wire::LocateRequest`] may carry a nonzero `session_id`.
//! Consecutive estimates for the same (venue, session) pair flow through
//! one [`Tracker`], and replies grow a [`WireSession`](crate::wire::
//! WireSession) block: smoothed position, velocity, and a localizability-
//! derived error bound. Sessions also power the `Predicted` degradation
//! tier — a request whose readings fail validation can be answered from
//! the session's motion model instead of falling all the way to the
//! venue centroid.
//!
//! # Crash safety
//!
//! The table is owned by the daemon's `Shared` state, **outside** the
//! batcher threads: a per-batch panic (absorbed by `catch_unwind`) or a
//! watchdog batcher respawn never touches it, so every session resumes
//! bit-identically afterwards. Two deliberate choices back this up:
//!
//! * **Logical time.** Smoothing advances one fixed tick per accepted
//!   estimate ([`SESSION_TICK_SECONDS`]) instead of wall-clock deltas, so
//!   a session's smoothed track is a pure function of its raw-estimate
//!   sequence — reproducible by the chaos verifier and unchanged by
//!   scheduling jitter, batch boundaries, or respawn pauses. Wall-clock
//!   time drives only TTL eviction.
//! * **Poison tolerance.** Shard locks are acquired with
//!   [`Mutex::lock`]'s poison recovered (`into_inner`): even if a thread
//!   died while holding a shard, the sessions in it stay servable — a
//!   tracker is always in a consistent state between `push` calls.
//!
//! # Eviction
//!
//! Idle sessions expire after a TTL, checked lazily on access and
//! eagerly by the watchdog's periodic [`SessionTable::sweep`]. An
//! in-flight request racing its own eviction simply recreates the
//! session fresh — never observes a dangling or cross-wired tracker.

use nomloc_core::tracking::{Smoothing, Tracker};
use nomloc_geometry::{Point, Vec2};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Logical seconds between consecutive accepted estimates of a session.
/// Fixed (rather than wall-clock) so smoothing is deterministic; see the
/// module docs.
pub const SESSION_TICK_SECONDS: f64 = 1.0;

/// The smoothing filter every session runs: an alpha-beta tracker, so
/// replies carry a velocity estimate and `Predicted` answers extrapolate
/// real motion.
pub const SESSION_SMOOTHING: Smoothing = Smoothing::AlphaBeta {
    alpha: 0.85,
    beta: 0.5,
};

/// Speed gate applied to session tracks, metres per logical tick. Brisk
/// indoor motion; a corrupt estimate cannot teleport a session.
pub const SESSION_MAX_SPEED: f64 = 5.0;

/// How much a `Predicted`-tier reply widens the localizability-derived
/// error bound: the answer is an extrapolation, not a measurement, so
/// the bound must say so. Public so the chaos verifier can mirror it.
pub const PREDICTED_ERROR_WIDENING: f64 = 2.0;

/// Newest history entries retained per session tracker; older entries
/// are dropped (the filter state is unaffected) to bound memory.
const HISTORY_KEEP: usize = 32;

/// Builds the tracker every session starts from. Public so the chaos
/// verifier can replay a session's expected track bit-identically.
pub fn session_tracker() -> Tracker {
    Tracker::new(SESSION_SMOOTHING).with_max_speed(SESSION_MAX_SPEED)
}

/// Session-plane tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Idle time after which a session is evicted.
    pub ttl: Duration,
    /// Lock shards (rounded up to at least 1). More shards, less
    /// contention between batchers serving unrelated sessions.
    pub shards: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            ttl: Duration::from_secs(60),
            shards: 16,
        }
    }
}

/// What [`SessionTable::observe`] / [`SessionTable::predict`] hand back
/// for the reply's session block (error bound filled in by the caller,
/// which owns the venue's localizability map).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionView {
    /// Latest smoothed position.
    pub smoothed: Point,
    /// Velocity estimate, metres per logical tick.
    pub velocity: Vec2,
}

struct SessionState {
    tracker: Tracker,
    last_seen: Instant,
}

type Shard = Mutex<HashMap<(u64, u64), SessionState>>;

/// The sharded, TTL-evicted session table. See the module docs.
pub struct SessionTable {
    shards: Vec<Shard>,
    ttl: Duration,
    created: AtomicU64,
    evicted: AtomicU64,
    rejections: AtomicU64,
}

impl SessionTable {
    /// An empty table.
    pub fn new(config: SessionConfig) -> Self {
        let n = config.shards.max(1);
        SessionTable {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            ttl: config.ttl,
            created: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        }
    }

    /// Locks the shard owning `(venue_id, session_id)`, recovering from
    /// poison: a batcher that died mid-push leaves the tracker consistent
    /// (it is only ever mutated through `&mut` methods that uphold their
    /// own invariants), so the sessions remain servable.
    fn shard(
        &self,
        venue_id: u64,
        session_id: u64,
    ) -> MutexGuard<'_, HashMap<(u64, u64), SessionState>> {
        // Fibonacci hash over both ids; venue and session each perturb
        // the shard choice so a venue's sessions spread across shards.
        let mixed = (venue_id ^ session_id.rotate_left(32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let idx = (mixed >> 48) as usize % self.shards.len();
        match self.shards[idx].lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Feeds one raw estimate into the session's tracker (creating or
    /// reviving the session as needed) and returns the smoothed view.
    ///
    /// A non-finite `raw` is rejected by the tracker's input guard — the
    /// prior smoothed position is returned unchanged and the rejection
    /// counted — so corrupt estimates never poison a session.
    pub fn observe(&self, venue_id: u64, session_id: u64, raw: Point, now: Instant) -> SessionView {
        let mut shard = self.shard(venue_id, session_id);
        let state = self.fresh_entry(&mut shard, venue_id, session_id, now);
        let before = state.tracker.rejected();
        let smoothed = state.tracker.push(raw, SESSION_TICK_SECONDS);
        state.tracker.shrink_history(HISTORY_KEEP);
        let delta = state.tracker.rejected() - before;
        if delta > 0 {
            self.rejections.fetch_add(delta, Ordering::Relaxed);
        }
        SessionView {
            smoothed,
            velocity: state.tracker.velocity(),
        }
    }

    /// The session's motion-model extrapolation one tick ahead, if the
    /// session is warm (exists, unexpired, and has accepted at least one
    /// estimate). Powers the `Predicted` degradation tier; touches the
    /// TTL so an actively-predicted session stays alive.
    pub fn predict(&self, venue_id: u64, session_id: u64, now: Instant) -> Option<SessionView> {
        let mut shard = self.shard(venue_id, session_id);
        let state = shard.get_mut(&(venue_id, session_id))?;
        if self.expired(state, now) {
            shard.remove(&(venue_id, session_id));
            self.evicted.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let predicted = state.tracker.predict(SESSION_TICK_SECONDS)?;
        state.last_seen = now;
        Some(SessionView {
            smoothed: predicted,
            velocity: state.tracker.velocity(),
        })
    }

    /// Looks up (reviving TTL) or creates the session's entry.
    fn fresh_entry<'a>(
        &self,
        shard: &'a mut HashMap<(u64, u64), SessionState>,
        venue_id: u64,
        session_id: u64,
        now: Instant,
    ) -> &'a mut SessionState {
        let key = (venue_id, session_id);
        // An expired entry is evicted (counted) and replaced fresh: a
        // request racing its own TTL eviction sees a clean restart, never
        // stale state.
        if shard.get(&key).is_some_and(|s| self.expired(s, now)) {
            shard.remove(&key);
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        let state = shard.entry(key).or_insert_with(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            SessionState {
                tracker: session_tracker(),
                last_seen: now,
            }
        });
        state.last_seen = now;
        state
    }

    fn expired(&self, state: &SessionState, now: Instant) -> bool {
        now.duration_since(state.last_seen) > self.ttl
    }

    /// Evicts every expired session; returns how many went. The watchdog
    /// calls this periodically so idle sessions don't linger until their
    /// next (never-coming) request.
    pub fn sweep(&self, now: Instant) -> u64 {
        let mut gone = 0;
        for shard in &self.shards {
            let mut shard = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let before = shard.len();
            shard.retain(|_, s| !self.expired(s, now));
            gone += (before - shard.len()) as u64;
        }
        if gone > 0 {
            self.evicted.fetch_add(gone, Ordering::Relaxed);
        }
        gone
    }

    /// Force-evicts **all** sessions, as if every TTL fired at once. The
    /// chaos harness uses this to race eviction against in-flight
    /// traffic; retiring the whole table is also the right response to a
    /// venue-fleet reset.
    pub fn expire_all(&self) -> u64 {
        let mut gone = 0;
        for shard in &self.shards {
            let mut shard = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            gone += shard.len() as u64;
            shard.clear();
        }
        if gone > 0 {
            self.evicted.fetch_add(gone, Ordering::Relaxed);
        }
        gone
    }

    /// Drops every session of one venue (venue retirement).
    pub fn retire_venue(&self, venue_id: u64) -> u64 {
        let mut gone = 0;
        for shard in &self.shards {
            let mut shard = match shard.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let before = shard.len();
            shard.retain(|&(v, _), _| v != venue_id);
            gone += (before - shard.len()) as u64;
        }
        if gone > 0 {
            self.evicted.fetch_add(gone, Ordering::Relaxed);
        }
        gone
    }

    /// Live session count across all shards.
    pub fn active(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match s.lock() {
                Ok(g) => g.len() as u64,
                Err(poisoned) => poisoned.into_inner().len() as u64,
            })
            .sum()
    }

    /// Sessions ever created (including TTL-evicted revivals).
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Sessions evicted (TTL sweeps, lazy expiry, and force-expiry).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Raw estimates rejected at the tracker input guard.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for SessionTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionTable")
            .field("shards", &self.shards.len())
            .field("ttl", &self.ttl)
            .field("active", &self.active())
            .field("created", &self.created())
            .field("evicted", &self.evicted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(ttl_secs: u64) -> SessionTable {
        SessionTable::new(SessionConfig {
            ttl: Duration::from_secs(ttl_secs),
            shards: 4,
        })
    }

    #[test]
    fn observe_matches_a_replayed_reference_tracker() {
        // The table's smoothing is a pure function of the raw sequence —
        // the exact property the chaos verifier relies on.
        let t = table(60);
        let now = Instant::now();
        let mut reference = session_tracker();
        for i in 0..20 {
            let raw = Point::new(i as f64 * 0.8, (i % 4) as f64 * 0.3);
            let got = t.observe(7, 1, raw, now);
            let want = reference.push(raw, SESSION_TICK_SECONDS);
            assert_eq!(got.smoothed, want, "sample {i}");
            assert_eq!(got.velocity, reference.velocity(), "sample {i}");
        }
        assert_eq!(t.created(), 1);
        assert_eq!(t.active(), 1);
    }

    #[test]
    fn sessions_are_isolated_per_venue_and_id() {
        let t = table(60);
        let now = Instant::now();
        // Same session id in two venues, two ids in one venue: four
        // independent trackers.
        for (venue, session, x) in [
            (1, 9, 0.0),
            (2, 9, 100.0),
            (1, 8, 200.0),
            (1u64, 7u64, 300.0),
        ] {
            t.observe(venue, session, Point::new(x, 0.0), now);
        }
        assert_eq!(t.active(), 4);
        assert_eq!(t.created(), 4);
        let v = t.observe(1, 9, Point::new(1.0, 0.0), now);
        // Speed-gated from (0,0), not from any other session's position.
        assert!(v.smoothed.x <= 1.0 + 1e-9);
        assert!(v.smoothed.x > 0.0);
    }

    #[test]
    fn ttl_sweep_and_lazy_expiry_evict_idle_sessions() {
        let t = table(10);
        let start = Instant::now();
        t.observe(1, 1, Point::new(0.0, 0.0), start);
        t.observe(1, 2, Point::new(5.0, 5.0), start);
        let later = start + Duration::from_secs(11);
        // Session 1 expires lazily on access and restarts fresh: the far
        // jump is accepted as-is (no speed gate against dead state).
        let v = t.observe(1, 1, Point::new(50.0, 50.0), later);
        assert_eq!(v.smoothed, Point::new(50.0, 50.0));
        // Session 2 goes in the sweep.
        assert_eq!(t.sweep(later), 1);
        assert_eq!(t.active(), 1);
        assert_eq!(t.evicted(), 2);
        assert_eq!(t.created(), 3, "revival counts as a new session");
    }

    #[test]
    fn predict_requires_a_warm_session() {
        let t = table(10);
        let now = Instant::now();
        assert!(t.predict(1, 1, now).is_none(), "unknown session");
        t.observe(1, 1, Point::new(2.0, 3.0), now);
        let p = t.predict(1, 1, now).expect("warm session predicts");
        // One sample ⇒ zero velocity ⇒ prediction in place.
        assert_eq!(p.smoothed, Point::new(2.0, 3.0));
        // An expired session refuses to predict (and is evicted).
        let later = now + Duration::from_secs(11);
        assert!(t.predict(1, 1, later).is_none());
        assert_eq!(t.evicted(), 1);
        assert_eq!(t.active(), 0);
    }

    #[test]
    fn predict_extrapolates_motion_and_touches_the_ttl() {
        let t = table(10);
        let mut now = Instant::now();
        for i in 0..20 {
            t.observe(3, 3, Point::new(i as f64, 0.0), now);
        }
        let last = t.observe(3, 3, Point::new(20.0, 0.0), now);
        let p = t.predict(3, 3, now).unwrap();
        assert!(
            p.smoothed.x > last.smoothed.x,
            "prediction continues the motion: {} vs {}",
            p.smoothed.x,
            last.smoothed.x
        );
        // Repeated predictions keep the session alive past its original
        // TTL window.
        for _ in 0..5 {
            now += Duration::from_secs(8);
            assert!(t.predict(3, 3, now).is_some(), "touched TTL keeps it warm");
        }
    }

    #[test]
    fn rejections_are_counted_but_never_poison_a_session() {
        let t = table(60);
        let now = Instant::now();
        t.observe(1, 1, Point::new(1.0, 2.0), now);
        let v = t.observe(1, 1, Point::new(f64::NAN, 0.0), now);
        assert_eq!(v.smoothed, Point::new(1.0, 2.0), "prior answer stands");
        assert_eq!(t.rejections(), 1);
        let v = t.observe(1, 1, Point::new(1.5, 2.0), now);
        assert!(v.smoothed.x.is_finite() && v.smoothed.y.is_finite());
    }

    #[test]
    fn expire_all_and_retire_venue_clear_the_right_sessions() {
        let t = table(60);
        let now = Instant::now();
        for s in 0..4 {
            t.observe(1, s, Point::new(0.0, 0.0), now);
            t.observe(2, s, Point::new(0.0, 0.0), now);
        }
        assert_eq!(t.retire_venue(1), 4);
        assert_eq!(t.active(), 4);
        assert_eq!(t.expire_all(), 4);
        assert_eq!(t.active(), 0);
        assert_eq!(t.evicted(), 8);
    }

    #[test]
    fn long_lived_sessions_keep_bounded_history() {
        // 10k observations; the per-session tracker must not accumulate
        // unbounded history (the table shrinks it after every push).
        let t = table(60);
        let now = Instant::now();
        for i in 0..10_000u32 {
            t.observe(1, 1, Point::new((i % 100) as f64 * 0.05, 0.0), now);
        }
        let shard = t.shard(1, 1);
        let state = shard.get(&(1, 1)).unwrap();
        assert!(state.tracker.raw_history().len() <= HISTORY_KEEP);
        assert!(state.tracker.smooth_history().len() <= HISTORY_KEEP);
    }
}
