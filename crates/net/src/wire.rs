//! The NomLoc wire protocol: versioned, length-prefixed, CRC-protected
//! binary frames.
//!
//! Every frame is a fixed 16-byte header followed by a payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "NMLC"
//!      4     1  protocol version (currently 3; v3 added the venue id on
//!                                 requests, the venue admin frames, and
//!                                 per-venue health records — older
//!                                 decoders reject v3 frames cleanly
//!                                 with `BadVersion`)
//!      5     1  frame type (1 = LocateRequest, 2 = LocateResponse,
//!                           3 = StatsRequest,  4 = StatsResponse,
//!                           5 = VenueOnboard,  6 = VenueRetire,
//!                           7 = VenueList,     8 = VenueAdminResponse)
//!      6     2  reserved, must be zero
//!      8     4  payload length, little-endian
//!     12     4  CRC-32 (IEEE) over the payload, little-endian
//!     16     …  payload
//! ```
//!
//! All integers are little-endian; `f64`s travel as their IEEE-754 bit
//! patterns (`to_bits`/`from_bits`), so a round trip is *bit-exact* — the
//! loopback test relies on a decoded [`crate::wire::WireReport`] feeding
//! `LocalizationServer::process_batch` with inputs identical to the
//! in-process path.
//!
//! Decoding is split in two layers:
//!
//! * **structural** ([`decode_frame`]): header validation, CRC check,
//!   field-by-field parsing with allocation guards. Any corruption —
//!   truncated frame, flipped bit, bad version, trailing bytes — yields a
//!   [`WireError`], never a panic and never an absurd allocation;
//! * **semantic** ([`WireReport::to_core`]): values that parsed but cannot
//!   enter the pipeline (non-finite AP position, a subcarrier grid that is
//!   empty or not strictly ascending) are rejected per *request*, so one
//!   malformed report in a batch never poisons its micro-batch.

use crate::crc32::crc32;
use nomloc_core::estimator::{EstimateError, EstimateQuality, FailureCause, LocationEstimate};
use nomloc_core::scenario::Venue;
use nomloc_core::server::CsiReport;
use nomloc_core::ApSite;
use nomloc_dsp::Complex;
use nomloc_geometry::{Point, Polygon};
use nomloc_rfsim::{CsiSnapshot, SubcarrierGrid};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: the first four bytes of every NomLoc frame.
pub const MAGIC: [u8; 4] = *b"NMLC";
/// Current protocol version. v2 extended [`WireEstimate`] with the
/// [`EstimateQuality`] tier and [`ServerHealth`] with fault-tolerance
/// counters. v3 added the venue id to [`LocateRequest`], the venue admin
/// frames (tags 5–8), and per-venue [`VenueHealth`] records on
/// [`ServerHealth`]. v4 adds the session plane: a `session_id` on
/// [`LocateRequest`] (0 = stateless), an optional [`WireSession`] block
/// (smoothed position, velocity, localizability error bound) on
/// [`WireEstimate`], the `Predicted` quality tier (byte 3), and session
/// counters on [`ServerHealth`]/[`VenueHealth`]. Older decoders reject v4
/// frames with [`WireError::BadVersion`], and a v4 daemon answers a
/// down-version request with a [`ErrorCode::UnsupportedVersion`] reply
/// encoded at the *client's* version (see [`unsupported_version_reply`])
/// so old structural decoders never see a CRC or framing failure.
pub const VERSION: u8 = 4;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Maximum accepted payload length (guards allocation on hostile input).
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Frame type tags (byte 5 of the header).
mod tag {
    pub const LOCATE_REQUEST: u8 = 1;
    pub const LOCATE_RESPONSE: u8 = 2;
    pub const STATS_REQUEST: u8 = 3;
    pub const STATS_RESPONSE: u8 = 4;
    pub const VENUE_ONBOARD: u8 = 5;
    pub const VENUE_RETIRE: u8 = 6;
    pub const VENUE_LIST: u8 = 7;
    pub const VENUE_ADMIN_RESPONSE: u8 = 8;
}

/// A structural decoding failure. Every variant is a clean error — the
/// decoder never panics on corrupt input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// More bytes are needed before the frame can be decoded (streaming).
    Incomplete {
        /// Additional bytes required for the next decode attempt.
        needed: usize,
    },
    /// The first four bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes actually read.
        got: [u8; 4],
    },
    /// Unsupported protocol version.
    BadVersion {
        /// The version byte actually read.
        got: u8,
    },
    /// The reserved header field was non-zero.
    BadReserved {
        /// The reserved value actually read.
        got: u16,
    },
    /// Payload length exceeds [`MAX_PAYLOAD`].
    Oversize {
        /// The declared payload length.
        len: u32,
    },
    /// CRC-32 over the payload did not match the header.
    BadCrc {
        /// CRC declared in the header.
        expected: u32,
        /// CRC computed over the received payload.
        got: u32,
    },
    /// Unknown frame type tag.
    UnknownFrameType {
        /// The tag byte actually read.
        got: u8,
    },
    /// The payload ended in the middle of a field.
    Truncated,
    /// The payload had bytes left over after the last field.
    TrailingBytes {
        /// Number of unconsumed payload bytes.
        extra: usize,
    },
    /// A field held a value the schema forbids (bad enum tag, bad UTF-8).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Incomplete { needed } => write!(f, "incomplete frame: {needed} more bytes"),
            WireError::BadMagic { got } => write!(f, "bad magic {got:02X?}"),
            WireError::BadVersion { got } => write!(f, "unsupported protocol version {got}"),
            WireError::BadReserved { got } => write!(f, "reserved header field non-zero ({got})"),
            WireError::Oversize { len } => write!(f, "payload length {len} exceeds {MAX_PAYLOAD}"),
            WireError::BadCrc { expected, got } => {
                write!(
                    f,
                    "payload CRC mismatch: header {expected:#010X}, computed {got:#010X}"
                )
            }
            WireError::UnknownFrameType { got } => write!(f, "unknown frame type {got}"),
            WireError::Truncated => write!(f, "payload truncated mid-field"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing payload bytes after last field")
            }
            WireError::Malformed(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Per-request error codes carried by [`LocateResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The estimator failed for an unclassified reason (legacy v1 code —
    /// v2 servers send the per-cause codes below instead).
    EstimateFailed = 1,
    /// The request parsed structurally but held unusable values.
    Malformed = 2,
    /// The admission queue was full; retry later.
    Overloaded = 3,
    /// The request aged past its deadline before being solved.
    DeadlineExceeded = 4,
    /// The server hit an internal fault (e.g. a panic isolated to this
    /// request); the request itself may be fine — retrying is reasonable.
    Internal = 5,
    /// Too few usable readings to form any proximity judgement (strict
    /// servers only; degrading servers answer with a centroid estimate).
    InsufficientJudgements = 6,
    /// The relaxed LP was infeasible or unbounded on every venue piece.
    LpInfeasible = 7,
    /// The LP solver failed numerically on every venue piece.
    LpNumerical = 8,
    /// The client spoke a protocol version the server does not serve.
    /// New in v3: a v3 daemon answers a down-version request with this
    /// code encoded at the client's version. Decoders older than v3 do
    /// not know the code and surface it as a clean
    /// `Malformed("unknown error code 9")` — still a structured reject,
    /// never a CRC or framing failure.
    UnsupportedVersion = 9,
    /// The request named a venue the registry has never onboarded
    /// (new in v3).
    UnknownVenue = 10,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Result<Self, WireError> {
        match v {
            1 => Ok(ErrorCode::EstimateFailed),
            2 => Ok(ErrorCode::Malformed),
            3 => Ok(ErrorCode::Overloaded),
            4 => Ok(ErrorCode::DeadlineExceeded),
            5 => Ok(ErrorCode::Internal),
            6 => Ok(ErrorCode::InsufficientJudgements),
            7 => Ok(ErrorCode::LpInfeasible),
            8 => Ok(ErrorCode::LpNumerical),
            9 => Ok(ErrorCode::UnsupportedVersion),
            10 => Ok(ErrorCode::UnknownVenue),
            other => Err(WireError::Malformed(format!("unknown error code {other}"))),
        }
    }

    /// The 1:1 mapping from the core failure taxonomy onto wire codes —
    /// every [`FailureCause`] has exactly one code, so clients can count
    /// causes without parsing error messages.
    pub fn from_estimate_error(e: &EstimateError) -> Self {
        match e.cause() {
            FailureCause::InsufficientJudgements => ErrorCode::InsufficientJudgements,
            FailureCause::LpInfeasible => ErrorCode::LpInfeasible,
            FailureCause::LpNumerical => ErrorCode::LpNumerical,
            FailureCause::InvalidInput => ErrorCode::Malformed,
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::EstimateFailed => write!(f, "estimate-failed"),
            ErrorCode::Malformed => write!(f, "malformed"),
            ErrorCode::Overloaded => write!(f, "overloaded"),
            ErrorCode::DeadlineExceeded => write!(f, "deadline-exceeded"),
            ErrorCode::Internal => write!(f, "internal"),
            ErrorCode::InsufficientJudgements => write!(f, "insufficient-judgements"),
            ErrorCode::LpInfeasible => write!(f, "lp-infeasible"),
            ErrorCode::LpNumerical => write!(f, "lp-numerical"),
            ErrorCode::UnsupportedVersion => write!(f, "unsupported-version"),
            ErrorCode::UnknownVenue => write!(f, "unknown-venue"),
        }
    }
}

/// One CSI snapshot on the wire: the subcarrier grid offsets plus one
/// complex channel coefficient per subcarrier.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSnapshot {
    /// Subcarrier frequency offsets, Hz.
    pub offsets_hz: Vec<f64>,
    /// Channel coefficients as `(re, im)` pairs.
    pub h: Vec<(f64, f64)>,
}

/// One AP's CSI report on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// AP identifier.
    pub ap: u64,
    /// Visit index of a nomadic AP's site (0 for static APs).
    pub visit: u64,
    /// Reported site x-coordinate, metres.
    pub x: f64,
    /// Reported site y-coordinate, metres.
    pub y: f64,
    /// CSI snapshots, one per captured probe packet.
    pub burst: Vec<WireSnapshot>,
}

impl WireReport {
    /// Converts a core report for transmission (bit-exact).
    pub fn from_core(report: &CsiReport) -> Self {
        WireReport {
            ap: report.site.ap as u64,
            visit: report.site.visit as u64,
            x: report.site.position.x,
            y: report.site.position.y,
            burst: report
                .burst
                .iter()
                .map(|s| WireSnapshot {
                    offsets_hz: s.grid.offsets_hz().to_vec(),
                    h: s.h.iter().map(|z| (z.re, z.im)).collect(),
                })
                .collect(),
        }
    }

    /// Semantic validation + conversion into the pipeline's type.
    ///
    /// # Errors
    ///
    /// Returns a message when the report cannot enter the pipeline: a
    /// non-finite position, a snapshot grid that is empty, non-finite, or
    /// not strictly ascending (`SubcarrierGrid`'s construction invariants),
    /// or a channel vector that is empty or disagrees with the grid length
    /// (which would panic the PDP IFFT). Checked here so corrupt input can
    /// never panic the server.
    pub fn to_core(&self) -> Result<CsiReport, String> {
        if !(self.x.is_finite() && self.y.is_finite()) {
            return Err(format!("AP {} position is not finite", self.ap));
        }
        let mut burst = Vec::with_capacity(self.burst.len());
        for (i, snap) in self.burst.iter().enumerate() {
            if snap.offsets_hz.is_empty() {
                return Err(format!(
                    "AP {} snapshot {i}: empty subcarrier grid",
                    self.ap
                ));
            }
            if snap.h.is_empty() {
                return Err(format!("AP {} snapshot {i}: empty channel vector", self.ap));
            }
            if snap.h.len() != snap.offsets_hz.len() {
                return Err(format!(
                    "AP {} snapshot {i}: {} channel coefficients for {} subcarriers",
                    self.ap,
                    snap.h.len(),
                    snap.offsets_hz.len()
                ));
            }
            if !all_finite(&snap.offsets_hz) {
                return Err(format!(
                    "AP {} snapshot {i}: non-finite subcarrier offset",
                    self.ap
                ));
            }
            if !snap.offsets_hz.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!(
                    "AP {} snapshot {i}: subcarrier offsets not strictly ascending",
                    self.ap
                ));
            }
            burst.push(CsiSnapshot {
                h: snap
                    .h
                    .iter()
                    .map(|&(re, im)| Complex::new(re, im))
                    .collect(),
                grid: SubcarrierGrid::new(snap.offsets_hz.clone()),
            });
        }
        Ok(CsiReport {
            site: ApSite {
                ap: self.ap as usize,
                visit: self.visit as usize,
                position: Point::new(self.x, self.y),
            },
            burst,
        })
    }
}

/// Finiteness sweep over a decoded `f64` array in one vectorizable pass.
///
/// An IEEE-754 double is non-finite (±Inf or any NaN) exactly when its
/// eleven exponent bits are all ones, so each element reduces to one mask
/// compare. Counting matches instead of short-circuiting gives the loop a
/// branch-free sum shape the compiler autovectorizes; equivalence with
/// `iter().all(is_finite)` is locked by a regression test. (Note the
/// comparison must be per-element — OR-folding masked exponents would let
/// two partial exponents combine into a false positive.)
fn all_finite(xs: &[f64]) -> bool {
    const EXP_MASK: u64 = 0x7FF0_0000_0000_0000;
    let non_finite: u32 = xs
        .iter()
        .map(|f| u32::from(f.to_bits() & EXP_MASK == EXP_MASK))
        .sum();
    non_finite == 0
}

/// A localization request: one object's CSI reports from every AP site.
#[derive(Debug, Clone, PartialEq)]
pub struct LocateRequest {
    /// Client-chosen identifier echoed in the response.
    pub request_id: u64,
    /// Deadline in microseconds from server admission; 0 means none.
    pub deadline_us: u32,
    /// The venue this request belongs to (new in v3). Venue 0 is the
    /// daemon's resident default venue, so single-venue clients can keep
    /// sending 0 forever; any other id must have been onboarded.
    pub venue_id: u64,
    /// Tracking-session identifier (new in v4). 0 means stateless — the
    /// request is answered exactly as in v3. Any other id routes the
    /// estimate through the daemon's per-(venue, session) `Tracker`, and
    /// the reply carries a [`WireSession`] block.
    pub session_id: u64,
    /// The CSI reports for this request.
    pub reports: Vec<WireReport>,
}

impl LocateRequest {
    /// Validates and converts every report ([`WireReport::to_core`]).
    ///
    /// # Errors
    ///
    /// Returns the first per-report validation message.
    pub fn to_core_reports(&self) -> Result<Vec<CsiReport>, String> {
        self.reports.iter().map(WireReport::to_core).collect()
    }
}

/// Session-plane state attached to a [`WireEstimate`] when the request
/// carried a non-zero session id (new in v4).
///
/// All f64s travel bit-exact (`to_bits` little-endian), so replays and
/// bit-identity checks compare these fields the same way they compare the
/// estimate itself. `error_bound` is the localizability-predicted error of
/// the estimate's grid cell — widened when the tier is `Predicted`, since
/// the position came from extrapolation rather than a same-request solve —
/// and `NaN` when the venue has no localizability map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireSession {
    /// Smoothed x after the session tracker, metres.
    pub smoothed_x: f64,
    /// Smoothed y after the session tracker, metres.
    pub smoothed_y: f64,
    /// Tracked velocity x, m/s.
    pub velocity_x: f64,
    /// Tracked velocity y, m/s.
    pub velocity_y: f64,
    /// Localizability-derived error bound for the estimate's cell, metres.
    pub error_bound: f64,
}

/// A location estimate on the wire — mirrors
/// [`nomloc_core::estimator::LocationEstimate`] field for field.
#[derive(Debug, Clone, PartialEq)]
pub struct WireEstimate {
    /// Estimated x, metres.
    pub x: f64,
    /// Estimated y, metres.
    pub y: f64,
    /// Total relaxation cost of the winning piece.
    pub relaxation_cost: f64,
    /// Relaxed feasible-region area, m².
    pub region_area: f64,
    /// Constraints in the LP.
    pub n_constraints: u64,
    /// Convex pieces tied for minimal relaxation cost.
    pub n_winning_pieces: u64,
    /// Simplex iterations spent on this query.
    pub lp_iterations: u64,
    /// Warm-started center solves.
    pub warm_start_hits: u64,
    /// Phase-1 pivots those warm starts avoided.
    pub phase1_pivots_saved: u64,
    /// Degradation-ladder tier ([`EstimateQuality::as_u8`] encoding).
    /// New in protocol v2; the decoder rejects values above 3 (v4 added
    /// tier 3, `Predicted`).
    pub quality: u8,
    /// Session-plane block (new in v4); `None` for stateless requests,
    /// which keeps v3-era bit-identity expectations intact.
    pub session: Option<WireSession>,
}

impl WireEstimate {
    /// Converts a core estimate for transmission (bit-exact).
    pub fn from_core(est: &LocationEstimate) -> Self {
        WireEstimate {
            x: est.position.x,
            y: est.position.y,
            relaxation_cost: est.relaxation_cost,
            region_area: est.region_area,
            n_constraints: est.n_constraints as u64,
            n_winning_pieces: est.n_winning_pieces as u64,
            lp_iterations: est.lp_iterations,
            warm_start_hits: est.warm_start_hits,
            phase1_pivots_saved: est.phase1_pivots_saved,
            quality: est.quality.as_u8(),
            session: None,
        }
    }

    /// Reconstructs the core estimate (bit-exact inverse of `from_core`).
    ///
    /// An out-of-range `quality` byte (impossible via [`decode_frame`],
    /// which validates it) falls back to [`EstimateQuality::Full`].
    pub fn to_core(&self) -> LocationEstimate {
        LocationEstimate {
            position: Point::new(self.x, self.y),
            relaxation_cost: self.relaxation_cost,
            region_area: self.region_area,
            n_constraints: self.n_constraints as usize,
            n_winning_pieces: self.n_winning_pieces as usize,
            lp_iterations: self.lp_iterations,
            warm_start_hits: self.warm_start_hits,
            phase1_pivots_saved: self.phase1_pivots_saved,
            quality: EstimateQuality::from_u8(self.quality).unwrap_or(EstimateQuality::Full),
        }
    }
}

/// A per-request error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Machine-readable error class.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// The response to one [`LocateRequest`].
#[derive(Debug, Clone, PartialEq)]
pub struct LocateResponse {
    /// Echo of the request's identifier.
    pub request_id: u64,
    /// The estimate, or a per-request error.
    pub outcome: Result<WireEstimate, ErrorReply>,
}

/// A venue description on the wire — the geometric inputs the
/// `scenario.rs` builders consume, so an onboarding payload and an
/// in-process scenario come from the same data (new in v3).
///
/// Only geometry travels: the daemon's locate path needs the boundary
/// polygon (for [`nomloc_core::cache::VenueCache`]); the AP/site lists
/// ride along so `VenueList` stays a useful fleet inventory. Radio and
/// clutter parameters are simulation-side and never cross the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireVenue {
    /// Registry identifier; 0 is reserved for the daemon's resident venue.
    pub venue_id: u64,
    /// Human-readable venue name.
    pub name: String,
    /// Area-of-interest boundary vertices as `(x, y)` metres.
    pub boundary: Vec<(f64, f64)>,
    /// Static AP positions.
    pub static_aps: Vec<(f64, f64)>,
    /// The nomadic AP's home position.
    pub nomadic_home: (f64, f64),
    /// The nomadic AP's walk sites.
    pub nomadic_sites: Vec<(f64, f64)>,
    /// Ground-truth test sites.
    pub test_sites: Vec<(f64, f64)>,
}

impl WireVenue {
    /// Builds the onboarding payload from a scenario venue (bit-exact:
    /// coordinates travel as their IEEE-754 bit patterns).
    pub fn from_venue(venue_id: u64, v: &Venue) -> Self {
        let pt = |p: &Point| (p.x, p.y);
        WireVenue {
            venue_id,
            name: v.name.to_owned(),
            boundary: v.plan.boundary().vertices().iter().map(pt).collect(),
            static_aps: v.static_aps.iter().map(pt).collect(),
            nomadic_home: pt(&v.nomadic_home),
            nomadic_sites: v.nomadic_sites.iter().map(pt).collect(),
            test_sites: v.test_sites.iter().map(pt).collect(),
        }
    }

    /// Reconstructs the boundary polygon the registry builds its
    /// [`nomloc_core::cache::VenueCache`] from.
    ///
    /// # Errors
    ///
    /// Returns a message when the vertices do not form a valid simple
    /// polygon (too few, non-finite, degenerate area).
    pub fn boundary_polygon(&self) -> Result<Polygon, String> {
        Polygon::new(
            self.boundary
                .iter()
                .map(|&(x, y)| Point::new(x, y))
                .collect(),
        )
        .map_err(|e| format!("venue {} boundary: {e:?}", self.venue_id))
    }
}

/// One registry entry in a `VenueAdminResponse` listing (new in v3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VenueSummary {
    /// Registry identifier.
    pub venue_id: u64,
    /// Human-readable venue name.
    pub name: String,
    /// Whether the venue's cache is currently resident (not evicted).
    pub resident: bool,
    /// Locate requests answered for this venue since onboarding.
    pub requests: u64,
}

/// The single response frame for every admin request (onboard, retire,
/// list): either the current venue listing or a structured error.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueAdminResponse {
    /// The registry listing after the operation, or the failure.
    pub outcome: Result<Vec<VenueSummary>, ErrorReply>,
}

/// Per-venue serving counters appended to [`ServerHealth`] (new in v3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VenueHealth {
    /// Registry identifier.
    pub venue_id: u64,
    /// Locate requests resolved against this venue.
    pub requests: u64,
    /// Estimates served at full quality.
    pub quality_full: u64,
    /// Estimates degraded to the site-constraints-only region.
    pub quality_region: u64,
    /// Estimates degraded to the weighted site centroid.
    pub quality_centroid: u64,
    /// Estimates answered from a session's motion model (v4).
    pub quality_predicted: u64,
    /// Batch resolutions that found the venue cache resident.
    pub cache_hits: u64,
    /// Batch resolutions that had to rebuild an evicted cache.
    pub cache_rebuilds: u64,
    /// Times this venue's cache was evicted under the memory budget.
    pub cache_evictions: u64,
    /// Whether the cache is resident right now.
    pub resident: bool,
}

/// A stats/health snapshot frame: serving counters plus latency and
/// batch-size quantiles, all `u64`, plus per-venue records (v3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServerHealth {
    /// TCP connections accepted since start.
    pub connections_accepted: u64,
    /// Frames received from clients.
    pub frames_in: u64,
    /// Frames written to clients.
    pub frames_out: u64,
    /// Connections dropped for protocol violations.
    pub protocol_errors: u64,
    /// Requests admitted into the micro-batch queue.
    pub requests_enqueued: u64,
    /// Requests rejected with `Overloaded` (queue full).
    pub rejected_overload: u64,
    /// Requests expired past their deadline before solving.
    pub deadline_missed: u64,
    /// Micro-batches formed.
    pub batches_formed: u64,
    /// High-water mark of the admission queue depth.
    pub queue_depth_peak: u64,
    /// Batch-size p50 upper bound (requests).
    pub batch_size_p50: u64,
    /// Batch-size max upper bound (requests).
    pub batch_size_max: u64,
    /// Requests answered with an estimate.
    pub requests_ok: u64,
    /// Requests answered with `EstimateFailed`.
    pub requests_failed: u64,
    /// Solve-stage latency p50 upper bound, ns.
    pub solve_p50_ns: u64,
    /// Solve-stage latency p95 upper bound, ns.
    pub solve_p95_ns: u64,
    /// Solve-stage latency p99 upper bound, ns.
    pub solve_p99_ns: u64,
    /// Requests answered with `Internal` after an isolated batch panic.
    pub requests_internal: u64,
    /// Micro-batches whose processing panicked (isolated, then bisected).
    pub batch_panics: u64,
    /// Dead batcher threads detected and respawned by the watchdog.
    pub batchers_respawned: u64,
    /// Estimates served at full quality.
    pub quality_full: u64,
    /// Estimates degraded to the site-constraints-only region.
    pub quality_region: u64,
    /// Estimates degraded to the weighted site centroid.
    pub quality_centroid: u64,
    /// Estimates answered from a session's motion model
    /// ([`EstimateQuality::Predicted`]; new in v4).
    pub quality_predicted: u64,
    /// Tracking sessions currently live in the session table (v4).
    pub sessions_active: u64,
    /// Tracking sessions created since start (v4).
    pub sessions_created: u64,
    /// Tracking sessions evicted by the TTL sweeper (v4).
    pub sessions_evicted: u64,
    /// Estimates the session trackers rejected at the input guard
    /// (non-finite position or invalid time step; v4).
    pub tracker_rejections: u64,
    /// Reply-frame bytes encoded by the daemon.
    ///
    /// Daemon-local display only: this field and the three below are **not
    /// serialized** in `StatsResponse` frames (the wire image is unchanged,
    /// no version bump) and decode as zero.
    pub reply_bytes_encoded: u64,
    /// Reply-frame bytes encoded into a pooled (reused) buffer. Daemon-local
    /// display only; not serialized.
    pub reply_bytes_pooled: u64,
    /// Encode-buffer pool checkouts that reused a backing store.
    /// Daemon-local display only; not serialized.
    pub pool_hits: u64,
    /// Encode-buffer pool checkouts that allocated fresh. Daemon-local
    /// display only; not serialized.
    pub pool_misses: u64,
    /// Connections evicted because their bounded outbound write buffer
    /// overflowed (a slow reader on the event-loop socket backend).
    /// Daemon-local display only; not serialized.
    pub slow_readers_evicted: u64,
    /// Admissions that found their dispatch-shard lock held (sharded
    /// batching plane). Daemon-local display only; not serialized.
    pub enqueue_contention: u64,
    /// Micro-batches stolen from a sibling dispatch shard (work stealing
    /// in the sharded batching plane). Daemon-local display only; not
    /// serialized.
    pub queue_steals: u64,
    /// High-water mark of any single dispatch shard's queue depth
    /// (sharded batching plane). Daemon-local display only; not
    /// serialized.
    pub shard_depth_peak: u64,
    /// Dispatch shards the daemon was configured with (1 = the legacy
    /// single-queue layout). Daemon-local display only; not serialized.
    pub queue_shards: u64,
    /// Per-venue serving counters, one record per onboarded venue
    /// (serialized after the scalar fields; new in v3).
    pub venues: Vec<VenueHealth>,
}

impl fmt::Display for ServerHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "nomloc-net health")?;
        writeln!(f, "  connections accepted  {}", self.connections_accepted)?;
        writeln!(
            f,
            "  frames in / out       {} / {}",
            self.frames_in, self.frames_out
        )?;
        writeln!(f, "  protocol errors       {}", self.protocol_errors)?;
        writeln!(f, "  requests enqueued     {}", self.requests_enqueued)?;
        writeln!(
            f,
            "  ok / failed           {} / {}",
            self.requests_ok, self.requests_failed
        )?;
        writeln!(f, "  overload rejections   {}", self.rejected_overload)?;
        writeln!(f, "  deadline misses       {}", self.deadline_missed)?;
        writeln!(
            f,
            "  batches formed        {} (size p50 ≤ {}, max ≤ {})",
            self.batches_formed, self.batch_size_p50, self.batch_size_max
        )?;
        writeln!(f, "  queue depth peak      {}", self.queue_depth_peak)?;
        if self.queue_shards > 1 {
            writeln!(
                f,
                "  dispatch shards       {} (shard depth peak {}, steals {}, enqueue contention {})",
                self.queue_shards,
                self.shard_depth_peak,
                self.queue_steals,
                self.enqueue_contention
            )?;
        }
        if self.pool_hits > 0 || self.pool_misses > 0 {
            let checkouts = self.pool_hits + self.pool_misses;
            writeln!(
                f,
                "  reply bytes encoded   {} ({} pooled, pool hit-rate {:.1}%)",
                self.reply_bytes_encoded,
                self.reply_bytes_pooled,
                100.0 * self.pool_hits as f64 / checkouts as f64,
            )?;
        }
        writeln!(
            f,
            "  quality tiers         full {} / region {} / predicted {} / centroid {}",
            self.quality_full, self.quality_region, self.quality_predicted, self.quality_centroid
        )?;
        if self.sessions_created > 0 {
            writeln!(
                f,
                "  sessions              {} active / {} created / {} evicted ({} tracker rejections)",
                self.sessions_active,
                self.sessions_created,
                self.sessions_evicted,
                self.tracker_rejections
            )?;
        }
        writeln!(
            f,
            "  batch panics          {} ({} internal replies)",
            self.batch_panics, self.requests_internal
        )?;
        writeln!(f, "  batchers respawned    {}", self.batchers_respawned)?;
        if self.slow_readers_evicted > 0 {
            writeln!(f, "  slow readers evicted  {}", self.slow_readers_evicted)?;
        }
        writeln!(
            f,
            "  solve latency         p50 ≤ {} ns, p95 ≤ {} ns, p99 ≤ {} ns",
            self.solve_p50_ns, self.solve_p95_ns, self.solve_p99_ns
        )?;
        if !self.venues.is_empty() {
            writeln!(f, "  venues                {}", self.venues.len())?;
            for v in &self.venues {
                writeln!(
                    f,
                    "    venue {:<6} req {} (full {} / region {} / predicted {} / centroid {}) cache hit {} rebuild {} evict {}{}",
                    v.venue_id,
                    v.requests,
                    v.quality_full,
                    v.quality_region,
                    v.quality_predicted,
                    v.quality_centroid,
                    v.cache_hits,
                    v.cache_rebuilds,
                    v.cache_evictions,
                    if v.resident { "" } else { " [evicted]" },
                )?;
            }
        }
        Ok(())
    }
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// A localization request.
    LocateRequest(LocateRequest),
    /// A localization response.
    LocateResponse(LocateResponse),
    /// A request for the server's health snapshot (empty payload).
    StatsRequest,
    /// The server's health snapshot.
    StatsResponse(ServerHealth),
    /// Onboard (or replace) a venue in the registry (v3 admin plane).
    VenueOnboard(WireVenue),
    /// Retire a venue by id (v3 admin plane).
    VenueRetire(u64),
    /// List the registry (empty payload, v3 admin plane).
    VenueList,
    /// The response to any admin frame (v3 admin plane).
    VenueAdminResponse(VenueAdminResponse),
}

impl Frame {
    fn type_tag(&self) -> u8 {
        match self {
            Frame::LocateRequest(_) => tag::LOCATE_REQUEST,
            Frame::LocateResponse(_) => tag::LOCATE_RESPONSE,
            Frame::StatsRequest => tag::STATS_REQUEST,
            Frame::StatsResponse(_) => tag::STATS_RESPONSE,
            Frame::VenueOnboard(_) => tag::VENUE_ONBOARD,
            Frame::VenueRetire(_) => tag::VENUE_RETIRE,
            Frame::VenueList => tag::VENUE_LIST,
            Frame::VenueAdminResponse(_) => tag::VENUE_ADMIN_RESPONSE,
        }
    }
}

// ---------------------------------------------------------------------------
// Payload primitives.

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len().min(u32::MAX as usize) as u32);
    out.extend_from_slice(&s.as_bytes()[..s.len().min(u32::MAX as usize)]);
}

/// Bounds-checked payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Appends `n` consecutive little-endian `f64`s to `out` with a single
    /// bounds check up front: the element loop is a straight run of 8-byte
    /// loads over one slice (`chunks_exact` + `from_le_bytes`), which the
    /// compiler turns into bulk copies instead of per-sample cursor
    /// arithmetic. Bit-exact — no finiteness or range interpretation here.
    ///
    /// Callers obtain `n` from [`Cursor::len`]`(8)`, whose guard bounds
    /// `n * 8` by the remaining payload, so the multiply cannot overflow.
    fn f64_array_into(&mut self, n: usize, out: &mut Vec<f64>) -> Result<(), WireError> {
        let raw = self.bytes(n * 8)?;
        out.reserve(n);
        out.extend(
            raw.chunks_exact(8)
                .map(|b| f64::from_le_bytes(b.try_into().unwrap())),
        );
        Ok(())
    }

    /// [`Cursor::f64_array_into`] for `(re, im)` pairs: `n` 16-byte records
    /// decoded off one bounds-checked slice.
    fn f64_pairs_into(&mut self, n: usize, out: &mut Vec<(f64, f64)>) -> Result<(), WireError> {
        let raw = self.bytes(n * 16)?;
        out.reserve(n);
        out.extend(raw.chunks_exact(16).map(|b| {
            (
                f64::from_le_bytes(b[..8].try_into().unwrap()),
                f64::from_le_bytes(b[8..].try_into().unwrap()),
            )
        }));
        Ok(())
    }

    /// Reads a length-prefixed UTF-8 string.
    fn str(&mut self) -> Result<String, WireError> {
        let n = self.len(1)?;
        Ok(std::str::from_utf8(self.bytes(n)?)
            .map_err(|_| WireError::Malformed("string is not UTF-8".into()))?
            .to_owned())
    }

    /// Reads a length-prefixed list of `(x, y)` coordinate pairs.
    fn points(&mut self) -> Result<Vec<(f64, f64)>, WireError> {
        let n = self.len(16)?;
        let mut out = Vec::new();
        self.f64_pairs_into(n, &mut out)?;
        Ok(out)
    }

    /// Reads a `u32` element count and rejects counts whose minimal
    /// encoding could not fit in the remaining payload — corrupt lengths
    /// fail *before* any allocation happens.
    fn len(&mut self, min_elem_size: usize) -> Result<usize, WireError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Per-frame payload encode/decode.

fn encode_locate_request(req: &LocateRequest, out: &mut Vec<u8>) {
    put_u64(out, req.request_id);
    put_u32(out, req.deadline_us);
    put_u64(out, req.venue_id);
    put_u64(out, req.session_id);
    put_u32(out, req.reports.len() as u32);
    for r in &req.reports {
        put_u64(out, r.ap);
        put_u64(out, r.visit);
        put_f64(out, r.x);
        put_f64(out, r.y);
        put_u32(out, r.burst.len() as u32);
        for s in &r.burst {
            put_u32(out, s.offsets_hz.len() as u32);
            for &f in &s.offsets_hz {
                put_f64(out, f);
            }
            put_u32(out, s.h.len() as u32);
            for &(re, im) in &s.h {
                put_f64(out, re);
                put_f64(out, im);
            }
        }
    }
}

fn decode_locate_request(c: &mut Cursor<'_>) -> Result<LocateRequest, WireError> {
    let request_id = c.u64()?;
    let deadline_us = c.u32()?;
    let venue_id = c.u64()?;
    let session_id = c.u64()?;
    let n_reports = c.len(32)?; // ap + visit + x + y at minimum
    let mut reports = Vec::with_capacity(n_reports);
    for _ in 0..n_reports {
        let ap = c.u64()?;
        let visit = c.u64()?;
        let x = c.f64()?;
        let y = c.f64()?;
        let n_snaps = c.len(8)?; // two u32 length prefixes at minimum
        let mut burst = Vec::with_capacity(n_snaps);
        for _ in 0..n_snaps {
            let n_sub = c.len(8)?;
            let mut offsets_hz = Vec::new();
            c.f64_array_into(n_sub, &mut offsets_hz)?;
            let n_h = c.len(16)?;
            let mut h = Vec::new();
            c.f64_pairs_into(n_h, &mut h)?;
            burst.push(WireSnapshot { offsets_hz, h });
        }
        reports.push(WireReport {
            ap,
            visit,
            x,
            y,
            burst,
        });
    }
    Ok(LocateRequest {
        request_id,
        deadline_us,
        venue_id,
        session_id,
        reports,
    })
}

fn put_points(out: &mut Vec<u8>, pts: &[(f64, f64)]) {
    put_u32(out, pts.len() as u32);
    for &(x, y) in pts {
        put_f64(out, x);
        put_f64(out, y);
    }
}

fn encode_venue(v: &WireVenue, out: &mut Vec<u8>) {
    put_u64(out, v.venue_id);
    put_str(out, &v.name);
    put_points(out, &v.boundary);
    put_points(out, &v.static_aps);
    put_f64(out, v.nomadic_home.0);
    put_f64(out, v.nomadic_home.1);
    put_points(out, &v.nomadic_sites);
    put_points(out, &v.test_sites);
}

fn decode_venue(c: &mut Cursor<'_>) -> Result<WireVenue, WireError> {
    Ok(WireVenue {
        venue_id: c.u64()?,
        name: c.str()?,
        boundary: c.points()?,
        static_aps: c.points()?,
        nomadic_home: (c.f64()?, c.f64()?),
        nomadic_sites: c.points()?,
        test_sites: c.points()?,
    })
}

fn encode_admin_response(resp: &VenueAdminResponse, out: &mut Vec<u8>) {
    match &resp.outcome {
        Ok(summaries) => {
            out.push(0);
            put_u32(out, summaries.len() as u32);
            for s in summaries {
                put_u64(out, s.venue_id);
                put_str(out, &s.name);
                out.push(u8::from(s.resident));
                put_u64(out, s.requests);
            }
        }
        Err(e) => {
            out.push(e.code as u8);
            put_str(out, &e.message);
        }
    }
}

fn decode_admin_response(c: &mut Cursor<'_>) -> Result<VenueAdminResponse, WireError> {
    let status = c.u8()?;
    let outcome = if status == 0 {
        // venue_id + name length + resident + requests at minimum.
        let n = c.len(21)?;
        let mut summaries = Vec::with_capacity(n);
        for _ in 0..n {
            let venue_id = c.u64()?;
            let name = c.str()?;
            let resident = match c.u8()? {
                0 => false,
                1 => true,
                other => return Err(WireError::Malformed(format!("bad resident flag {other}"))),
            };
            let requests = c.u64()?;
            summaries.push(VenueSummary {
                venue_id,
                name,
                resident,
                requests,
            });
        }
        Ok(summaries)
    } else {
        let code = ErrorCode::from_u8(status)?;
        let message = c.str()?;
        Err(ErrorReply { code, message })
    };
    Ok(VenueAdminResponse { outcome })
}

fn encode_locate_response(resp: &LocateResponse, out: &mut Vec<u8>) {
    put_u64(out, resp.request_id);
    match &resp.outcome {
        Ok(est) => {
            out.push(0);
            put_f64(out, est.x);
            put_f64(out, est.y);
            put_f64(out, est.relaxation_cost);
            put_f64(out, est.region_area);
            put_u64(out, est.n_constraints);
            put_u64(out, est.n_winning_pieces);
            put_u64(out, est.lp_iterations);
            put_u64(out, est.warm_start_hits);
            put_u64(out, est.phase1_pivots_saved);
            // The session block precedes the quality byte so that the
            // quality tier stays the last payload byte in every layout —
            // the property the tamper tests poke at.
            match &est.session {
                Some(s) => {
                    out.push(1);
                    put_f64(out, s.smoothed_x);
                    put_f64(out, s.smoothed_y);
                    put_f64(out, s.velocity_x);
                    put_f64(out, s.velocity_y);
                    put_f64(out, s.error_bound);
                }
                None => out.push(0),
            }
            out.push(est.quality);
        }
        Err(e) => {
            out.push(e.code as u8);
            put_str(out, &e.message);
        }
    }
}

fn decode_locate_response(c: &mut Cursor<'_>) -> Result<LocateResponse, WireError> {
    let request_id = c.u64()?;
    let status = c.u8()?;
    let outcome = if status == 0 {
        let mut est = WireEstimate {
            x: c.f64()?,
            y: c.f64()?,
            relaxation_cost: c.f64()?,
            region_area: c.f64()?,
            n_constraints: c.u64()?,
            n_winning_pieces: c.u64()?,
            lp_iterations: c.u64()?,
            warm_start_hits: c.u64()?,
            phase1_pivots_saved: c.u64()?,
            quality: 0,
            session: None,
        };
        est.session = match c.u8()? {
            0 => None,
            1 => Some(WireSession {
                smoothed_x: c.f64()?,
                smoothed_y: c.f64()?,
                velocity_x: c.f64()?,
                velocity_y: c.f64()?,
                error_bound: c.f64()?,
            }),
            other => {
                return Err(WireError::Malformed(format!(
                    "bad session-block flag {other}"
                )))
            }
        };
        est.quality = c.u8()?;
        if EstimateQuality::from_u8(est.quality).is_none() {
            return Err(WireError::Malformed(format!(
                "unknown estimate quality tier {}",
                est.quality
            )));
        }
        Ok(est)
    } else {
        let code = ErrorCode::from_u8(status)?;
        let n = c.len(1)?;
        let message = std::str::from_utf8(c.bytes(n)?)
            .map_err(|_| WireError::Malformed("error message is not UTF-8".into()))?
            .to_owned();
        Err(ErrorReply { code, message })
    };
    Ok(LocateResponse {
        request_id,
        outcome,
    })
}

fn encode_health(h: &ServerHealth, out: &mut Vec<u8>) {
    for v in health_fields(h) {
        put_u64(out, v);
    }
    put_u32(out, h.venues.len() as u32);
    for v in &h.venues {
        put_u64(out, v.venue_id);
        put_u64(out, v.requests);
        put_u64(out, v.quality_full);
        put_u64(out, v.quality_region);
        put_u64(out, v.quality_centroid);
        put_u64(out, v.quality_predicted);
        put_u64(out, v.cache_hits);
        put_u64(out, v.cache_rebuilds);
        put_u64(out, v.cache_evictions);
        out.push(u8::from(v.resident));
    }
}

fn decode_health(c: &mut Cursor<'_>) -> Result<ServerHealth, WireError> {
    let mut h = ServerHealth::default();
    for slot in health_fields_mut(&mut h) {
        *slot = c.u64()?;
    }
    // Nine u64 counters plus the resident flag per record.
    let n = c.len(73)?;
    h.venues.reserve(n);
    for _ in 0..n {
        let mut v = VenueHealth {
            venue_id: c.u64()?,
            requests: c.u64()?,
            quality_full: c.u64()?,
            quality_region: c.u64()?,
            quality_centroid: c.u64()?,
            quality_predicted: c.u64()?,
            cache_hits: c.u64()?,
            cache_rebuilds: c.u64()?,
            cache_evictions: c.u64()?,
            resident: false,
        };
        v.resident = match c.u8()? {
            0 => false,
            1 => true,
            other => return Err(WireError::Malformed(format!("bad resident flag {other}"))),
        };
        h.venues.push(v);
    }
    Ok(h)
}

fn health_fields(h: &ServerHealth) -> [u64; 27] {
    [
        h.connections_accepted,
        h.frames_in,
        h.frames_out,
        h.protocol_errors,
        h.requests_enqueued,
        h.rejected_overload,
        h.deadline_missed,
        h.batches_formed,
        h.queue_depth_peak,
        h.batch_size_p50,
        h.batch_size_max,
        h.requests_ok,
        h.requests_failed,
        h.solve_p50_ns,
        h.solve_p95_ns,
        h.solve_p99_ns,
        h.requests_internal,
        h.batch_panics,
        h.batchers_respawned,
        h.quality_full,
        h.quality_region,
        h.quality_centroid,
        h.quality_predicted,
        h.sessions_active,
        h.sessions_created,
        h.sessions_evicted,
        h.tracker_rejections,
    ]
}

fn health_fields_mut(h: &mut ServerHealth) -> [&mut u64; 27] {
    [
        &mut h.connections_accepted,
        &mut h.frames_in,
        &mut h.frames_out,
        &mut h.protocol_errors,
        &mut h.requests_enqueued,
        &mut h.rejected_overload,
        &mut h.deadline_missed,
        &mut h.batches_formed,
        &mut h.queue_depth_peak,
        &mut h.batch_size_p50,
        &mut h.batch_size_max,
        &mut h.requests_ok,
        &mut h.requests_failed,
        &mut h.solve_p50_ns,
        &mut h.solve_p95_ns,
        &mut h.solve_p99_ns,
        &mut h.requests_internal,
        &mut h.batch_panics,
        &mut h.batchers_respawned,
        &mut h.quality_full,
        &mut h.quality_region,
        &mut h.quality_centroid,
        &mut h.quality_predicted,
        &mut h.sessions_active,
        &mut h.sessions_created,
        &mut h.sessions_evicted,
        &mut h.tracker_rejections,
    ]
}

// ---------------------------------------------------------------------------
// Frame-level encode/decode.

/// Encodes `frame` (header + payload) onto the end of `out`.
///
/// The payload is encoded directly into `out` after a reserved header slot
/// and the length/CRC fields are backpatched, so encoding never allocates a
/// staging buffer of its own — callers that reuse `out` encode with zero
/// allocation in steady state. The byte image is identical to encoding the
/// payload separately and appending it.
pub fn encode_frame(frame: &Frame, out: &mut Vec<u8>) {
    encode_frame_with_version(frame, VERSION, out);
}

/// [`encode_frame`] with an explicit version byte in the header.
///
/// Payload schemas are always the *current* version's — this exists so the
/// daemon can stamp a version-stable frame (a [`LocateResponse`] error,
/// whose layout has not changed since v2) with a down-level client's
/// version byte, letting that client's structural decoder accept the
/// [`ErrorCode::UnsupportedVersion`] reply instead of tripping on
/// `BadVersion`.
pub fn encode_frame_with_version(frame: &Frame, version: u8, out: &mut Vec<u8>) {
    let header_at = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(version);
    out.push(frame.type_tag());
    put_u16(out, 0); // reserved
    put_u32(out, 0); // payload length, backpatched below
    put_u32(out, 0); // payload crc32, backpatched below
    let payload_at = out.len();
    match frame {
        Frame::LocateRequest(req) => encode_locate_request(req, out),
        Frame::LocateResponse(resp) => encode_locate_response(resp, out),
        Frame::StatsRequest => {}
        Frame::StatsResponse(h) => encode_health(h, out),
        Frame::VenueOnboard(v) => encode_venue(v, out),
        Frame::VenueRetire(id) => put_u64(out, *id),
        Frame::VenueList => {}
        Frame::VenueAdminResponse(resp) => encode_admin_response(resp, out),
    }
    let payload_len = (out.len() - payload_at) as u32;
    let crc = crc32(&out[payload_at..]);
    out[header_at + 8..header_at + 12].copy_from_slice(&payload_len.to_le_bytes());
    out[header_at + 12..header_at + 16].copy_from_slice(&crc.to_le_bytes());
}

/// The daemon's reply to a request whose version byte it cannot serve: a
/// [`LocateResponse`] carrying [`ErrorCode::UnsupportedVersion`], encoded
/// at the *client's* version when the client is older than us (so its
/// structural decoder accepts the frame — the response layout is stable
/// across v2/v3) and at our version otherwise.
///
/// Satellite guarantee: a v2-only client talking to a v3 daemon sees a
/// clean structured error on its own wire dialect, never a CRC or framing
/// failure.
pub fn unsupported_version_reply(got: u8) -> Vec<u8> {
    let reply_version = if (1..VERSION).contains(&got) {
        got
    } else {
        VERSION
    };
    let frame = Frame::LocateResponse(LocateResponse {
        request_id: 0,
        outcome: Err(ErrorReply {
            code: ErrorCode::UnsupportedVersion,
            message: format!("server speaks protocol v{VERSION}, got v{got}"),
        }),
    });
    let mut out = Vec::new();
    encode_frame_with_version(&frame, reply_version, &mut out);
    out
}

/// Encodes `frame` into a fresh buffer.
pub fn frame_to_vec(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(frame, &mut out);
    out
}

/// Decodes one frame from the front of `buf`.
///
/// Returns the frame and the number of bytes it consumed, so a streaming
/// caller can `drain(..n)` and try again.
///
/// # Errors
///
/// [`WireError::Incomplete`] when `buf` holds a valid prefix that needs
/// more bytes; any other variant is a protocol violation.
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    decode_frame_with_version(buf, VERSION)
}

/// [`decode_frame`] with an explicit accepted version byte.
///
/// Payload schemas are always the *current* version's, so this is only
/// meaningful for version-stable frames ([`LocateResponse`],
/// [`StatsRequest`]) — the negotiation tests use it to act as a v2-only
/// client verifying that a v3 daemon's [`unsupported_version_reply`]
/// decodes cleanly on the old dialect.
pub fn decode_frame_with_version(buf: &[u8], version: u8) -> Result<(Frame, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Incomplete {
            needed: HEADER_LEN - buf.len(),
        });
    }
    let magic: [u8; 4] = buf[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(WireError::BadMagic { got: magic });
    }
    if buf[4] != version {
        return Err(WireError::BadVersion { got: buf[4] });
    }
    let frame_type = buf[5];
    if !(tag::LOCATE_REQUEST..=tag::VENUE_ADMIN_RESPONSE).contains(&frame_type) {
        return Err(WireError::UnknownFrameType { got: frame_type });
    }
    let reserved = u16::from_le_bytes(buf[6..8].try_into().unwrap());
    if reserved != 0 {
        return Err(WireError::BadReserved { got: reserved });
    }
    let payload_len = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    if payload_len > MAX_PAYLOAD {
        return Err(WireError::Oversize { len: payload_len });
    }
    let total = HEADER_LEN + payload_len as usize;
    if buf.len() < total {
        return Err(WireError::Incomplete {
            needed: total - buf.len(),
        });
    }
    let declared_crc = u32::from_le_bytes(buf[12..16].try_into().unwrap());
    let payload = &buf[HEADER_LEN..total];
    let got_crc = crc32(payload);
    if got_crc != declared_crc {
        return Err(WireError::BadCrc {
            expected: declared_crc,
            got: got_crc,
        });
    }
    let mut c = Cursor::new(payload);
    let frame = match frame_type {
        tag::LOCATE_REQUEST => Frame::LocateRequest(decode_locate_request(&mut c)?),
        tag::LOCATE_RESPONSE => Frame::LocateResponse(decode_locate_response(&mut c)?),
        tag::STATS_REQUEST => Frame::StatsRequest,
        tag::STATS_RESPONSE => Frame::StatsResponse(decode_health(&mut c)?),
        tag::VENUE_ONBOARD => Frame::VenueOnboard(decode_venue(&mut c)?),
        tag::VENUE_RETIRE => Frame::VenueRetire(c.u64()?),
        tag::VENUE_LIST => Frame::VenueList,
        tag::VENUE_ADMIN_RESPONSE => Frame::VenueAdminResponse(decode_admin_response(&mut c)?),
        _ => unreachable!("tag range checked above"),
    };
    c.done()?;
    Ok((frame, total))
}

/// Incremental frame decoder for a byte stream delivered in arbitrary
/// chunks (one byte at a time, split mid-header, coalesced across
/// frames — TCP guarantees none of the framing).
///
/// Feed bytes with [`StreamDecoder::extend`], then pull frames with
/// [`StreamDecoder::next_frame`] until it returns `Ok(None)`. Decoding is
/// equivalent to [`decode_frame`] over the concatenation of everything
/// fed so far — the property test in `crates/net/tests/decoder.rs` pins
/// this for every split position.
///
/// Consumed bytes are reclaimed by shifting the buffer only when the
/// consumed prefix is large or the buffer is fully drained, so a
/// pipelined burst of small frames costs O(bytes) total, not O(bytes ×
/// frames) as a naive `drain(..consumed)` per frame would.
#[derive(Debug, Default)]
pub struct StreamDecoder {
    buf: Vec<u8>,
    start: usize,
}

/// Compact once the dead prefix crosses this many bytes (or the buffer
/// empties, which is free).
const DECODER_COMPACT_THRESHOLD: usize = 64 * 1024;

impl StreamDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        StreamDecoder::default()
    }

    /// Appends freshly-read bytes to the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(bytes);
    }

    /// Decodes the next complete frame, or `Ok(None)` if the buffered
    /// bytes end mid-frame.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] other than `Incomplete` — a protocol violation
    /// by the peer. The decoder is not recoverable afterwards (framing is
    /// lost); the caller should close the connection.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        match decode_frame(&self.buf[self.start..]) {
            Ok((frame, consumed)) => {
                self.start += consumed;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                Ok(Some(frame))
            }
            Err(WireError::Incomplete { .. }) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Capacity of the internal buffer (bounds a connection's read-side
    /// memory footprint in the soak test).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    fn compact(&mut self) {
        if self.start == 0 {
            return;
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= DECODER_COMPACT_THRESHOLD {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Writes one frame to `w` (single `write_all`, so concurrent writers
/// serialised by a lock interleave whole frames, never fragments).
///
/// # Errors
///
/// Forwards the underlying I/O error.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame_to_vec(frame))
}

/// Reads exactly one frame from `r`, blocking as needed.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors are forwarded; protocol violations surface as
/// [`io::ErrorKind::InvalidData`] wrapping the [`WireError`].
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "EOF mid-header",
            ));
        }
        filled += n;
    }
    // Validate the header alone first, then read the payload.
    let mut buf = header.to_vec();
    match decode_frame(&buf) {
        Ok((frame, _)) => return Ok(Some(frame)),
        Err(WireError::Incomplete { needed }) => {
            let start = buf.len();
            buf.resize(start + needed, 0);
            r.read_exact(&mut buf[start..])?;
        }
        Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
    }
    match decode_frame(&buf) {
        Ok((frame, _)) => Ok(Some(frame)),
        Err(e) => Err(io::Error::new(io::ErrorKind::InvalidData, e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> Frame {
        Frame::LocateRequest(LocateRequest {
            request_id: 42,
            deadline_us: 1500,
            venue_id: 3,
            session_id: 0,
            reports: vec![WireReport {
                ap: 7,
                visit: 2,
                x: 3.25,
                y: -1.5,
                burst: vec![WireSnapshot {
                    offsets_hz: vec![-312_500.0, 0.0, 312_500.0],
                    h: vec![(1.0, 0.5), (0.0, -0.25), (2.0, 2.0)],
                }],
            }],
        })
    }

    #[test]
    fn round_trip_request() {
        let frame = sample_request();
        let bytes = frame_to_vec(&frame);
        let (decoded, n) = decode_frame(&bytes).unwrap();
        assert_eq!(n, bytes.len());
        assert_eq!(decoded, frame);
    }

    #[test]
    fn round_trip_response_ok_and_err() {
        for frame in [
            Frame::LocateResponse(LocateResponse {
                request_id: 9,
                outcome: Ok(WireEstimate {
                    x: 1.0,
                    y: 2.0,
                    relaxation_cost: 0.5,
                    region_area: 3.75,
                    n_constraints: 12,
                    n_winning_pieces: 1,
                    lp_iterations: 40,
                    warm_start_hits: 2,
                    phase1_pivots_saved: 8,
                    quality: 1,
                    session: None,
                }),
            }),
            Frame::LocateResponse(LocateResponse {
                request_id: 11,
                outcome: Ok(WireEstimate {
                    x: 4.0,
                    y: 5.0,
                    relaxation_cost: 0.0,
                    region_area: 2.0,
                    n_constraints: 6,
                    n_winning_pieces: 1,
                    lp_iterations: 12,
                    warm_start_hits: 0,
                    phase1_pivots_saved: 0,
                    quality: 3,
                    session: Some(WireSession {
                        smoothed_x: 4.25,
                        smoothed_y: 4.75,
                        velocity_x: 0.5,
                        velocity_y: -0.25,
                        error_bound: 1.5,
                    }),
                }),
            }),
            Frame::LocateResponse(LocateResponse {
                request_id: 10,
                outcome: Err(ErrorReply {
                    code: ErrorCode::Overloaded,
                    message: "queue full".into(),
                }),
            }),
        ] {
            let bytes = frame_to_vec(&frame);
            assert_eq!(decode_frame(&bytes).unwrap().0, frame);
        }
    }

    #[test]
    fn every_error_code_round_trips() {
        for code in [
            ErrorCode::EstimateFailed,
            ErrorCode::Malformed,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::Internal,
            ErrorCode::InsufficientJudgements,
            ErrorCode::LpInfeasible,
            ErrorCode::LpNumerical,
            ErrorCode::UnsupportedVersion,
            ErrorCode::UnknownVenue,
        ] {
            let frame = Frame::LocateResponse(LocateResponse {
                request_id: 1,
                outcome: Err(ErrorReply {
                    code,
                    message: code.to_string(),
                }),
            });
            let bytes = frame_to_vec(&frame);
            assert_eq!(decode_frame(&bytes).unwrap().0, frame);
        }
        // Unknown status bytes are rejected, not misread as some code.
        let frame = Frame::LocateResponse(LocateResponse {
            request_id: 1,
            outcome: Err(ErrorReply {
                code: ErrorCode::Internal,
                message: String::new(),
            }),
        });
        let mut bytes = frame_to_vec(&frame);
        let status_at = HEADER_LEN + 8;
        bytes[status_at] = 11;
        let payload = bytes[HEADER_LEN..].to_vec();
        bytes[12..16].copy_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn unknown_quality_tier_is_rejected() {
        let frame = Frame::LocateResponse(LocateResponse {
            request_id: 1,
            outcome: Ok(WireEstimate {
                x: 1.0,
                y: 2.0,
                relaxation_cost: 0.0,
                region_area: 1.0,
                n_constraints: 4,
                n_winning_pieces: 1,
                lp_iterations: 7,
                warm_start_hits: 1,
                phase1_pivots_saved: 0,
                quality: 0,
                session: None,
            }),
        });
        let mut bytes = frame_to_vec(&frame);
        // The quality byte is the last payload byte of an Ok response
        // (the session block, present or not, encodes before it).
        *bytes.last_mut().unwrap() = 4;
        let payload = bytes[HEADER_LEN..].to_vec();
        bytes[12..16].copy_from_slice(&crc32(&payload).to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(WireError::Malformed(_))));
    }

    #[test]
    fn old_decoders_reject_v4_frames_cleanly() {
        // A v3 decoder checked `buf[4] != 3`; our v4 frames carry 4 there,
        // so the old check fires BadVersion before any payload is touched.
        // Symmetrically, a down-version frame presented to this decoder is
        // rejected the same way.
        let mut bytes = frame_to_vec(&Frame::StatsRequest);
        assert_eq!(bytes[4], 4, "frames are emitted at protocol v4");
        for old in [1u8, 2, 3] {
            bytes[4] = old;
            assert!(matches!(
                decode_frame(&bytes),
                Err(WireError::BadVersion { got }) if got == old
            ));
        }
    }

    #[test]
    fn down_version_requests_get_a_decodable_unsupported_version_reply() {
        // Satellite 1: a v2-only client sends a request with version byte 2
        // (the CRC covers only the payload, so the daemon rejects on the
        // version byte alone) and must be able to decode the reply on its
        // own dialect — acting the v2 client via decode_frame_with_version.
        let mut req = frame_to_vec(&sample_request());
        req[4] = 2;
        let Err(WireError::BadVersion { got }) = decode_frame(&req) else {
            panic!("v2 request must be rejected on the version byte");
        };
        let reply = unsupported_version_reply(got);
        assert_eq!(reply[4], 2, "reply is stamped with the client's version");
        let (frame, n) = decode_frame_with_version(&reply, 2).unwrap();
        assert_eq!(n, reply.len());
        let Frame::LocateResponse(resp) = frame else {
            panic!("reply must be a LocateResponse, got {frame:?}");
        };
        assert_eq!(
            resp.outcome.unwrap_err().code,
            ErrorCode::UnsupportedVersion
        );
        // A *newer* client (hypothetical v5) gets the reply on our dialect.
        let reply = unsupported_version_reply(5);
        assert_eq!(reply[4], VERSION);
        assert!(decode_frame(&reply).is_ok());
    }

    #[test]
    fn venue_admin_frames_round_trip() {
        let venue = WireVenue::from_venue(7, &Venue::lab());
        assert_eq!(venue.name, "Lab");
        assert_eq!(venue.static_aps.len(), 3);
        assert!(venue.boundary_polygon().is_ok());
        for frame in [
            Frame::VenueOnboard(venue.clone()),
            Frame::VenueRetire(7),
            Frame::VenueList,
            Frame::VenueAdminResponse(VenueAdminResponse {
                outcome: Ok(vec![
                    VenueSummary {
                        venue_id: 0,
                        name: "Lab".into(),
                        resident: true,
                        requests: 12,
                    },
                    VenueSummary {
                        venue_id: 7,
                        name: "Mall".into(),
                        resident: false,
                        requests: 0,
                    },
                ]),
            }),
            Frame::VenueAdminResponse(VenueAdminResponse {
                outcome: Err(ErrorReply {
                    code: ErrorCode::UnknownVenue,
                    message: "venue 9 was never onboarded".into(),
                }),
            }),
        ] {
            let bytes = frame_to_vec(&frame);
            let (decoded, n) = decode_frame(&bytes).unwrap();
            assert_eq!(n, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn wire_venue_coordinates_are_bit_exact() {
        let mut venue = WireVenue::from_venue(1, &Venue::lobby());
        venue.boundary[0].0 = f64::from_bits(0.1f64.to_bits() + 1);
        let bytes = frame_to_vec(&Frame::VenueOnboard(venue.clone()));
        let (Frame::VenueOnboard(got), _) = decode_frame(&bytes).unwrap() else {
            panic!("wrong frame");
        };
        assert_eq!(got.boundary[0].0.to_bits(), venue.boundary[0].0.to_bits());
        assert_eq!(got, venue);
    }

    #[test]
    fn quality_survives_the_core_round_trip() {
        use nomloc_core::EstimateQuality;
        for (tier, byte) in [
            (EstimateQuality::Full, 0u8),
            (EstimateQuality::Region, 1),
            (EstimateQuality::Centroid, 2),
            (EstimateQuality::Predicted, 3),
        ] {
            let est = LocationEstimate {
                position: Point::new(1.0, 2.0),
                relaxation_cost: 0.0,
                region_area: 5.0,
                n_constraints: 4,
                n_winning_pieces: 1,
                lp_iterations: 3,
                warm_start_hits: 1,
                phase1_pivots_saved: 0,
                quality: tier,
            };
            let wire = WireEstimate::from_core(&est);
            assert_eq!(wire.quality, byte);
            assert_eq!(wire.to_core(), est);
        }
    }

    #[test]
    fn round_trip_stats_frames() {
        let bytes = frame_to_vec(&Frame::StatsRequest);
        assert_eq!(decode_frame(&bytes).unwrap().0, Frame::StatsRequest);

        let health = ServerHealth {
            connections_accepted: 4,
            frames_in: 100,
            frames_out: 99,
            requests_ok: 90,
            solve_p99_ns: 1 << 20,
            requests_internal: 2,
            batch_panics: 1,
            batchers_respawned: 1,
            quality_full: 80,
            quality_region: 7,
            quality_predicted: 2,
            quality_centroid: 3,
            sessions_active: 3,
            sessions_created: 5,
            sessions_evicted: 2,
            tracker_rejections: 1,
            venues: vec![
                VenueHealth {
                    venue_id: 0,
                    requests: 60,
                    quality_full: 55,
                    quality_region: 4,
                    quality_predicted: 1,
                    quality_centroid: 1,
                    cache_hits: 60,
                    cache_rebuilds: 0,
                    cache_evictions: 0,
                    resident: true,
                },
                VenueHealth {
                    venue_id: 17,
                    requests: 30,
                    quality_full: 25,
                    quality_region: 3,
                    quality_predicted: 0,
                    quality_centroid: 2,
                    cache_hits: 28,
                    cache_rebuilds: 2,
                    cache_evictions: 2,
                    resident: false,
                },
            ],
            ..ServerHealth::default()
        };
        let bytes = frame_to_vec(&Frame::StatsResponse(health.clone()));
        assert_eq!(
            decode_frame(&bytes).unwrap().0,
            Frame::StatsResponse(health)
        );
    }

    #[test]
    fn pool_counters_are_daemon_local_not_serialized() {
        // The payload-reuse counters must not change the wire image (no
        // version bump): two healths differing only in those fields encode
        // identically, and decoding zeroes them.
        let base = ServerHealth {
            frames_in: 7,
            requests_ok: 5,
            ..ServerHealth::default()
        };
        let with_pool = ServerHealth {
            reply_bytes_encoded: 1234,
            reply_bytes_pooled: 1000,
            pool_hits: 20,
            pool_misses: 2,
            ..base.clone()
        };
        assert_eq!(
            frame_to_vec(&Frame::StatsResponse(base.clone())),
            frame_to_vec(&Frame::StatsResponse(with_pool.clone()))
        );
        let bytes = frame_to_vec(&Frame::StatsResponse(with_pool));
        assert_eq!(decode_frame(&bytes).unwrap().0, Frame::StatsResponse(base));
    }

    #[test]
    fn dispatch_counters_are_daemon_local_not_serialized() {
        // Same no-version-bump discipline as the pool counters: the
        // sharded-dispatch counters must not change the wire image, and
        // decoding zeroes them.
        let base = ServerHealth {
            frames_in: 7,
            requests_ok: 5,
            ..ServerHealth::default()
        };
        let with_dispatch = ServerHealth {
            enqueue_contention: 3,
            queue_steals: 41,
            shard_depth_peak: 9,
            queue_shards: 8,
            ..base.clone()
        };
        assert_eq!(
            frame_to_vec(&Frame::StatsResponse(base.clone())),
            frame_to_vec(&Frame::StatsResponse(with_dispatch.clone()))
        );
        let bytes = frame_to_vec(&Frame::StatsResponse(with_dispatch));
        assert_eq!(decode_frame(&bytes).unwrap().0, Frame::StatsResponse(base));
    }

    #[test]
    fn encode_frame_appends_after_existing_content() {
        // In-place encoding with backpatched length/CRC must compose when
        // several frames share one output buffer (the coalesced reply path).
        let frames = [Frame::StatsRequest, sample_request()];
        let mut joined = Vec::new();
        let mut separate = Vec::new();
        for frame in &frames {
            encode_frame(frame, &mut joined);
            separate.extend_from_slice(&frame_to_vec(frame));
        }
        assert_eq!(joined, separate);
        let (first, n) = decode_frame(&joined).unwrap();
        assert_eq!(first, Frame::StatsRequest);
        assert_eq!(decode_frame(&joined[n..]).unwrap().0, frames[1].clone());
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = frame_to_vec(&sample_request());
        for k in 0..bytes.len() {
            match decode_frame(&bytes[..k]) {
                Err(WireError::Incomplete { needed }) => assert!(needed > 0),
                other => panic!("prefix of {k} bytes decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_version_reserved_type_crc() {
        let bytes = frame_to_vec(&sample_request());
        let mut m = bytes.clone();
        m[0] = b'X';
        assert!(matches!(decode_frame(&m), Err(WireError::BadMagic { .. })));
        let mut v = bytes.clone();
        v[4] = 9;
        assert!(matches!(
            decode_frame(&v),
            Err(WireError::BadVersion { got: 9 })
        ));
        let mut t = bytes.clone();
        t[5] = 200;
        assert!(matches!(
            decode_frame(&t),
            Err(WireError::UnknownFrameType { got: 200 })
        ));
        let mut r = bytes.clone();
        r[6] = 1;
        assert!(matches!(
            decode_frame(&r),
            Err(WireError::BadReserved { got: 1 })
        ));
        let mut c = bytes.clone();
        *c.last_mut().unwrap() ^= 0x40;
        assert!(matches!(decode_frame(&c), Err(WireError::BadCrc { .. })));
    }

    #[test]
    fn oversize_payload_rejected_before_allocation() {
        let mut bytes = frame_to_vec(&Frame::StatsRequest);
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        // A StatsRequest with a non-empty (CRC-correct) payload.
        let payload = [1u8, 2, 3];
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(tag::STATS_REQUEST);
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::TrailingBytes { extra: 3 })
        ));
    }

    #[test]
    fn read_frame_round_trips_over_a_stream() {
        let frame = sample_request();
        let mut stream = Vec::new();
        write_frame(&mut stream, &frame).unwrap();
        write_frame(&mut stream, &Frame::StatsRequest).unwrap();
        let mut r = &stream[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Frame::StatsRequest));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn semantic_validation_rejects_bad_reports() {
        let good = WireReport {
            ap: 1,
            visit: 0,
            x: 1.0,
            y: 2.0,
            burst: vec![WireSnapshot {
                offsets_hz: vec![0.0, 1.0],
                h: vec![(1.0, 0.0), (0.5, 0.5)],
            }],
        };
        assert!(good.to_core().is_ok());

        let mut nan_pos = good.clone();
        nan_pos.x = f64::NAN;
        assert!(nan_pos.to_core().is_err());

        let mut empty_grid = good.clone();
        empty_grid.burst[0].offsets_hz.clear();
        assert!(empty_grid.to_core().is_err());

        let mut descending = good.clone();
        descending.burst[0].offsets_hz = vec![1.0, 0.0];
        assert!(descending.to_core().is_err());

        let mut inf_grid = good.clone();
        inf_grid.burst[0].offsets_hz = vec![0.0, f64::INFINITY];
        assert!(inf_grid.to_core().is_err());

        // v2 hardening: the channel vector itself is validated — an empty
        // or length-mismatched `h` used to sail through to a dsp assert.
        let mut empty_h = good.clone();
        empty_h.burst[0].h.clear();
        assert!(empty_h.to_core().is_err());

        let mut short_h = good.clone();
        short_h.burst[0].h.truncate(1);
        assert!(short_h.to_core().is_err());
    }

    #[test]
    fn all_finite_matches_is_finite_oracle() {
        // The branch-free mask sweep must classify exactly like the
        // short-circuiting is_finite() fold for every special encoding:
        // quiet/signaling NaNs (any sign, any payload), ±Inf, subnormals,
        // zeros, and boundary exponents.
        let specials = [
            0.0f64,
            -0.0,
            1.0,
            -1.0,
            f64::MIN,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0,               // subnormal
            f64::from_bits(1),                     // smallest subnormal
            f64::from_bits(0x7FEF_FFFF_FFFF_FFFF), // largest finite
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7FF0_0000_0000_0001), // signaling NaN
            f64::from_bits(0xFFF8_0000_0000_0000), // negative quiet NaN
            f64::from_bits(0x7FF7_FFFF_FFFF_FFFF),
        ];
        for &a in &specials {
            assert_eq!(all_finite(&[a]), a.is_finite(), "{:#x}", a.to_bits());
            for &b in &specials {
                let xs = [a, b];
                assert_eq!(
                    all_finite(&xs),
                    xs.iter().all(|f| f.is_finite()),
                    "{:#x} {:#x}",
                    a.to_bits(),
                    b.to_bits()
                );
            }
        }
        assert!(all_finite(&[]));
        // Two values whose masked exponents would OR together to the full
        // mask despite both being finite — the case a bitwise OR-fold gets
        // wrong and a per-element compare must get right.
        let half_a = f64::from_bits(0x3FF0_0000_0000_0000); // exponent 0x3FF
        let half_b = f64::from_bits(0x4000_0000_0000_0000); // exponent 0x400
        assert!(all_finite(&[half_a, half_b]));
    }

    #[test]
    fn bulk_decode_preserves_f64_bits_exactly() {
        // The bulk array decode must stay a bit-level transport: NaN
        // payloads, signed zeros, and subnormals survive the round trip
        // unchanged (finiteness policy lives in to_core, not the decoder).
        let snap = WireSnapshot {
            offsets_hz: vec![-0.0, f64::MIN_POSITIVE / 2.0, f64::NAN, f64::INFINITY],
            h: vec![
                (f64::from_bits(0x7FF0_0000_0000_0001), -0.0),
                (f64::NEG_INFINITY, f64::from_bits(1)),
            ],
        };
        let req = Frame::LocateRequest(LocateRequest {
            request_id: 7,
            deadline_us: 0,
            venue_id: 0,
            session_id: 0,
            reports: vec![WireReport {
                ap: 1,
                visit: 2,
                x: 3.0,
                y: 4.0,
                burst: vec![snap.clone()],
            }],
        });
        let mut bytes = Vec::new();
        encode_frame(&req, &mut bytes);
        let (Frame::LocateRequest(got), _) = decode_frame(&bytes).unwrap() else {
            panic!("wrong frame");
        };
        let round = &got.reports[0].burst[0];
        for (a, b) in round.offsets_hz.iter().zip(&snap.offsets_hz) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for ((ar, ai), (br, bi)) in round.h.iter().zip(&snap.h) {
            assert_eq!(ar.to_bits(), br.to_bits());
            assert_eq!(ai.to_bits(), bi.to_bits());
        }
    }

    #[test]
    fn non_finite_classification_unchanged_by_bulk_path() {
        // Regression for the vectorized finiteness pass: a non-finite
        // subcarrier offset is still rejected by to_core with the same
        // message (→ Malformed at the daemon), for every non-finite kind
        // and position; non-finite *channel* values still pass to_core
        // (they are dropped later by PdpReading::try_new, not Malformed).
        let good = WireReport {
            ap: 9,
            visit: 0,
            x: 1.0,
            y: 2.0,
            burst: vec![WireSnapshot {
                offsets_hz: vec![0.0, 1.0, 2.0, 3.0],
                h: vec![(1.0, 0.0); 4],
            }],
        };
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -f64::NAN] {
            for pos in 0..4 {
                let mut r = good.clone();
                r.burst[0].offsets_hz[pos] = bad;
                let err = r.to_core().unwrap_err();
                assert_eq!(err, "AP 9 snapshot 0: non-finite subcarrier offset");
            }
        }
        let mut nan_h = good.clone();
        nan_h.burst[0].h[2] = (f64::NAN, f64::INFINITY);
        assert!(nan_h.to_core().is_ok());
    }

    #[test]
    fn core_report_round_trip_is_bit_exact() {
        let report = CsiReport {
            site: ApSite::nomadic(3, 5, Point::new(0.1 + 0.2, -7.5)),
            burst: vec![CsiSnapshot {
                h: vec![Complex::new(1.0e-3, -2.0e-9), Complex::new(-0.25, 0.75)],
                grid: SubcarrierGrid::new(vec![-1.0, 312_500.0]),
            }],
        };
        let round = WireReport::from_core(&report).to_core().unwrap();
        assert_eq!(round, report);
        assert_eq!(
            round.site.position.x.to_bits(),
            report.site.position.x.to_bits()
        );
    }
}
