//! A minimal readiness-notification layer for the event-driven socket
//! backend: `epoll(7)` on Linux, `poll(2)` on other Unixes.
//!
//! The daemon is std-only by design, and std exposes no readiness API —
//! but it *links* libc, so the handful of symbols needed here
//! (`epoll_create1`/`epoll_ctl`/`epoll_wait`/`close`, or `poll`) are
//! declared directly and resolve at link time. All `unsafe` in the crate
//! is confined to the tiny `sys` module in this file; everything above it
//! is a safe wrapper with owned file descriptors and checked lengths.
//!
//! Level-triggered semantics throughout (the epoll default): an fd with
//! unread input or unflushed-but-writable output keeps reporting ready,
//! so the event loop never needs edge-triggered drain discipline.
//!
//! [`Waker`] is the cross-thread wake-up primitive: a connected
//! `UnixStream` pair used as a self-pipe. Batcher threads write one byte
//! to nudge an event loop blocked in [`Poller::wait`]; the loop drains
//! the read half. No `unsafe` is involved — std's socketpair suffices.

use std::io;
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// What an fd is registered to report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when a read would make progress (includes EOF/hangup).
    pub readable: bool,
    /// Report when a write would make progress.
    pub writable: bool,
}

impl Interest {
    /// Read-readiness only — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// A read would make progress.
    pub readable: bool,
    /// A write would make progress.
    pub writable: bool,
    /// Error or hangup condition — always also treated as readable so the
    /// owner observes the EOF/error through its normal read path.
    pub hangup: bool,
}

/// A readiness selector owning one kernel polling object.
///
/// Registration methods take `&self` (the kernel object carries the
/// state); [`Poller::wait`] takes `&mut self` for its reusable event
/// buffer. One event-loop thread owns each `Poller`.
pub struct Poller {
    inner: imp::Poller,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller").finish_non_exhaustive()
    }
}

impl Poller {
    /// Creates a new selector.
    ///
    /// # Errors
    ///
    /// Forwards the kernel error (e.g. fd exhaustion).
    pub fn new() -> io::Result<Self> {
        Ok(Poller {
            inner: imp::Poller::new()?,
        })
    }

    /// Starts watching `fd`, reporting events with `token`.
    ///
    /// # Errors
    ///
    /// Forwards the kernel error (e.g. an already-registered fd).
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.register(fd, token, interest)
    }

    /// Changes the interest set of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// Forwards the kernel error (e.g. an unregistered fd).
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd, token, interest)
    }

    /// Stops watching `fd`. Must be called *before* the fd is closed.
    ///
    /// # Errors
    ///
    /// Forwards the kernel error.
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        self.inner.deregister(fd)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` = forever), filling `events` (cleared first).
    ///
    /// # Errors
    ///
    /// Forwards the kernel error; `EINTR` is retried internally.
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        self.inner.wait(events, timeout)
    }
}

/// Converts a timeout to whole milliseconds, rounding up so a short
/// positive timeout never becomes a busy-spin zero.
fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            ms.min(i32::MAX as u128) as i32
        }
    }
}

/// Cross-thread wake-up for a poller blocked in [`Poller::wait`]: a
/// `UnixStream` pair used as a self-pipe. Register [`Waker::rx_fd`] with
/// the poller; any thread may call [`Waker::wake`].
#[derive(Debug)]
pub struct Waker {
    tx: UnixStream,
    rx: UnixStream,
}

impl Waker {
    /// Creates the socket pair (both halves nonblocking, so a full pipe
    /// never blocks the waking thread).
    ///
    /// # Errors
    ///
    /// Forwards socketpair/fcntl errors.
    pub fn new() -> io::Result<Self> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        Ok(Waker { tx, rx })
    }

    /// The fd to register for read-readiness.
    pub fn rx_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Nudges the poller. Infallible by design: a full pipe means a wake
    /// is already pending, which is all a wake needs to guarantee.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Consumes pending wake bytes so level-triggered polling quiesces.
    pub fn drain(&self) {
        use std::io::Read;
        let mut sink = [0u8; 256];
        while matches!((&self.rx).read(&mut sink), Ok(n) if n > 0) {}
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    /// The raw epoll syscall surface. The single `unsafe` island of the
    /// crate: fixed-signature FFI onto libc symbols std already links,
    /// with all pointer/length pairs derived from Rust slices.
    #[allow(unsafe_code)]
    mod sys {
        use std::os::raw::c_int;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;
        pub const EPOLLRDHUP: u32 = 0x2000;

        /// Mirrors the kernel UAPI `struct epoll_event`, which is packed
        /// on x86-64 only (`__EPOLL_PACKED`).
        #[cfg(target_arch = "x86_64")]
        #[repr(C, packed)]
        #[derive(Debug, Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        /// Mirrors the kernel UAPI `struct epoll_event` (natural layout
        /// off x86-64).
        #[cfg(not(target_arch = "x86_64"))]
        #[repr(C)]
        #[derive(Debug, Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            fn epoll_create1(flags: c_int) -> c_int;
            fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
            fn close(fd: c_int) -> c_int;
        }

        pub fn create() -> c_int {
            // SAFETY: no pointers; returns an owned fd or -1.
            unsafe { epoll_create1(EPOLL_CLOEXEC) }
        }

        pub fn ctl(epfd: c_int, op: c_int, fd: c_int, ev: Option<&mut EpollEvent>) -> c_int {
            let ptr = ev.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL, permitted since Linux 2.6.9) or
            // a live &mut; the kernel only reads/writes that one struct.
            unsafe { epoll_ctl(epfd, op, fd, ptr) }
        }

        pub fn wait(epfd: c_int, events: &mut [EpollEvent], timeout_ms: c_int) -> c_int {
            // SAFETY: pointer and capacity come from the same live slice.
            unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) }
        }

        pub fn close_fd(fd: c_int) {
            // SAFETY: `fd` is owned by the caller and not used again.
            unsafe {
                close(fd);
            }
        }
    }

    const MAX_EVENTS: usize = 1024;

    pub struct Poller {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    }

    fn mask_of(interest: Interest) -> u32 {
        let mut events = sys::EPOLLRDHUP;
        if interest.readable {
            events |= sys::EPOLLIN;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        events
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            let epfd = sys::create();
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = sys::EpollEvent {
                events: mask_of(interest),
                data: token,
            };
            if sys::ctl(self.epfd, op, fd, Some(&mut ev)) < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            if sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, None) < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let n = loop {
                let n = sys::wait(self.epfd, &mut self.buf, timeout_ms(timeout));
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                let bits = ev.events;
                let hangup = bits & (sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0;
                events.push(Event {
                    token: ev.data,
                    readable: bits & sys::EPOLLIN != 0 || hangup,
                    writable: bits & sys::EPOLLOUT != 0,
                    hangup,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, Event, Interest};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::sync::Mutex;
    use std::time::Duration;

    /// The raw `poll(2)` surface for non-Linux Unixes; same confinement
    /// discipline as the epoll module.
    #[allow(unsafe_code)]
    mod sys {
        use std::os::raw::{c_int, c_short, c_ulong};

        pub const POLLIN: c_short = 0x001;
        pub const POLLOUT: c_short = 0x004;
        pub const POLLERR: c_short = 0x008;
        pub const POLLHUP: c_short = 0x010;

        #[repr(C)]
        #[derive(Debug, Clone, Copy)]
        pub struct PollFd {
            pub fd: c_int,
            pub events: c_short,
            pub revents: c_short,
        }

        extern "C" {
            fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        }

        pub fn poll_fds(fds: &mut [PollFd], timeout_ms: c_int) -> c_int {
            // SAFETY: pointer and length come from the same live slice.
            unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) }
        }
    }

    pub struct Poller {
        /// Registration table, rebuilt into a pollfd array per wait. The
        /// Mutex keeps the registration API `&self` to match epoll; in
        /// practice one loop thread owns the poller.
        table: Mutex<Vec<(RawFd, u64, Interest)>>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Poller {
                table: Mutex::new(Vec::new()),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut table = self.table.lock().unwrap();
            if table.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            table.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut table = self.table.lock().unwrap();
            for slot in table.iter_mut() {
                if slot.0 == fd {
                    *slot = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut table = self.table.lock().unwrap();
            let before = table.len();
            table.retain(|&(f, _, _)| f != fd);
            if table.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(
            &mut self,
            events: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let table: Vec<(RawFd, u64, Interest)> = self.table.lock().unwrap().clone();
            let mut fds: Vec<sys::PollFd> = table
                .iter()
                .map(|&(fd, _, interest)| sys::PollFd {
                    fd,
                    events: {
                        let mut e = 0;
                        if interest.readable {
                            e |= sys::POLLIN;
                        }
                        if interest.writable {
                            e |= sys::POLLOUT;
                        }
                        e
                    },
                    revents: 0,
                })
                .collect();
            let n = loop {
                let n = sys::poll_fds(&mut fds, timeout_ms(timeout));
                if n >= 0 {
                    break n;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            if n == 0 {
                return Ok(());
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(&table) {
                let bits = pfd.revents;
                if bits == 0 {
                    continue;
                }
                let hangup = bits & (sys::POLLERR | sys::POLLHUP) != 0;
                events.push(Event {
                    token,
                    readable: bits & sys::POLLIN != 0 || hangup,
                    writable: bits & sys::POLLOUT != 0,
                    hangup,
                });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    #[test]
    fn waker_wakes_a_blocked_wait() {
        let mut poller = Poller::new().expect("poller");
        let waker = Waker::new().expect("waker");
        poller
            .register(waker.rx_fd(), 7, Interest::READABLE)
            .expect("register waker");
        waker.wake();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        waker.drain();
        // Drained: a zero-timeout wait reports nothing.
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait after drain");
        assert!(events.is_empty(), "waker still readable after drain");
    }

    #[test]
    fn readable_and_writable_readiness_on_a_tcp_pair() {
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (mut server, _) = listener.accept().expect("accept");
        client.set_nonblocking(true).expect("nonblocking");

        let mut poller = Poller::new().expect("poller");
        poller
            .register(
                client.as_raw_fd(),
                1,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .expect("register");

        // An idle connected socket: writable, not readable.
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        let ev = events.iter().find(|e| e.token == 1).expect("event");
        assert!(ev.writable && !ev.readable, "fresh socket: {ev:?}");

        // Data in flight flips it readable.
        server.write_all(b"ping").expect("server write");
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        let ev = events.iter().find(|e| e.token == 1).expect("event");
        assert!(ev.readable, "socket with pending input: {ev:?}");

        // Consume and deregister: no more events for it.
        let mut sink = [0u8; 16];
        let _ = (&client).read(&mut sink).expect("client read");
        poller.deregister(client.as_raw_fd()).expect("deregister");
        poller
            .wait(&mut events, Some(Duration::ZERO))
            .expect("wait after deregister");
        assert!(events.is_empty());
    }

    #[test]
    fn hangup_is_reported_as_readable() {
        use std::os::unix::io::AsRawFd;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let client = TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        let mut poller = Poller::new().expect("poller");
        poller
            .register(client.as_raw_fd(), 3, Interest::READABLE)
            .expect("register");
        drop(server); // peer closes
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        let ev = events.iter().find(|e| e.token == 3).expect("event");
        assert!(
            ev.readable,
            "hangup must surface through the read path: {ev:?}"
        );
    }
}
