//! Blocking admin-plane client: onboard, retire, and list venues over the
//! wire v3 admin frames.
//!
//! Shared by the CLI's `venue` subcommand, the multi-venue loadgen
//! bootstrap, the bench bins, and the integration tests — one client, one
//! behavior. Every operation opens one connection, sends one frame, and
//! reads the single [`VenueAdminResponse`] the daemon answers with: the
//! registry listing after the operation, or a structured error.

use crate::wire::{read_frame, write_frame, Frame, VenueAdminResponse, VenueSummary, WireVenue};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

fn transact(addr: impl ToSocketAddrs, frame: &Frame) -> io::Result<Vec<VenueSummary>> {
    let mut stream = TcpStream::connect(addr)?;
    write_frame(&mut stream, frame)?;
    match read_frame(&mut stream)? {
        Some(Frame::VenueAdminResponse(VenueAdminResponse { outcome })) => outcome.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{}: {}", e.code, e.message),
            )
        }),
        Some(other) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected VenueAdminResponse, got {other:?}"),
        )),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "daemon closed the connection before replying",
        )),
    }
}

/// Onboards (or replaces) a venue; returns the registry listing after.
///
/// # Errors
///
/// Connection/protocol failures, or the daemon's structured rejection
/// (reserved id, degenerate boundary) as [`io::ErrorKind::InvalidInput`].
pub fn onboard(addr: impl ToSocketAddrs, venue: &WireVenue) -> io::Result<Vec<VenueSummary>> {
    transact(addr, &Frame::VenueOnboard(venue.clone()))
}

/// Retires a venue by id; returns the registry listing after.
///
/// # Errors
///
/// As [`onboard`]; retiring venue 0 or an unknown venue is rejected.
pub fn retire(addr: impl ToSocketAddrs, venue_id: u64) -> io::Result<Vec<VenueSummary>> {
    transact(addr, &Frame::VenueRetire(venue_id))
}

/// Lists the registry.
///
/// # Errors
///
/// Connection or protocol failures.
pub fn list(addr: impl ToSocketAddrs) -> io::Result<Vec<VenueSummary>> {
    transact(addr, &Frame::VenueList)
}
