//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Every wire frame carries a CRC over its payload so that corruption —
//! a flipped bit on a flaky link, a desynchronised stream — is detected
//! before the payload is interpreted. A CSI request payload runs to tens
//! of kilobytes, so the checksum sits squarely on the serving hot path:
//! the main entry point is slicing-by-8 (eight compile-time tables, eight
//! payload bytes folded per iteration), which retires roughly an order of
//! magnitude more bytes per cycle than the classic byte-at-a-time loop.
//! The byte-wise form is retained as [`crc32_bytewise`] — it is the
//! equivalence oracle for the sliced kernel and the baseline the serving
//! benchmark compares against.

/// Slicing-by-8 lookup tables: `TABLES[0]` is the classic reflected
/// byte table; `TABLES[j][b]` advances the CRC of byte `b` through `j`
/// additional zero bytes, letting eight bytes fold in one step.
const TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            tables[j][i] = tables[0][(tables[j - 1][i] & 0xFF) as usize] ^ (tables[j - 1][i] >> 8);
            i += 1;
        }
        j += 1;
    }
    tables
}

/// CRC-32 (IEEE) of `data`: init `0xFFFFFFFF`, final XOR `0xFFFFFFFF`.
///
/// Slicing-by-8: folds eight bytes per iteration through the precomputed
/// tables, with the byte-wise loop finishing the tail. Bit-identical to
/// [`crc32_bytewise`] for every input.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// The classic byte-at-a-time reflected table-driven CRC-32.
///
/// Retained as the equivalence oracle for [`crc32`] and as the serving
/// benchmark's pre-optimization baseline.
pub fn crc32_bytewise(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32_bytewise(b""), 0);
    }

    #[test]
    fn sliced_matches_bytewise_at_every_length_and_alignment() {
        // Pseudo-random buffer; check every length 0..=64 (covers all
        // chunk/remainder splits) and every start offset up to 8 (covers
        // all alignments of the 8-byte folding loop).
        let data: Vec<u8> = (0u32..96)
            .map(|i| (i.wrapping_mul(2_654_435_761).rotate_left(7) & 0xFF) as u8)
            .collect();
        for start in 0..8 {
            for len in 0..=64 {
                let slice = &data[start..start + len];
                assert_eq!(
                    crc32(slice),
                    crc32_bytewise(slice),
                    "divergence at start {start} len {len}"
                );
            }
        }
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = crc32(b"nomloc wire frame payload");
        let mut corrupted = *b"nomloc wire frame payload";
        for i in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
                corrupted[i] ^= 1 << bit;
            }
        }
    }
}
