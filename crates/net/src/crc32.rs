//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! Every wire frame carries a CRC over its payload so that corruption —
//! a flipped bit on a flaky link, a desynchronised stream — is detected
//! before the payload is interpreted. The table is built at compile time;
//! the per-byte loop is the classic reflected table-driven form.

/// Reflected CRC-32 lookup table, one entry per byte value.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `data`: init `0xFFFFFFFF`, final XOR `0xFFFFFFFF`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The standard CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let base = crc32(b"nomloc wire frame payload");
        let mut corrupted = *b"nomloc wire frame payload";
        for i in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
                corrupted[i] ^= 1 << bit;
            }
        }
    }
}
