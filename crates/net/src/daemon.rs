//! The `nomloc-net` serving daemon: event-driven (or thread-per-
//! connection) TCP socket layer, cross-connection micro-batching,
//! admission control, deadlines, and graceful drain.
//!
//! Threading model (all `std`, no async runtime), with the default
//! event-loop socket backend:
//!
//! ```text
//!  event loop 0 ─ owns conns ┐  ┌ shard 0 ─▶ batcher 0 ┐
//!  event loop 1 ─ owns conns ┼─▶┤ shard 1 ─▶ batcher 1 ┼─▶ process_batch
//!      …          (epoll)    ┘  │    …    ⤢ steal    … │    └▶ reply →
//!                               └ shard N-1 ───────────┘  bounded per-conn
//!                      venue→shard fib hash;              buffer, flushed
//!                      park/unpark wakeups                by owning loop
//! ```
//!
//! * **Socket backends** ([`SocketBackend`]): the default `EventLoop`
//!   backend runs `event_loops` readiness-driven threads (see
//!   [`crate::poll`]), each owning nonblocking connections; the
//!   `Threaded` backend keeps the original sharded-acceptor,
//!   thread-per-connection model. The serving contract is identical —
//!   the loopback/chaos/daemon suites run against both.
//! * **Connection readers** (a loop iteration or a reader thread) parse
//!   frames incrementally with [`crate::wire::StreamDecoder`]; a
//!   protocol violation (bad magic, CRC, version…) answers with a
//!   `Malformed` reply for request id 0 and closes the connection.
//! * **Cross-connection micro-batching**: readers push decoded requests
//!   into the dispatch plane (see [`dispatch`]) — `queue_shards`
//!   venue-affine shard queues by default, or the legacy single global
//!   queue with `--queue-shards 1`; `batchers` threads pop
//!   venue-homogeneous batches of up to `max_batch` requests, waiting at
//!   most `max_wait` — requests from *different* connections land in the
//!   same `LocalizationServer::process_batch` call.
//! * **Admission control**: when the plane holds `queue_capacity`
//!   requests (a global bound, regardless of sharding), new arrivals are
//!   answered `Overloaded` immediately instead of buffering without
//!   bound.
//! * **Deadlines**: a request carrying `deadline_us > 0` that ages past
//!   it while queued is answered `DeadlineExceeded` and never solved.
//! * **Graceful drain**: [`DaemonHandle::shutdown`] stops the acceptors
//!   and readers, then lets the batchers empty the queue — every admitted
//!   request is answered — before joining all threads.

use crate::pool::BufferPool;
use crate::registry::{RegistryReader, ResolveError, VenueEntry, VenueRegistry};
use crate::sessions::{SessionConfig, SessionTable, SessionView, PREDICTED_ERROR_WIDENING};
use crate::wire::{
    self, ErrorCode, ErrorReply, Frame, LocateResponse, ServerHealth, StreamDecoder,
    VenueAdminResponse, WireError, WireEstimate, WireSession,
};
use nomloc_core::server::CsiReport;
use nomloc_core::stats::{PipelineStats, StatsSnapshot};
use nomloc_core::{EstimateQuality, LocalizationServer};
use nomloc_faults::{FaultClass, FaultPlan};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

mod dispatch;
#[cfg(unix)]
mod event;

/// How long blocked reads and condvar waits sleep between checks of the
/// shutdown flag — bounds shutdown latency, not throughput.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Which socket layer carries connections between the kernel and the
/// micro-batcher queue. Everything above the sockets — wire semantics,
/// admission, deadlines, batching, degradation, drain — is identical;
/// the parameterized test suites run against both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketBackend {
    /// Sharded blocking acceptors plus one reader thread per connection.
    /// Simple and portable; collapses at tens of thousands of mostly-idle
    /// connections (one OS thread each).
    Threaded,
    /// `event_loops` readiness-driven threads (epoll on Linux, `poll(2)`
    /// elsewhere on Unix) owning every connection nonblockingly, with
    /// bounded per-connection write buffers and slow-reader eviction.
    /// Holds 10k+ mostly-idle connections at a few hundred bytes each.
    EventLoop,
}

impl Default for SocketBackend {
    /// `EventLoop` where the poll layer exists (Unix), else `Threaded`.
    fn default() -> Self {
        if cfg!(unix) {
            SocketBackend::EventLoop
        } else {
            SocketBackend::Threaded
        }
    }
}

impl SocketBackend {
    /// Parses the CLI spelling (`"threaded"` / `"event-loop"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threaded" => Some(SocketBackend::Threaded),
            "event-loop" | "event_loop" | "eventloop" => Some(SocketBackend::EventLoop),
            _ => None,
        }
    }
}

impl std::fmt::Display for SocketBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SocketBackend::Threaded => "threaded",
            SocketBackend::EventLoop => "event-loop",
        })
    }
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Acceptor threads sharing the listening socket.
    pub acceptors: usize,
    /// Batcher threads popping micro-batches off the admission queue.
    pub batchers: usize,
    /// Flush a micro-batch as soon as it reaches this many requests.
    pub max_batch: usize,
    /// …or once this much time has passed since its first request.
    pub max_wait: Duration,
    /// Admission-queue capacity; arrivals beyond it get `Overloaded`.
    /// A *global* bound: the sharded plane enforces it with one atomic
    /// gauge across all shards.
    pub queue_capacity: usize,
    /// Shard count of the venue-affine dispatch plane. `1` selects the
    /// legacy single global queue (the A/B correctness oracle for the
    /// sharded layout); higher values spread venues over that many
    /// lock-light shard queues by fibonacci hash.
    pub queue_shards: usize,
    /// Artificial pause before each batch solve. Zero in production; the
    /// overload tests use it to throttle the drain rate deterministically.
    pub batch_pause: Duration,
    /// Server-side fault plan. Only the `InjectPanic` class acts here: a
    /// request the plan classifies as `InjectPanic` panics inside the
    /// batch solve, exercising the `catch_unwind` isolation path.
    pub fault_plan: Option<FaultPlan>,
    /// Chaos knob: kill a batcher thread after it pops every Nth batch
    /// (globally counted); 0 = never. The dying batcher requeues its
    /// batch at the queue front, so no admitted request is lost, and the
    /// watchdog respawns a replacement (counted in `batchers_respawned`).
    pub kill_batcher_every: u64,
    /// Which socket layer carries connections (see [`SocketBackend`]).
    pub socket_backend: SocketBackend,
    /// Event-loop threads for the `EventLoop` backend (ignored by
    /// `Threaded`). Connections are pinned to the loop that accepted
    /// them.
    pub event_loops: usize,
    /// Per-connection outbound buffer cap for the `EventLoop` backend: a
    /// connection whose peer stops reading is evicted once its unflushed
    /// replies exceed this many bytes (`slow_readers_evicted` in the
    /// health snapshot), instead of buffering without bound.
    pub write_buffer_cap: usize,
    /// Memory budget for resident venue caches
    /// ([`nomloc_core::cache::VenueCache::approx_bytes`] summed over the
    /// registry); 0 = unlimited. Cold venues beyond it are LRU-evicted
    /// and rebuilt bit-identically on their next request.
    pub venue_budget_bytes: usize,
    /// Idle time after which a session (a request stream sharing a v4
    /// `session_id`) is evicted from the session table.
    pub session_ttl: Duration,
    /// Lock shards of the session table.
    pub session_shards: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            acceptors: 2,
            batchers: 2,
            max_batch: 32,
            max_wait: Duration::from_micros(500),
            queue_capacity: 1024,
            queue_shards: 8,
            batch_pause: Duration::ZERO,
            fault_plan: None,
            kill_batcher_every: 0,
            socket_backend: SocketBackend::default(),
            event_loops: 2,
            write_buffer_cap: 1 << 20,
            venue_budget_bytes: 0,
            session_ttl: Duration::from_secs(60),
            session_shards: 16,
        }
    }
}

/// Network-layer counters (the pipeline-layer ones live in
/// `nomloc_core::stats::PipelineStats`, shared via the wrapped server).
#[derive(Debug, Default)]
struct NetCounters {
    connections_accepted: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    protocol_errors: AtomicU64,
    requests_enqueued: AtomicU64,
    requests_ok: AtomicU64,
    requests_failed: AtomicU64,
    /// Every `LocateResponse` sent, regardless of outcome — the daemon's
    /// progress meter for `--max-requests` style run bounds.
    responses_sent: AtomicU64,
    /// Requests answered `Internal` because their solve panicked.
    requests_internal: AtomicU64,
    /// Batch solves that panicked and fell back to per-request isolation.
    batch_panics: AtomicU64,
    /// Batcher threads the watchdog found dead and replaced.
    batchers_respawned: AtomicU64,
    /// Batches popped across all batchers — drives `kill_batcher_every`.
    batches_popped: AtomicU64,
    /// Event-loop connections evicted for overflowing their bounded
    /// outbound write buffer (a peer that stopped reading).
    slow_readers_evicted: AtomicU64,
    /// Finished per-connection reader threads reaped opportunistically
    /// by the threaded backend's acceptors (satellite of the shutdown
    /// join, which drains the remainder).
    conn_threads_reaped: AtomicU64,
}

/// One admitted request waiting for a batcher.
struct Pending {
    request_id: u64,
    venue: u64,
    /// v4 session id; 0 = stateless.
    session: u64,
    reports: Vec<CsiReport>,
    admitted_at: Instant,
    deadline: Option<Duration>,
    writer: Arc<ConnWriter>,
}

/// The write half of a connection, backend-agnostic: batchers hand every
/// encoded reply to [`ConnWriter::send`] and never touch a socket type
/// directly, so `solve_and_reply` (including its `Arc::ptr_eq` write
/// coalescing) is identical across backends.
enum ConnWriter {
    /// Threaded backend: blocking writes under a lock, so concurrent
    /// replies interleave as whole frames.
    Direct(Mutex<TcpStream>),
    /// Event-loop backend: appends to a bounded per-connection buffer
    /// flushed by the owning loop on write-readiness.
    #[cfg(unix)]
    Queued(event::QueuedSink),
}

impl ConnWriter {
    /// Sends (or queues) one or more whole encoded frames. Returns
    /// whether the bytes were accepted — a closed peer or an evicted
    /// slow reader returns `false`, which callers treat exactly like the
    /// threaded backend treats a failed `write_all`: the client's loss.
    fn send(&self, bytes: &[u8]) -> bool {
        match self {
            ConnWriter::Direct(stream) => stream.lock().unwrap().write_all(bytes).is_ok(),
            #[cfg(unix)]
            ConnWriter::Queued(sink) => sink.send(bytes),
        }
    }
}

struct Shared {
    /// The venue map; venue 0 is the server `spawn` was given. Batchers
    /// resolve the server per micro-batch through per-thread readers.
    registry: Arc<VenueRegistry>,
    /// The daemon-wide pipeline counters (venue 0's instance, shared by
    /// every per-venue server the registry builds).
    stats: Arc<PipelineStats>,
    config: DaemonConfig,
    /// The admission/dispatch plane: sharded venue-affine queues, or the
    /// single-queue oracle when `queue_shards <= 1`.
    dispatch: dispatch::Dispatch,
    /// The batching parameters `dispatch` needs, copied out of `config`
    /// once at spawn.
    dispatch_config: dispatch::DispatchConfig,
    shutting_down: AtomicBool,
    /// Second shutdown phase (event-loop backend): every batcher is
    /// joined and every reply queued — loops flush their remaining
    /// outbound bytes and exit.
    drain_flush: AtomicBool,
    net: NetCounters,
    /// The session plane. Owned here — OUTSIDE the batcher threads — so
    /// per-batch `catch_unwind` panics and watchdog batcher respawn
    /// never lose or corrupt a session: trackers resume bit-identically.
    /// `Arc` so the chaos harness can hold the table across the daemon's
    /// lifetime and force TTL races.
    sessions: Arc<SessionTable>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Reusable `Vec<u8>` backing stores for reply-frame encoding, shared
    /// by readers and batchers. Hit/miss and byte counters surface through
    /// `PipelineStats` → `ServerHealth` (daemon-local display only).
    pool: BufferPool,
}

/// The running socket layer's thread handles, by backend.
enum SocketLayer {
    Threaded {
        acceptors: Vec<JoinHandle<()>>,
    },
    #[cfg(unix)]
    Event {
        threads: Vec<JoinHandle<()>>,
        loops: Vec<Arc<event::LoopShared>>,
    },
}

/// Handle to a running daemon: address, live stats, graceful shutdown.
pub struct DaemonHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    sockets: SocketLayer,
    /// Owns the batcher handles; respawns dead batchers until shutdown,
    /// then drains the queue and joins them.
    watchdog: JoinHandle<()>,
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DaemonHandle")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

/// Spawns the daemon around `server`, listening on `addr`
/// (e.g. `"127.0.0.1:0"` for an ephemeral port).
///
/// # Errors
///
/// Forwards socket errors from binding or cloning the listener.
pub fn spawn<A: ToSocketAddrs>(
    server: LocalizationServer,
    config: DaemonConfig,
    addr: A,
) -> io::Result<DaemonHandle> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    if config.fault_plan.is_some() {
        install_quiet_panic_hook();
    }
    let resident = Arc::new(server);
    let stats = resident.stats_arc();
    let workers = resident.workers();
    let registry = Arc::new(VenueRegistry::new(
        resident,
        "resident",
        workers,
        config.venue_budget_bytes,
    ));
    let shared = Arc::new(Shared {
        registry,
        stats,
        dispatch: dispatch::Dispatch::new(config.queue_shards, config.batchers.max(1)),
        dispatch_config: dispatch::DispatchConfig {
            max_batch: config.max_batch,
            max_wait: config.max_wait,
            queue_capacity: config.queue_capacity,
        },
        config: config.clone(),
        shutting_down: AtomicBool::new(false),
        drain_flush: AtomicBool::new(false),
        net: NetCounters::default(),
        sessions: Arc::new(SessionTable::new(SessionConfig {
            ttl: config.session_ttl,
            shards: config.session_shards,
        })),
        conn_threads: Mutex::new(Vec::new()),
        // Enough idle buffers for every reader and batcher to hold one
        // while others are checked out; excess returns are dropped.
        pool: BufferPool::new(64),
    });

    let sockets = match config.socket_backend {
        SocketBackend::Threaded => {
            let mut acceptors = Vec::with_capacity(config.acceptors.max(1));
            for _ in 0..config.acceptors.max(1) {
                let listener = listener.try_clone()?;
                let shared = Arc::clone(&shared);
                acceptors.push(std::thread::spawn(move || accept_loop(&shared, &listener)));
            }
            SocketLayer::Threaded { acceptors }
        }
        SocketBackend::EventLoop => spawn_event_layer(&shared, &listener)?,
    };

    let mut batchers = Vec::with_capacity(config.batchers.max(1));
    for idx in 0..config.batchers.max(1) {
        batchers.push(spawn_batcher(&shared, idx));
    }
    let watchdog = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || watchdog_loop(&shared, batchers))
    };

    Ok(DaemonHandle {
        shared,
        local_addr,
        sockets,
        watchdog,
    })
}

#[cfg(unix)]
fn spawn_event_layer(shared: &Arc<Shared>, listener: &TcpListener) -> io::Result<SocketLayer> {
    let (threads, loops) = event::spawn_loops(shared, listener)?;
    Ok(SocketLayer::Event { threads, loops })
}

#[cfg(not(unix))]
fn spawn_event_layer(_shared: &Arc<Shared>, _listener: &TcpListener) -> io::Result<SocketLayer> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "the event-loop socket backend needs a Unix readiness API; use SocketBackend::Threaded",
    ))
}

fn spawn_batcher(shared: &Arc<Shared>, idx: usize) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::spawn(move || batcher_loop(&shared, idx))
}

/// Supervises the batcher pool: any batcher that dies (the
/// `kill_batcher_every` chaos knob, or a panic that escapes the batch
/// guard) is joined and replaced, so the pool never shrinks permanently.
/// At shutdown it joins the pool and then drains whatever a dying batcher
/// requeued, preserving the every-admitted-request-is-answered contract.
fn watchdog_loop(shared: &Arc<Shared>, mut batchers: Vec<JoinHandle<()>>) {
    while !shared.shutting_down.load(Ordering::Acquire) {
        for (idx, slot) in batchers.iter_mut().enumerate() {
            if slot.is_finished() && !shared.shutting_down.load(Ordering::Acquire) {
                // Respawn into the same slot index, so the replacement
                // inherits the dead batcher's shard affinity and parking
                // slot (it re-registers its own thread handle on entry).
                let dead = std::mem::replace(slot, spawn_batcher(shared, idx));
                let _ = dead.join();
                shared
                    .net
                    .batchers_respawned
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        // Eager TTL pass so idle sessions don't linger until their next
        // (never-coming) request. Lazy expiry on access still backstops
        // sessions touched between sweeps.
        shared.sessions.sweep(Instant::now());
        std::thread::sleep(POLL_INTERVAL);
    }
    shared.dispatch.wake_all();
    for h in batchers {
        let _ = h.join();
    }
    // A batcher that killed itself after the shutdown flag was set leaves
    // its requeued batch behind with nobody to respawn for it — answer it
    // here (single-threaded: every batcher is joined, so requeue races
    // are over). `next_batch` returns `false` once the plane is truly
    // empty.
    let mut scratch = BatcherScratch::default();
    while next_batch(shared, 0, &mut scratch) {
        solve_and_reply(shared, &mut scratch);
    }
}

/// Pops the next venue-homogeneous micro-batch into `scratch.batch`
/// through the dispatch plane. Returns `false` when the plane is empty
/// and the daemon is shutting down.
fn next_batch(shared: &Shared, batcher: usize, scratch: &mut BatcherScratch) -> bool {
    shared.dispatch.next_batch(
        batcher,
        &mut scratch.batch,
        &shared.dispatch_config,
        || shared.shutting_down.load(Ordering::Acquire),
        &shared.stats,
    )
}

/// Payload type for deliberately injected panics, so the process-global
/// panic hook can stay silent about them (they are always caught by the
/// batch guard) while real panics keep their usual report.
struct InjectedPanic(#[allow(dead_code)] u64);

fn install_quiet_panic_hook() {
    static QUIET_HOOK: std::sync::Once = std::sync::Once::new();
    QUIET_HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<InjectedPanic>() {
                return;
            }
            previous(info);
        }));
    });
}

impl DaemonHandle {
    /// The address the daemon is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total `LocateResponse` frames sent so far (any outcome).
    pub fn responses_sent(&self) -> u64 {
        self.shared.net.responses_sent.load(Ordering::Relaxed)
    }

    /// Snapshot of the wrapped server's pipeline stats (aggregated across
    /// every venue — the registry's servers share one instance).
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The venue registry, for in-process onboarding (the CLI's loopback
    /// modes and the bench bins use the TCP admin plane instead when they
    /// want to exercise the wire).
    pub fn registry(&self) -> &Arc<VenueRegistry> {
        &self.shared.registry
    }

    /// Combined network + pipeline health snapshot (the payload of a
    /// `StatsResponse` frame).
    pub fn health(&self) -> ServerHealth {
        health_of(&self.shared)
    }

    /// The session table, shared with the daemon. The chaos harness
    /// holds this to force-expire sessions (a TTL race you can schedule);
    /// it stays valid across batcher panics and respawns by construction.
    pub fn sessions(&self) -> Arc<SessionTable> {
        Arc::clone(&self.shared.sessions)
    }

    /// Connections evicted so far for overflowing their bounded outbound
    /// write buffer (event-loop backend; always 0 on threaded).
    pub fn slow_readers_evicted(&self) -> u64 {
        self.shared.net.slow_readers_evicted.load(Ordering::Relaxed)
    }

    /// Per-connection reader threads not yet reaped (threaded backend
    /// only; the event-loop backend spawns none). Acceptors join
    /// finished readers opportunistically, so this tracks *live*
    /// connections plus at most the few finished since the last accept.
    pub fn live_conn_threads(&self) -> usize {
        self.shared.conn_threads.lock().unwrap().len()
    }

    /// Graceful drain: stop accepting, let readers wind down, answer every
    /// admitted request, then join all threads. Returns the final health.
    pub fn shutdown(self) -> ServerHealth {
        let DaemonHandle {
            shared,
            local_addr,
            sockets,
            watchdog,
        } = self;
        shared.shutting_down.store(true, Ordering::Release);
        match sockets {
            SocketLayer::Threaded { acceptors } => {
                // Unblock acceptors parked in accept(2) with dummy
                // connections.
                for _ in &acceptors {
                    let _ = TcpStream::connect(local_addr);
                }
                for h in acceptors {
                    let _ = h.join();
                }
                // No new connection threads can start now; readers notice
                // the flag within one poll interval.
                let conns: Vec<JoinHandle<()>> =
                    std::mem::take(&mut *shared.conn_threads.lock().unwrap());
                for h in conns {
                    let _ = h.join();
                }
                // The watchdog joins the batchers, which drain the plane
                // and exit on (empty && shutting_down), then drains any
                // kill-requeued tail.
                shared.dispatch.wake_all();
                let _ = watchdog.join();
            }
            #[cfg(unix)]
            SocketLayer::Event { threads, loops } => {
                // Phase one: wake every loop so it deregisters its
                // listener and stops consuming input; batchers drain the
                // admitted queue, queueing replies onto the per-connection
                // buffers, which the loops keep flushing meanwhile.
                for l in &loops {
                    l.wake();
                }
                shared.dispatch.wake_all();
                let _ = watchdog.join();
                // Phase two: every reply is queued — tell the loops to
                // flush their remaining outbound bytes and exit, so
                // "every admitted request is answered" holds on the wire.
                shared.drain_flush.store(true, Ordering::Release);
                for l in &loops {
                    l.wake();
                }
                for h in threads {
                    let _ = h.join();
                }
            }
        }
        health_of(&shared)
    }
}

fn health_of(shared: &Shared) -> ServerHealth {
    let net = &shared.net;
    let snap = shared.stats.snapshot();
    ServerHealth {
        connections_accepted: net.connections_accepted.load(Ordering::Relaxed),
        frames_in: net.frames_in.load(Ordering::Relaxed),
        frames_out: net.frames_out.load(Ordering::Relaxed),
        protocol_errors: net.protocol_errors.load(Ordering::Relaxed),
        requests_enqueued: net.requests_enqueued.load(Ordering::Relaxed),
        rejected_overload: snap.counters.queue_rejected,
        deadline_missed: snap.counters.deadline_missed,
        batches_formed: snap.counters.batches_dispatched,
        queue_depth_peak: snap.counters.queue_depth_peak,
        batch_size_p50: snap.batch_sizes.quantile_upper_bound(0.50),
        batch_size_max: snap.batch_sizes.quantile_upper_bound(1.0),
        requests_ok: net.requests_ok.load(Ordering::Relaxed),
        requests_failed: net.requests_failed.load(Ordering::Relaxed),
        solve_p50_ns: snap.solve_latency.quantile_upper_bound_ns(0.50),
        solve_p95_ns: snap.solve_latency.quantile_upper_bound_ns(0.95),
        solve_p99_ns: snap.solve_latency.quantile_upper_bound_ns(0.99),
        requests_internal: net.requests_internal.load(Ordering::Relaxed),
        batch_panics: net.batch_panics.load(Ordering::Relaxed),
        batchers_respawned: net.batchers_respawned.load(Ordering::Relaxed),
        quality_full: snap.counters.quality_full,
        quality_region: snap.counters.quality_region,
        quality_predicted: snap.counters.quality_predicted,
        quality_centroid: snap.counters.quality_centroid,
        sessions_active: shared.sessions.active(),
        sessions_created: shared.sessions.created(),
        sessions_evicted: shared.sessions.evicted(),
        tracker_rejections: shared.sessions.rejections(),
        reply_bytes_encoded: snap.counters.reply_bytes_encoded,
        reply_bytes_pooled: snap.counters.reply_bytes_pooled,
        pool_hits: snap.counters.pool_hits,
        pool_misses: snap.counters.pool_misses,
        slow_readers_evicted: net.slow_readers_evicted.load(Ordering::Relaxed),
        enqueue_contention: snap.counters.enqueue_contention,
        queue_steals: snap.counters.queue_steals,
        shard_depth_peak: snap.counters.shard_depth_peak,
        queue_shards: shared.config.queue_shards.max(1) as u64,
        venues: shared.registry.health(),
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return; // the wake-up connection from shutdown()
                }
                shared
                    .net
                    .connections_accepted
                    .fetch_add(1, Ordering::Relaxed);
                let shared_conn = Arc::clone(shared);
                let handle = std::thread::spawn(move || conn_loop(&shared_conn, stream));
                let mut conns = shared.conn_threads.lock().unwrap();
                // Opportunistic reap: join readers that already finished
                // so a long-lived daemon holds handles proportional to
                // *live* connections, not to connections ever accepted.
                // (Joining a finished thread returns immediately.)
                let mut i = 0;
                while i < conns.len() {
                    if conns[i].is_finished() {
                        let _ = conns.swap_remove(i).join();
                        shared
                            .net
                            .conn_threads_reaped
                            .fetch_add(1, Ordering::Relaxed);
                    } else {
                        i += 1;
                    }
                }
                conns.push(handle);
            }
            Err(_) => {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                // Transient accept error (e.g. EMFILE): back off briefly.
                std::thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

/// Sends one reply frame, bumping the response counters. The frame is
/// encoded into a pooled buffer (returned afterwards), so steady-state
/// replies reuse backing stores instead of allocating. Write errors are
/// swallowed: the client hung up, which is its prerogative.
fn reply(shared: &Shared, writer: &ConnWriter, response: LocateResponse) {
    let ok = response.outcome.is_ok();
    let frame = Frame::LocateResponse(response);
    let (mut bytes, reused) = shared.pool.get();
    wire::encode_frame(&frame, &mut bytes);
    shared.stats.record_reply_encode(bytes.len() as u64, reused);
    let sent = writer.send(&bytes);
    shared.pool.put(bytes);
    if sent {
        shared.net.frames_out.fetch_add(1, Ordering::Relaxed);
    }
    shared.net.responses_sent.fetch_add(1, Ordering::Relaxed);
    if ok {
        shared.net.requests_ok.fetch_add(1, Ordering::Relaxed);
    }
}

/// Answers a request whose version byte we cannot serve with a clean
/// [`ErrorCode::UnsupportedVersion`] reply on the *client's* dialect
/// (see [`wire::unsupported_version_reply`]), then the caller closes.
fn version_reject(shared: &Shared, writer: &ConnWriter, got: u8) {
    let bytes = wire::unsupported_version_reply(got);
    if writer.send(&bytes) {
        shared.net.frames_out.fetch_add(1, Ordering::Relaxed);
    }
    shared.net.responses_sent.fetch_add(1, Ordering::Relaxed);
}

fn error_reply(request_id: u64, code: ErrorCode, message: impl Into<String>) -> LocateResponse {
    LocateResponse {
        request_id,
        outcome: Err(ErrorReply {
            code,
            message: message.into(),
        }),
    }
}

fn conn_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(ConnWriter::Direct(Mutex::new(w))),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut decoder = StreamDecoder::new();
    let mut tmp = [0u8; 64 * 1024];
    loop {
        // Drain every complete frame currently buffered.
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    if handle_frame(shared, &writer, frame).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(WireError::BadVersion { got }) => {
                    // Version mismatch: answer on the client's dialect so
                    // its old decoder sees a structured reject, then close.
                    shared.net.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    version_reject(shared, &writer, got);
                    return;
                }
                Err(e) => {
                    // Protocol violation: tell the client why, then close.
                    shared.net.protocol_errors.fetch_add(1, Ordering::Relaxed);
                    reply(
                        shared,
                        &writer,
                        error_reply(0, ErrorCode::Malformed, e.to_string()),
                    );
                    return;
                }
            }
        }
        match stream.read(&mut tmp) {
            Ok(0) => return, // client closed cleanly
            Ok(n) => decoder.extend(&tmp[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handles one decoded frame. `Err(())` closes the connection.
fn handle_frame(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, frame: Frame) -> Result<(), ()> {
    shared.net.frames_in.fetch_add(1, Ordering::Relaxed);
    match frame {
        Frame::LocateRequest(req) => {
            let request_id = req.request_id;
            let reports = match req.to_core_reports() {
                Ok(reports) => reports,
                Err(msg) => {
                    // Validation failure (corrupt CSI, bad payload). A
                    // warm session can still answer: extrapolate from the
                    // motion model at the `Predicted` tier — explicitly
                    // widened error bound — instead of a hard error.
                    if let Some(response) =
                        predicted_fallback(shared, request_id, req.venue_id, req.session_id)
                    {
                        reply(shared, writer, response);
                        return Ok(());
                    }
                    // Semantic failure: an error for THIS request only.
                    reply(
                        shared,
                        writer,
                        error_reply(request_id, ErrorCode::Malformed, msg),
                    );
                    return Ok(());
                }
            };
            let deadline =
                (req.deadline_us > 0).then(|| Duration::from_micros(req.deadline_us as u64));
            // Venue existence is checked at batch-resolution time, not
            // admission: the reader path stays registry-free (no reader
            // handle per connection), and an unknown venue answers
            // `UnknownVenue` from the batcher.
            let pending = Pending {
                request_id,
                venue: req.venue_id,
                session: req.session_id,
                reports,
                admitted_at: Instant::now(),
                deadline,
                writer: Arc::clone(writer),
            };
            match shared.dispatch.admit(
                pending,
                shared.shutting_down.load(Ordering::Acquire),
                &shared.dispatch_config,
                &shared.stats,
            ) {
                Ok(()) => {
                    shared.net.requests_enqueued.fetch_add(1, Ordering::Relaxed);
                }
                Err(rejected) => {
                    shared.stats.record_overload();
                    reply(
                        shared,
                        &rejected.writer,
                        error_reply(
                            rejected.request_id,
                            ErrorCode::Overloaded,
                            "admission queue full",
                        ),
                    );
                }
            }
            Ok(())
        }
        Frame::StatsRequest => {
            let health = health_of(shared);
            send_admin_frame(shared, writer, &Frame::StatsResponse(health));
            Ok(())
        }
        // Admin plane: rare, so the registry's publisher lock is fine
        // here. Every admin frame is answered with the listing-or-error
        // response; the connection stays open for more frames.
        Frame::VenueOnboard(venue) => {
            let result = shared
                .registry
                .onboard(venue)
                .map_err(|m| (ErrorCode::Malformed, m));
            send_admin_response(shared, writer, result);
            Ok(())
        }
        Frame::VenueRetire(venue_id) => {
            let code = if venue_id == 0 {
                ErrorCode::Malformed
            } else {
                ErrorCode::UnknownVenue
            };
            let result = shared.registry.retire(venue_id).map_err(|m| (code, m));
            if result.is_ok() {
                // A retired venue's sessions are dead state: drop them so
                // a later venue-id reuse can never resume a stale track.
                shared.sessions.retire_venue(venue_id);
            }
            send_admin_response(shared, writer, result);
            Ok(())
        }
        Frame::VenueList => {
            send_admin_response(shared, writer, Ok(()));
            Ok(())
        }
        // Clients must not send response frames; treat as protocol error.
        Frame::LocateResponse(_) | Frame::StatsResponse(_) | Frame::VenueAdminResponse(_) => {
            shared.net.protocol_errors.fetch_add(1, Ordering::Relaxed);
            reply(
                shared,
                writer,
                error_reply(
                    0,
                    ErrorCode::Malformed,
                    "unexpected response frame from client",
                ),
            );
            Err(())
        }
    }
}

/// Encodes one non-locate frame into a pooled buffer and sends it.
fn send_admin_frame(shared: &Shared, writer: &ConnWriter, frame: &Frame) {
    let (mut bytes, reused) = shared.pool.get();
    wire::encode_frame(frame, &mut bytes);
    shared.stats.record_reply_encode(bytes.len() as u64, reused);
    let sent = writer.send(&bytes);
    shared.pool.put(bytes);
    if sent {
        shared.net.frames_out.fetch_add(1, Ordering::Relaxed);
    }
}

/// Answers an admin frame: the registry listing on success, the
/// structured error otherwise.
fn send_admin_response(
    shared: &Shared,
    writer: &ConnWriter,
    result: Result<(), (ErrorCode, String)>,
) {
    let outcome = match result {
        Ok(()) => Ok(shared.registry.list()),
        Err((code, message)) => Err(ErrorReply { code, message }),
    };
    send_admin_frame(
        shared,
        writer,
        &Frame::VenueAdminResponse(VenueAdminResponse { outcome }),
    );
}

/// Per-batcher-thread reusable buffers for request assembly and replies.
///
/// Every `Vec` here keeps its capacity across batches, so a long-lived
/// batcher forms, solves, and answers micro-batches with zero steady-state
/// allocation in the assembly layer (the per-request report payloads still
/// arrive owned from the readers).
#[derive(Default)]
struct BatcherScratch {
    /// The batch popped by `next_batch`.
    batch: Vec<Pending>,
    /// Batch minus deadline-expired requests.
    live: Vec<Pending>,
    /// Report payloads taken out of `live`, aligned by index.
    inputs: Vec<Vec<CsiReport>>,
    /// Solved responses awaiting coalesced writes, aligned with `live`.
    responses: Vec<Option<LocateResponse>>,
    /// This thread's venue-registry read handle (one atomic load per batch
    /// in steady state).
    reader: RegistryReader,
}

fn batcher_loop(shared: &Arc<Shared>, idx: usize) {
    shared.dispatch.register_batcher(idx);
    let mut scratch = BatcherScratch::default();
    loop {
        if !next_batch(shared, idx, &mut scratch) {
            return; // drained and shutting down
        }
        let popped = shared.net.batches_popped.fetch_add(1, Ordering::Relaxed) + 1;
        let kill = shared.config.kill_batcher_every;
        if kill > 1 && popped.is_multiple_of(kill) {
            // Simulated batcher death: requeue the batch at the front of
            // its queue (its venue's FIFO, in its own shard, on the
            // sharded plane) — no admitted request is lost — and exit the
            // thread. The watchdog notices and respawns within one poll
            // interval. (`kill == 1` would livelock every batcher, so it
            // is treated as disabled along with 0.)
            shared.dispatch.requeue_front(&mut scratch.batch);
            return;
        }
        if !shared.config.batch_pause.is_zero() {
            std::thread::sleep(shared.config.batch_pause);
        }
        solve_and_reply(shared, &mut scratch);
    }
}

fn solve_and_reply(shared: &Shared, scratch: &mut BatcherScratch) {
    let BatcherScratch {
        batch,
        live,
        inputs,
        responses,
        reader,
    } = scratch;
    live.clear();
    inputs.clear();
    responses.clear();
    // Expire requests that aged past their deadline while queued — they
    // get an error each; the rest of the batch is unaffected.
    for p in batch.drain(..) {
        let expired = p.deadline.is_some_and(|d| p.admitted_at.elapsed() > d);
        if expired {
            shared.stats.record_deadline_miss();
            reply(
                shared,
                &p.writer,
                error_reply(
                    p.request_id,
                    ErrorCode::DeadlineExceeded,
                    "request aged past its deadline in the queue",
                ),
            );
        } else {
            live.push(p);
        }
    }
    if live.is_empty() {
        return;
    }
    // Batches are venue-homogeneous by construction (`next_batch` shards
    // by the head's venue); the composition counter pins that invariant.
    let venue = live[0].venue;
    let mut distinct = 0u64;
    for (i, p) in live.iter().enumerate() {
        if live[..i].iter().all(|q| q.venue != p.venue) {
            distinct += 1;
        }
    }
    shared.stats.record_batch_composition(distinct);
    // One registry resolution per batch. Unknown venue fails the whole
    // (homogeneous) batch with per-request errors; holding the entry `Arc`
    // keeps the server alive even if the venue is evicted or retired
    // mid-solve, so eviction never loses admitted requests.
    let entry = match shared.registry.resolve(venue, reader) {
        Ok(entry) => entry,
        Err(e) => {
            let (code, message) = match e {
                ResolveError::Unknown => (
                    ErrorCode::UnknownVenue,
                    format!("venue {venue} is not onboarded"),
                ),
                ResolveError::Rebuild(m) => (
                    ErrorCode::Internal,
                    format!("venue {venue} cache rebuild failed: {m}"),
                ),
            };
            for p in live.iter() {
                shared.net.requests_failed.fetch_add(1, Ordering::Relaxed);
                reply(
                    shared,
                    &p.writer,
                    error_reply(p.request_id, code, message.clone()),
                );
            }
            return;
        }
    };
    let server = entry.server().expect("resolved entries are resident");
    entry
        .stats
        .requests
        .fetch_add(live.len() as u64, Ordering::Relaxed);
    inputs.extend(live.iter_mut().map(|p| std::mem::take(&mut p.reports)));
    let plan = shared.config.fault_plan.as_ref();
    // Injected panics fire BEFORE the solve touches any core state, so the
    // unwind can never poison a lock inside the server — which is what
    // makes `AssertUnwindSafe` an honest assertion here.
    let batch_result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        panic_if_injected(plan, live.iter().map(|p| p.request_id));
        server.process_batch(inputs)
    }));
    match batch_result {
        Ok(results) => {
            responses.extend(
                live.iter()
                    .zip(results)
                    .map(|(p, result)| Some(response_for(shared, &entry, p, result))),
            );
            // Coalesced writes: encode every reply destined for the same
            // connection into one pooled buffer and write it with a single
            // syscall, instead of one locked write per reply.
            for i in 0..live.len() {
                if responses[i].is_none() {
                    continue;
                }
                let writer = &live[i].writer;
                let (mut bytes, reused) = shared.pool.get();
                let mut frames = 0u64;
                let mut ok_frames = 0u64;
                for j in i..live.len() {
                    if !Arc::ptr_eq(&live[j].writer, writer) {
                        continue;
                    }
                    if let Some(response) = responses[j].take() {
                        if response.outcome.is_ok() {
                            ok_frames += 1;
                        }
                        wire::encode_frame(&Frame::LocateResponse(response), &mut bytes);
                        frames += 1;
                    }
                }
                shared.stats.record_reply_encode(bytes.len() as u64, reused);
                let sent = writer.send(&bytes);
                shared.pool.put(bytes);
                if sent {
                    shared.net.frames_out.fetch_add(frames, Ordering::Relaxed);
                }
                shared
                    .net
                    .responses_sent
                    .fetch_add(frames, Ordering::Relaxed);
                shared
                    .net
                    .requests_ok
                    .fetch_add(ok_frames, Ordering::Relaxed);
            }
        }
        Err(_) => {
            shared.net.batch_panics.fetch_add(1, Ordering::Relaxed);
            // Per-request isolation: re-solve each request alone, each
            // under its own guard, so only the poison request answers
            // `Internal`. `process` is bit-identical to a single-element
            // `process_batch`, so the batch-mates' replies match the
            // panic-free run exactly.
            for (p, input) in live.iter().zip(inputs.iter()) {
                let one = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    panic_if_injected(plan, std::iter::once(p.request_id));
                    server.process(input)
                }));
                match one {
                    Ok(result) => {
                        let response = response_for(shared, &entry, p, result);
                        reply(shared, &p.writer, response);
                    }
                    Err(_) => {
                        shared.net.requests_internal.fetch_add(1, Ordering::Relaxed);
                        shared.net.requests_failed.fetch_add(1, Ordering::Relaxed);
                        reply(
                            shared,
                            &p.writer,
                            error_reply(
                                p.request_id,
                                ErrorCode::Internal,
                                "request panicked during solve; batch-mates unaffected",
                            ),
                        );
                    }
                }
            }
        }
    }
}

/// Panics (with the quiet [`InjectedPanic`] payload) if the fault plan
/// classifies any of `ids` as [`FaultClass::InjectPanic`].
fn panic_if_injected(plan: Option<&FaultPlan>, ids: impl Iterator<Item = u64>) {
    let Some(plan) = plan else { return };
    for id in ids {
        if plan.classify(id) == FaultClass::InjectPanic {
            std::panic::panic_any(InjectedPanic(id));
        }
    }
}

/// Builds the reply for one solved request: session smoothing and the
/// centroid→`Predicted` upgrade on success (recording the *served*
/// quality tier), the mapped wire error code on failure. Used by both
/// the batch path and the per-request panic-isolation path, so a
/// respawned batcher answers bit-identically to the batch it replaced.
fn response_for(
    shared: &Shared,
    entry: &VenueEntry,
    p: &Pending,
    result: Result<nomloc_core::LocationEstimate, nomloc_core::EstimateError>,
) -> LocateResponse {
    match result {
        Ok(est) => {
            let (est, session) = sessionize(shared, entry, p, est);
            entry.stats.record_quality(est.quality);
            let mut wire_est = WireEstimate::from_core(&est);
            wire_est.session = session;
            LocateResponse {
                request_id: p.request_id,
                outcome: Ok(wire_est),
            }
        }
        Err(e) => {
            shared.net.requests_failed.fetch_add(1, Ordering::Relaxed);
            error_reply(
                p.request_id,
                ErrorCode::from_estimate_error(&e),
                e.to_string(),
            )
        }
    }
}

/// Runs one successful estimate through the session plane (no-op for
/// stateless requests):
///
/// * **Full/Region**: the raw position feeds the session's tracker; the
///   reply carries the smoothed view and the localizability bound at the
///   smoothed cell. The served quality tier is unchanged.
/// * **Centroid + warm session**: the estimator only managed the venue
///   centroid, but the motion model knows better — answer the
///   extrapolated position at the `Predicted` tier with the bound
///   widened by [`PREDICTED_ERROR_WIDENING`]. The centroid never feeds
///   the tracker (it would drag the track toward the venue center).
/// * **Centroid + cold session**: plain centroid, no session block —
///   there is no track to smooth against yet.
fn sessionize(
    shared: &Shared,
    entry: &VenueEntry,
    p: &Pending,
    mut est: nomloc_core::LocationEstimate,
) -> (nomloc_core::LocationEstimate, Option<WireSession>) {
    if p.session == 0 {
        return (est, None);
    }
    let now = Instant::now();
    if est.quality == EstimateQuality::Centroid {
        let Some(view) = shared.sessions.predict(p.venue, p.session, now) else {
            return (est, None);
        };
        shared.stats.promote_centroid_to_predicted();
        est.position = view.smoothed;
        est.quality = EstimateQuality::Predicted;
        let session = session_block(entry, &view, PREDICTED_ERROR_WIDENING);
        return (est, Some(session));
    }
    let view = shared
        .sessions
        .observe(p.venue, p.session, est.position, now);
    let session = session_block(entry, &view, 1.0);
    (est, Some(session))
}

/// Assembles the reply's session block: the smoothed view plus the
/// localizability-derived error bound for the smoothed position's cell,
/// scaled by `widening` (NaN when the venue has no resident map — the
/// wire layer documents NaN as "bound unavailable").
fn session_block(entry: &VenueEntry, view: &SessionView, widening: f64) -> WireSession {
    let bound = entry
        .localizability()
        .and_then(|map| map.predicted_error_at(view.smoothed))
        .map(|e| e * widening);
    WireSession {
        smoothed_x: view.smoothed.x,
        smoothed_y: view.smoothed.y,
        velocity_x: view.velocity.x,
        velocity_y: view.velocity.y,
        error_bound: bound.unwrap_or(f64::NAN),
    }
}

/// The reader-side `Predicted` intercept: a request whose payload failed
/// validation, but whose session is warm, is answered from the motion
/// model instead of `Malformed`. Returns `None` (fall through to the
/// error) for stateless requests and cold/expired sessions.
fn predicted_fallback(
    shared: &Shared,
    request_id: u64,
    venue_id: u64,
    session_id: u64,
) -> Option<LocateResponse> {
    if session_id == 0 {
        return None;
    }
    let view = shared
        .sessions
        .predict(venue_id, session_id, Instant::now())?;
    // Snapshot peek only: the reader path must not touch the LRU clock
    // or trigger a rebuild. An evicted venue just means no error bound.
    let entry = shared.registry.peek(venue_id);
    let session = match &entry {
        Some(e) => session_block(e, &view, PREDICTED_ERROR_WIDENING),
        None => WireSession {
            smoothed_x: view.smoothed.x,
            smoothed_y: view.smoothed.y,
            velocity_x: view.velocity.x,
            velocity_y: view.velocity.y,
            error_bound: f64::NAN,
        },
    };
    shared.stats.record_predicted();
    if let Some(e) = &entry {
        e.stats.requests.fetch_add(1, Ordering::Relaxed);
        e.stats.record_quality(EstimateQuality::Predicted);
    }
    Some(LocateResponse {
        request_id,
        outcome: Ok(WireEstimate {
            x: view.smoothed.x,
            y: view.smoothed.y,
            relaxation_cost: 0.0,
            region_area: 0.0,
            n_constraints: 0,
            n_winning_pieces: 0,
            lp_iterations: 0,
            warm_start_hits: 0,
            phase1_pivots_saved: 0,
            quality: EstimateQuality::Predicted.as_u8(),
            session: Some(session),
        }),
    })
}
