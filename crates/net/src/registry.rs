//! The multi-venue registry: read-mostly venue → server map with LRU
//! eviction under a memory budget.
//!
//! One daemon serves a whole fleet of venues. Onboarding a venue is just
//! data (NomLoc is calibration-free — a floor-plan polygon and AP sites,
//! no site survey), so the registry builds the venue's
//! [`nomloc_core::cache::VenueCache`] once at onboarding and publishes it
//! through a hand-rolled arc-swap:
//!
//! * **Publishers** (onboard / retire / evict / rebuild — all rare) take
//!   the `slot` mutex, clone the map of `Arc` entries, mutate the clone,
//!   store it back, and then bump `gen` with `Release` ordering.
//! * **Readers** ([`RegistryReader`]) keep a private `Arc` of the last
//!   snapshot plus the generation it was taken at. [`RegistryReader::
//!   snapshot`] is one `Acquire` load of `gen` in steady state; only when
//!   the generation moved does it briefly take the mutex to reclone. The
//!   locate hot path therefore never blocks on admin traffic.
//!
//! Entries are immutable once published — mutation replaces the entry in
//! a *new* map. A venue's [`VenueStats`] is a separate `Arc` of atomics
//! shared by every incarnation of the entry, so counters survive
//! eviction and rebuild.
//!
//! **Eviction**: when the summed
//! [`VenueCache::approx_bytes`](nomloc_core::cache::VenueCache::approx_bytes)
//! of resident
//! caches exceeds the configured budget, the least-recently-used venues
//! (by a logical resolve clock) drop their server; the spec is retained,
//! and the next request for the venue rebuilds the cache on demand —
//! bit-identically, since `VenueCache::new` is a pure function of the
//! boundary polygon (`VenueCache::fingerprint` pins this in tests). The
//! resident venue 0 — the server the daemon was spawned with — is never
//! evicted and never retired.

use crate::wire::{VenueHealth, VenueSummary, WireVenue};
use nomloc_core::localizability::{self, LocalizabilityMap};
use nomloc_core::server::LocalizationServer;
use nomloc_core::stats::PipelineStats;
use nomloc_geometry::Point;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-venue serving counters. Shared (via `Arc`) by every incarnation of
/// a venue's registry entry, so eviction and rebuild never reset them.
#[derive(Debug, Default)]
pub struct VenueStats {
    /// Locate requests resolved against this venue.
    pub requests: AtomicU64,
    /// Estimates served at full quality.
    pub quality_full: AtomicU64,
    /// Estimates degraded to the site-constraints-only region.
    pub quality_region: AtomicU64,
    /// Estimates answered from a session's motion-model prediction.
    pub quality_predicted: AtomicU64,
    /// Estimates degraded to the weighted site centroid.
    pub quality_centroid: AtomicU64,
    /// Batch resolutions that found the cache resident.
    pub cache_hits: AtomicU64,
    /// Batch resolutions that rebuilt an evicted cache.
    pub cache_rebuilds: AtomicU64,
    /// Times the cache was evicted under the memory budget.
    pub cache_evictions: AtomicU64,
    /// Logical resolve-clock tick of the last use (drives LRU eviction).
    last_used: AtomicU64,
}

impl VenueStats {
    /// Bumps the quality-tier counter for one served estimate.
    pub fn record_quality(&self, quality: nomloc_core::EstimateQuality) {
        use nomloc_core::EstimateQuality::*;
        match quality {
            Full => &self.quality_full,
            Region => &self.quality_region,
            Predicted => &self.quality_predicted,
            Centroid => &self.quality_centroid,
        }
        .fetch_add(1, Ordering::Relaxed);
    }
}

/// One immutable registry entry. Replaced wholesale (in a fresh map) on
/// every state change; the `stats` arc is carried across incarnations.
#[derive(Debug)]
pub struct VenueEntry {
    /// Registry identifier (0 = the resident default venue).
    pub venue_id: u64,
    /// Human-readable name.
    pub name: String,
    /// The onboarding spec, retained for rebuild-after-eviction.
    /// `None` for venue 0, whose server was built in-process.
    spec: Option<WireVenue>,
    /// The serving state; `None` while evicted.
    server: Option<Arc<LocalizationServer>>,
    /// The venue's localizability analysis, built at onboard time from
    /// the boundary polygon and static AP sites. Evicted and rebuilt in
    /// lockstep with the venue cache — `analyze` is a pure function of
    /// the spec, so the rebuild is bit-identical.
    localizability: Option<Arc<LocalizabilityMap>>,
    /// Counters shared across evict/rebuild incarnations.
    pub stats: Arc<VenueStats>,
}

impl VenueEntry {
    /// Whether the venue's cache is resident right now.
    pub fn resident(&self) -> bool {
        self.server.is_some()
    }

    /// The venue's server, when resident. Entries returned by
    /// [`VenueRegistry::resolve`] are always resident.
    pub fn server(&self) -> Option<&Arc<LocalizationServer>> {
        self.server.as_ref()
    }

    /// The venue's localizability map, resident exactly when the server
    /// is: both are dropped on eviction and rebuilt together on resolve.
    pub fn localizability(&self) -> Option<&Arc<LocalizabilityMap>> {
        self.localizability.as_ref()
    }
}

/// Grid pitch (metres) for the per-venue localizability analysis. Coarse
/// enough that the map is a few hundred cells for fleet-sized venues,
/// fine enough that the per-cell error bound tracks real blind spots.
/// Grid pitch (metres) of the per-venue localizability maps the registry
/// builds alongside each resident server. Coarser than the analysis
/// default: the session plane only needs a cell-level error bound, and a
/// coarse grid keeps onboarding (and LRU rebuild) cheap. Public so tests
/// and clients can rebuild the identical map.
pub const LOCALIZABILITY_PITCH_M: f64 = 2.0;

type Map = HashMap<u64, Arc<VenueEntry>>;

/// Why [`VenueRegistry::resolve`] could not produce a server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// The venue id was never onboarded (or has been retired).
    Unknown,
    /// Rebuilding the evicted cache failed (should be unreachable —
    /// onboarding validates the boundary polygon).
    Rebuild(String),
}

/// The registry itself. See the module docs for the publication protocol.
#[derive(Debug)]
pub struct VenueRegistry {
    /// Publication generation; bumped (Release) after every map swap.
    gen: AtomicU64,
    /// The current snapshot. Publishers briefly lock; readers clone the
    /// `Arc` only when `gen` moved.
    slot: Mutex<Arc<Map>>,
    /// Logical clock driving LRU eviction: one tick per resolve.
    clock: AtomicU64,
    /// Resident-cache budget in bytes (0 = unlimited).
    budget_bytes: usize,
    /// Worker threads per venue server (mirrors the daemon's setting).
    workers: usize,
    /// The daemon-wide pipeline stats every venue server records into,
    /// so aggregate health counters stay meaningful across venues.
    shared_stats: Arc<PipelineStats>,
}

impl VenueRegistry {
    /// Builds a registry whose venue 0 is the daemon's resident server.
    pub fn new(
        resident: Arc<LocalizationServer>,
        name: impl Into<String>,
        workers: usize,
        budget_bytes: usize,
    ) -> Self {
        let shared_stats = resident.stats_arc();
        // Venue 0 has no onboarding spec (its server was built in-process),
        // so its AP sites are unknown here: analyze the boundary with an
        // empty AP set, which still yields per-cell geometry-driven bounds.
        let localizability = Arc::new(localizability::analyze(
            resident.area(),
            &[],
            LOCALIZABILITY_PITCH_M,
        ));
        let entry = Arc::new(VenueEntry {
            venue_id: 0,
            name: name.into(),
            spec: None,
            server: Some(resident),
            localizability: Some(localizability),
            stats: Arc::new(VenueStats::default()),
        });
        let mut map = Map::new();
        map.insert(0, entry);
        VenueRegistry {
            gen: AtomicU64::new(0),
            slot: Mutex::new(Arc::new(map)),
            clock: AtomicU64::new(0),
            budget_bytes,
            workers,
            shared_stats,
        }
    }

    /// The current publication generation (readers poll this).
    fn generation(&self) -> u64 {
        self.gen.load(Ordering::Acquire)
    }

    /// Runs `f` on a private clone of the map, publishes the result, and
    /// bumps the generation. All mutation funnels through here, so the
    /// clone-mutate-swap is race-free under the one mutex.
    fn publish<R>(&self, f: impl FnOnce(&mut Map) -> R) -> R {
        let mut slot = self.slot.lock().unwrap();
        let mut map = (**slot).clone();
        let out = f(&mut map);
        self.evict_over_budget(&mut map);
        *slot = Arc::new(map);
        self.gen.fetch_add(1, Ordering::Release);
        out
    }

    /// Evicts least-recently-used resident caches (never venue 0) until
    /// the summed cache footprint fits the budget.
    fn evict_over_budget(&self, map: &mut Map) {
        if self.budget_bytes == 0 {
            return;
        }
        loop {
            let resident_bytes: usize = map
                .values()
                .filter_map(|e| e.server.as_ref())
                .map(|s| s.venue_cache().approx_bytes())
                .sum();
            if resident_bytes <= self.budget_bytes {
                return;
            }
            let Some(victim) = map
                .values()
                .filter(|e| e.venue_id != 0 && e.resident())
                .min_by_key(|e| e.stats.last_used.load(Ordering::Relaxed))
                .map(|e| e.venue_id)
            else {
                return; // only the unevictable resident venue is left
            };
            let old = map.get(&victim).unwrap();
            let evicted = Arc::new(VenueEntry {
                venue_id: old.venue_id,
                name: old.name.clone(),
                spec: old.spec.clone(),
                server: None,
                localizability: None,
                stats: Arc::clone(&old.stats),
            });
            evicted
                .stats
                .cache_evictions
                .fetch_add(1, Ordering::Relaxed);
            map.insert(victim, evicted);
        }
    }

    fn build_server(
        &self,
        spec: &WireVenue,
    ) -> Result<(Arc<LocalizationServer>, Arc<LocalizabilityMap>), String> {
        let area = spec.boundary_polygon()?;
        let aps: Vec<Point> = spec
            .static_aps
            .iter()
            .map(|&(x, y)| Point::new(x, y))
            .collect();
        let localizability = Arc::new(localizability::analyze(&area, &aps, LOCALIZABILITY_PITCH_M));
        Ok((
            Arc::new(
                LocalizationServer::new(area)
                    .with_workers(self.workers)
                    .with_stats(Arc::clone(&self.shared_stats)),
            ),
            localizability,
        ))
    }

    /// Onboards (or replaces) a venue. Builds the cache eagerly so the
    /// first locate request pays nothing.
    ///
    /// # Errors
    ///
    /// Venue id 0 is reserved for the resident venue; an invalid boundary
    /// polygon is rejected before anything is published.
    pub fn onboard(&self, spec: WireVenue) -> Result<(), String> {
        if spec.venue_id == 0 {
            return Err("venue id 0 is reserved for the resident venue".into());
        }
        let (server, localizability) = self.build_server(&spec)?;
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        self.publish(|map| {
            let stats = map
                .get(&spec.venue_id)
                .map(|old| Arc::clone(&old.stats))
                .unwrap_or_default();
            stats.last_used.store(tick, Ordering::Relaxed);
            let entry = Arc::new(VenueEntry {
                venue_id: spec.venue_id,
                name: spec.name.clone(),
                spec: Some(spec),
                server: Some(server),
                localizability: Some(localizability),
                stats,
            });
            map.insert(entry.venue_id, entry);
        });
        Ok(())
    }

    /// Retires a venue: it disappears from the map and its counters stop.
    ///
    /// # Errors
    ///
    /// Venue 0 cannot be retired; retiring an unknown venue reports it.
    pub fn retire(&self, venue_id: u64) -> Result<(), String> {
        if venue_id == 0 {
            return Err("the resident venue 0 cannot be retired".into());
        }
        self.publish(|map| match map.remove(&venue_id) {
            Some(_) => Ok(()),
            None => Err(format!("venue {venue_id} was never onboarded")),
        })
    }

    /// The registry listing, sorted by venue id.
    pub fn list(&self) -> Vec<VenueSummary> {
        let map = Arc::clone(&self.slot.lock().unwrap());
        let mut out: Vec<VenueSummary> = map
            .values()
            .map(|e| VenueSummary {
                venue_id: e.venue_id,
                name: e.name.clone(),
                resident: e.resident(),
                requests: e.stats.requests.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by_key(|s| s.venue_id);
        out
    }

    /// Per-venue health records, sorted by venue id.
    pub fn health(&self) -> Vec<VenueHealth> {
        let map = Arc::clone(&self.slot.lock().unwrap());
        let mut out: Vec<VenueHealth> = map
            .values()
            .map(|e| {
                let s = &e.stats;
                VenueHealth {
                    venue_id: e.venue_id,
                    requests: s.requests.load(Ordering::Relaxed),
                    quality_full: s.quality_full.load(Ordering::Relaxed),
                    quality_region: s.quality_region.load(Ordering::Relaxed),
                    quality_predicted: s.quality_predicted.load(Ordering::Relaxed),
                    quality_centroid: s.quality_centroid.load(Ordering::Relaxed),
                    cache_hits: s.cache_hits.load(Ordering::Relaxed),
                    cache_rebuilds: s.cache_rebuilds.load(Ordering::Relaxed),
                    cache_evictions: s.cache_evictions.load(Ordering::Relaxed),
                    resident: e.resident(),
                }
            })
            .collect();
        out.sort_by_key(|h| h.venue_id);
        out
    }

    /// Resolves a venue to its server for one micro-batch, rebuilding the
    /// cache if it was evicted and touching the LRU clock.
    ///
    /// # Errors
    ///
    /// [`ResolveError::Unknown`] for ids never onboarded (mapped to the
    /// wire's `UnknownVenue`); [`ResolveError::Rebuild`] if the retained
    /// spec stopped building (unreachable for specs that onboarded).
    pub fn resolve(
        &self,
        venue_id: u64,
        reader: &mut RegistryReader,
    ) -> Result<Arc<VenueEntry>, ResolveError> {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = reader
            .snapshot(self)
            .get(&venue_id)
            .cloned()
            .ok_or(ResolveError::Unknown)?;
        entry.stats.last_used.store(tick, Ordering::Relaxed);
        if entry.resident() {
            entry.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry);
        }
        // Evicted: rebuild under the publisher lock. Re-check the *current*
        // map first — another batcher may have rebuilt while we waited.
        let spec = entry.spec.clone().ok_or(ResolveError::Unknown)?;
        let (server, localizability) = self.build_server(&spec).map_err(ResolveError::Rebuild)?;
        self.publish(|map| match map.get(&venue_id) {
            Some(cur) if cur.resident() => Ok(Arc::clone(cur)),
            Some(cur) => {
                let entry = Arc::new(VenueEntry {
                    venue_id,
                    name: cur.name.clone(),
                    spec: cur.spec.clone(),
                    server: Some(server),
                    localizability: Some(localizability),
                    stats: Arc::clone(&cur.stats),
                });
                entry.stats.cache_rebuilds.fetch_add(1, Ordering::Relaxed);
                entry.stats.last_used.store(tick, Ordering::Relaxed);
                map.insert(venue_id, Arc::clone(&entry));
                Ok(entry)
            }
            None => Err(ResolveError::Unknown), // retired while we rebuilt
        })
    }

    /// A snapshot peek at one venue's entry: no LRU touch, no rebuild,
    /// no hit/miss accounting. The reader-side `Predicted` fallback uses
    /// this — it only needs the (possibly evicted) entry's stats and
    /// localizability map, and must stay off the resolve path.
    pub fn peek(&self, venue_id: u64) -> Option<Arc<VenueEntry>> {
        self.slot.lock().unwrap().get(&venue_id).cloned()
    }

    /// Summed
    /// [`VenueCache::approx_bytes`](nomloc_core::cache::VenueCache::approx_bytes)
    /// over resident caches.
    pub fn resident_bytes(&self) -> usize {
        let map = Arc::clone(&self.slot.lock().unwrap());
        map.values()
            .filter_map(|e| e.server.as_ref())
            .map(|s| s.venue_cache().approx_bytes())
            .sum()
    }
}

/// A per-thread read handle: one `Acquire` load per
/// [`RegistryReader::snapshot`] in steady state, a brief mutex clone only
/// when the registry's generation moved.
///
/// Each thread owns its reader (batchers, the watchdog drain) — an
/// explicit handle rather than a thread-local, so multiple registries in
/// one process (tests!) never share stale snapshots.
#[derive(Debug)]
pub struct RegistryReader {
    gen: u64,
    map: Arc<Map>,
}

impl Default for RegistryReader {
    fn default() -> Self {
        RegistryReader::new()
    }
}

impl RegistryReader {
    /// A reader that has never observed any snapshot.
    pub fn new() -> Self {
        RegistryReader {
            gen: u64::MAX,
            map: Arc::new(Map::new()),
        }
    }

    /// The current venue map, refreshed only when the generation moved.
    pub fn snapshot(&mut self, reg: &VenueRegistry) -> &Map {
        let gen = reg.generation();
        if gen != self.gen {
            self.map = Arc::clone(&reg.slot.lock().unwrap());
            self.gen = gen;
        }
        &self.map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nomloc_core::scenario::Venue;

    fn resident_server() -> Arc<LocalizationServer> {
        Arc::new(LocalizationServer::new(
            Venue::lab().plan.boundary().clone(),
        ))
    }

    fn spec(id: u64) -> WireVenue {
        WireVenue::from_venue(id, &nomloc_core::scenario::fleet_venue(id))
    }

    #[test]
    fn onboard_list_retire_round_trip() {
        let reg = VenueRegistry::new(resident_server(), "Lab", 1, 0);
        assert_eq!(reg.list().len(), 1);
        reg.onboard(spec(1)).unwrap();
        reg.onboard(spec(2)).unwrap();
        let listing = reg.list();
        assert_eq!(
            listing.iter().map(|s| s.venue_id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(listing.iter().all(|s| s.resident));
        reg.retire(1).unwrap();
        assert_eq!(reg.list().len(), 2);
        assert!(reg.retire(1).is_err(), "double retire reports unknown");
        assert!(reg.retire(0).is_err(), "venue 0 is unretirable");
        assert!(reg.onboard(spec(0)).is_err(), "venue 0 is reserved");
    }

    #[test]
    fn resolve_is_lock_free_in_steady_state_and_tracks_hits() {
        let reg = VenueRegistry::new(resident_server(), "Lab", 1, 0);
        reg.onboard(spec(1)).unwrap();
        let mut reader = RegistryReader::new();
        let a = reg.resolve(1, &mut reader).unwrap();
        let b = reg.resolve(1, &mut reader).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "steady-state resolves share a server");
        let health = reg.health();
        let v1 = health.iter().find(|h| h.venue_id == 1).unwrap();
        assert_eq!(v1.cache_hits, 2);
        assert_eq!(v1.cache_rebuilds, 0);
        assert!(matches!(
            reg.resolve(99, &mut reader),
            Err(ResolveError::Unknown)
        ));
    }

    #[test]
    fn readers_see_publications_without_recloning_when_idle() {
        let reg = VenueRegistry::new(resident_server(), "Lab", 1, 0);
        let mut reader = RegistryReader::new();
        assert_eq!(reader.snapshot(&reg).len(), 1);
        let gen_before = reader.gen;
        reader.snapshot(&reg);
        assert_eq!(reader.gen, gen_before, "no republish, no reclone");
        reg.onboard(spec(1)).unwrap();
        assert_eq!(reader.snapshot(&reg).len(), 2, "publication visible");
    }

    #[test]
    fn lru_eviction_rebuilds_bit_identically() {
        // Budget sized so the resident venue plus ONE fleet venue (either
        // of them) fits, but two do not: onboarding the second evicts the
        // colder first.
        let resident = resident_server();
        let fleet = |id: u64| {
            LocalizationServer::new(spec(id).boundary_polygon().unwrap())
                .venue_cache()
                .approx_bytes()
        };
        let budget = resident.venue_cache().approx_bytes() + fleet(1).max(fleet(2)) + 64;
        let reg = VenueRegistry::new(Arc::clone(&resident), "Lab", 1, budget);
        reg.onboard(spec(1)).unwrap();
        let mut reader = RegistryReader::new();
        let fp_before = reg
            .resolve(1, &mut reader)
            .unwrap()
            .server()
            .unwrap()
            .venue_cache()
            .fingerprint();

        reg.onboard(spec(2)).unwrap();
        let listing = reg.list();
        let v1 = listing.iter().find(|s| s.venue_id == 1).unwrap();
        let v2 = listing.iter().find(|s| s.venue_id == 2).unwrap();
        assert!(!v1.resident, "colder venue 1 must be evicted");
        assert!(v2.resident, "freshly onboarded venue 2 stays");
        assert!(reg.resident_bytes() <= budget);

        // Rebuild-on-next-request, bit-identical to the evicted cache.
        let rebuilt = reg.resolve(1, &mut reader).unwrap();
        assert_eq!(
            rebuilt.server().unwrap().venue_cache().fingerprint(),
            fp_before
        );
        let health = reg.health();
        let h1 = health.iter().find(|h| h.venue_id == 1).unwrap();
        assert_eq!(h1.cache_evictions, 1);
        assert_eq!(h1.cache_rebuilds, 1);
        assert!(h1.resident);
    }

    #[test]
    fn venue_zero_is_never_evicted() {
        // A budget too small for anything: every onboard immediately evicts
        // the newcomer's colder siblings, but venue 0 always stays.
        let reg = VenueRegistry::new(resident_server(), "Lab", 1, 1);
        reg.onboard(spec(1)).unwrap();
        reg.onboard(spec(2)).unwrap();
        let listing = reg.list();
        assert!(listing.iter().find(|s| s.venue_id == 0).unwrap().resident);
        assert!(listing
            .iter()
            .filter(|s| s.venue_id != 0)
            .all(|s| !s.resident));
        // Evicted venues still answer via rebuild.
        let mut reader = RegistryReader::new();
        assert!(reg.resolve(1, &mut reader).is_ok());
    }

    #[test]
    fn localizability_map_rides_the_venue_cache_lifecycle() {
        // The map is resident exactly when the server is, and a rebuild
        // after eviction reproduces the analysis bit-identically (it is a
        // pure function of the onboarding spec).
        let reg = VenueRegistry::new(resident_server(), "Lab", 1, 0);
        reg.onboard(spec(1)).unwrap();
        let mut reader = RegistryReader::new();
        let entry = reg.resolve(1, &mut reader).unwrap();
        let map = entry.localizability().expect("resident venue has a map");
        assert!(!map.cells().is_empty(), "fleet venue grid is non-empty");
        let before: Vec<(u64, u64, u64)> = map
            .cells()
            .iter()
            .map(|c| {
                (
                    c.point.x.to_bits(),
                    c.point.y.to_bits(),
                    c.predicted_error.to_bits(),
                )
            })
            .collect();

        // Tiny budget: publishing anything evicts venue 1 (never venue 0).
        let reg2 = VenueRegistry::new(resident_server(), "Lab", 1, 1);
        reg2.onboard(spec(1)).unwrap();
        let snap = Arc::clone(&reg2.slot.lock().unwrap());
        let evicted = snap.get(&1).unwrap();
        assert!(!evicted.resident());
        assert!(
            evicted.localizability().is_none(),
            "eviction drops the map with the cache"
        );
        drop(snap);
        let rebuilt = reg2.resolve(1, &mut reader).unwrap();
        let after: Vec<(u64, u64, u64)> = rebuilt
            .localizability()
            .expect("rebuild restores the map")
            .cells()
            .iter()
            .map(|c| {
                (
                    c.point.x.to_bits(),
                    c.point.y.to_bits(),
                    c.predicted_error.to_bits(),
                )
            })
            .collect();
        assert_eq!(before, after, "rebuilt analysis is bit-identical");

        // Venue 0 (no spec) still carries a boundary-only map.
        let v0 = reg.resolve(0, &mut reader).unwrap();
        assert!(v0.localizability().is_some());
    }

    #[test]
    fn onboard_rejects_degenerate_boundaries() {
        let reg = VenueRegistry::new(resident_server(), "Lab", 1, 0);
        let mut bad = spec(1);
        bad.boundary = vec![(0.0, 0.0), (1.0, 1.0)];
        assert!(reg.onboard(bad).is_err());
    }
}
