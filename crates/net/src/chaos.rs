//! The chaos driver: replays a workload against a live daemon while
//! injecting every [`FaultClass`] from a shared [`FaultPlan`], then
//! verifies the per-class serving contract against a fault-free baseline.
//!
//! The client, the daemon, and the verifier all hold the *same* plan, and
//! every fault decision is a pure function of `(seed, request_id)` — so
//! the client knows which frame to mangle, the daemon knows which solve
//! to panic, and the verifier independently predicts the expected outcome
//! of every request:
//!
//! | class | injected by | expected reply |
//! |---|---|---|
//! | `None` | — | `Ok`, bit-identical to the baseline |
//! | `CorruptCsi` | client (payload) | typed `Malformed` error |
//! | `DropReadings` | client (payload) | `Ok`, degraded quality tier |
//! | `TruncateFrame` | client (transport) | baseline `Ok` after clean retry |
//! | `CorruptFrame` | client (transport) | baseline `Ok` after clean retry |
//! | `DuplicateFrame` | client (transport) | baseline `Ok`, twice, identical |
//! | `DelayFrame` | client (transport) | baseline `Ok` (split write) |
//! | `KillConnection` | client (transport) | baseline `Ok` after resend |
//! | `InjectPanic` | daemon (compute) | typed `Internal` error |
//!
//! Requests are driven sequentially over one connection (reconnecting as
//! the faults demand), so each reply is unambiguously paired with its
//! request and the daemon's determinism makes the bit-identity assertion
//! meaningful.
//!
//! # Sessioned chaos
//!
//! With [`ChaosConfig::sessions`] > 0, requests round-robin across that
//! many concurrent session ids and the contract table shifts: the
//! verifier replays every session's tracker (the same deterministic
//! [`session_tracker`] the daemon runs, advanced one logical tick per
//! accepted estimate) and demands each reply's session block match the
//! replayed state **bit-identically**. Because ≥2 sessions interleave
//! over one venue, this doubles as a cross-wire detector: an answer
//! smoothed by the *wrong* session's tracker cannot match its own
//! session's replay. Warm sessions also upgrade the degraded rows —
//! a `CorruptCsi` request answers `Predicted` from the motion model
//! instead of `Malformed`, and a centroid-tier answer is promoted to
//! `Predicted` at the extrapolated position — and the verifier demands
//! exactly that upgrade, never anything worse than the stateless tier.
//! The orthogonal stale-session fault ([`FaultPlan::stale_session`])
//! force-expires every server-side session mid-run; the verifier models
//! it by resetting its replay state at the same (plan-deterministic)
//! requests.

use crate::loadgen::ResponseReader;
use crate::sessions::{session_tracker, SessionTable, SESSION_TICK_SECONDS};
use crate::wire::{
    self, ErrorCode, ErrorReply, Frame, LocateRequest, LocateResponse, WireEstimate, WireReport,
    WireSession,
};
use nomloc_core::server::CsiReport;
use nomloc_core::tracking::Tracker;
use nomloc_faults::{CsiCorruption, DropMode, FaultClass, FaultPlan, FAULT_CLASSES};
use nomloc_geometry::{Point, Vec2};
use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Chaos-driver configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The shared fault plan (also hand it to the daemon via
    /// [`crate::DaemonConfig::fault_plan`] so `InjectPanic` fires).
    pub plan: FaultPlan,
    /// Read timeout for normal replies.
    pub read_timeout: Duration,
    /// How long to wait for the server's `Malformed` rejection of a
    /// corrupted frame before giving up on observing it (a flip that hits
    /// the length field leaves the server waiting for bytes instead).
    pub reject_probe: Duration,
    /// The venue every request in this run targets (0 = the daemon's
    /// resident venue). One chaos run exercises one venue; venue-isolation
    /// tests run two drivers against different venues concurrently.
    pub venue_id: u64,
    /// How many concurrent sessions the run interleaves (0 = stateless:
    /// every request carries `session_id = 0`). With `n > 0`, request `i`
    /// joins session `1 + i % n`, so consecutive requests alternate
    /// sessions and the verifier's per-session replay doubles as a
    /// cross-wire detector.
    pub sessions: u64,
    /// The daemon's live session table (from
    /// [`crate::DaemonHandle::sessions`]). Required for the plan's
    /// stale-session fault to fire: when set and
    /// [`FaultPlan::stale_session`] samples true for a request, the
    /// driver force-expires every session before sending it.
    pub session_table: Option<Arc<SessionTable>>,
}

impl ChaosConfig {
    /// Default timeouts around `plan`; stateless (no sessions).
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        ChaosConfig {
            plan,
            read_timeout: Duration::from_secs(10),
            reject_probe: Duration::from_millis(250),
            venue_id: 0,
            sessions: 0,
            session_table: None,
        }
    }

    /// The session id request `i` carries (0 when the run is stateless).
    #[must_use]
    pub fn session_id_for(&self, request_id: u64) -> u64 {
        if self.sessions == 0 {
            0
        } else {
            1 + request_id % self.sessions
        }
    }

    /// Whether the stale-session fault is live for this run (sessions on
    /// *and* the driver holds the daemon's table to expire).
    #[must_use]
    pub fn stale_sessions_live(&self) -> bool {
        self.sessions > 0 && self.session_table.is_some()
    }
}

/// The reply one chaos-driven request ended up with.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The fault class the plan assigned to this request.
    pub class: FaultClass,
    /// The final reply (after any clean retry the class calls for).
    pub reply: Result<WireEstimate, ErrorReply>,
}

/// The result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// One outcome per request, indexed like the input workload.
    pub outcomes: Vec<ChaosOutcome>,
    /// Fresh connections opened after a transport fault burned one.
    pub reconnects: u64,
    /// Corrupted frames the server was *observed* rejecting with a
    /// protocol-level `Malformed` before the clean retry.
    pub rejections_observed: u64,
    /// Times the stale-session fault force-expired the server's sessions.
    pub stale_expiries: u64,
}

/// Aggregate counts from a verified chaos run.
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// Requests driven.
    pub total: usize,
    /// Requests the plan faulted (class != `None`).
    pub faulted: usize,
    /// Replies required — and verified — to be bit-identical to the
    /// fault-free baseline.
    pub bit_identical: usize,
    /// Requests answered with the typed error their fault class demands.
    pub typed_errors: usize,
    /// Requests answered with a degraded-quality estimate as demanded.
    pub degraded: usize,
    /// Requests a warm session upgraded to the `Predicted` tier (and
    /// verified against the replayed motion model).
    pub predicted: usize,
    /// Request count per fault class, in [`FAULT_CLASSES`] order with
    /// `None` appended last.
    pub per_class: Vec<(FaultClass, usize)>,
}

impl ChaosSummary {
    /// Renders the summary for terminal output.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos: {} requests, {} faulted — bit-identical {} | typed errors {} | \
             degraded {} | predicted {}\n",
            self.total,
            self.faulted,
            self.bit_identical,
            self.typed_errors,
            self.degraded,
            self.predicted
        );
        out.push_str("  per class:");
        for (class, n) in &self.per_class {
            out.push_str(&format!(" {class} {n}"));
        }
        out.push('\n');
        out
    }
}

/// What one sessioned check concluded (feeds the summary counters).
enum SessionVerdict {
    /// The reply matched the stateless baseline (plus, for estimate
    /// replies, the replayed session block).
    Identical,
    /// A warm session upgraded the reply to the `Predicted` tier, and the
    /// position matched the replayed motion model bit-exactly.
    Predicted,
}

impl ChaosReport {
    /// Checks every outcome against the per-class contract (table in the
    /// module docs), using `baseline[i]` as the **stateless** fault-free
    /// reply to request `i` (drive the baseline with `sessions = 0` —
    /// the verifier itself replays what sessions must add on top).
    ///
    /// With sessions enabled the verifier maintains one replayed
    /// [`session_tracker`] per session id, fed exactly as the daemon
    /// feeds its own (accepted estimates only, one logical tick each),
    /// and requires every session block — and every `Predicted` upgrade
    /// — to match the replay bit-identically.
    ///
    /// # Errors
    ///
    /// Returns one message per violated request.
    pub fn verify(
        &self,
        config: &ChaosConfig,
        baseline: &[Result<WireEstimate, ErrorReply>],
    ) -> Result<ChaosSummary, Vec<String>> {
        let plan = &config.plan;
        let mut violations = Vec::new();
        let mut summary = ChaosSummary {
            total: self.outcomes.len(),
            faulted: 0,
            bit_identical: 0,
            typed_errors: 0,
            degraded: 0,
            predicted: 0,
            per_class: FAULT_CLASSES
                .iter()
                .copied()
                .chain(std::iter::once(FaultClass::None))
                .map(|c| (c, 0))
                .collect(),
        };
        // The per-session replay state. A stale-session firing wipes it,
        // mirroring the force-expiry the driver inflicted on the daemon.
        let mut trackers: HashMap<u64, Tracker> = HashMap::new();
        for (i, outcome) in self.outcomes.iter().enumerate() {
            let id = i as u64;
            let class = outcome.class;
            if let Some(slot) = summary.per_class.iter_mut().find(|(c, _)| *c == class) {
                slot.1 += 1;
            }
            if class != FaultClass::None {
                summary.faulted += 1;
            }
            if config.stale_sessions_live() && plan.stale_session_fires(id) {
                trackers.clear();
            }
            let session_id = config.session_id_for(id);
            match class {
                FaultClass::None
                | FaultClass::TruncateFrame
                | FaultClass::CorruptFrame
                | FaultClass::DuplicateFrame
                | FaultClass::DelayFrame
                | FaultClass::KillConnection => {
                    let verdict = if session_id == 0 {
                        check_bit_identical(&outcome.reply, &baseline[i])
                            .map(|()| SessionVerdict::Identical)
                    } else {
                        // A killed or duplicated frame reaches the daemon
                        // twice; the observed reply may reflect either
                        // push, but the daemon's tracker always ends two
                        // pushes ahead (both copies carry the same raw).
                        let pushes = match class {
                            FaultClass::DuplicateFrame | FaultClass::KillConnection => 2,
                            _ => 1,
                        };
                        let tracker = trackers.entry(session_id).or_insert_with(session_tracker);
                        check_sessioned(tracker, &outcome.reply, &baseline[i], pushes)
                    };
                    match verdict {
                        Ok(SessionVerdict::Identical) => summary.bit_identical += 1,
                        Ok(SessionVerdict::Predicted) => summary.predicted += 1,
                        Err(why) => violations.push(format!("request {i} ({class}): {why}")),
                    }
                }
                FaultClass::CorruptCsi => {
                    // A warm session answers the corrupt request from the
                    // motion model (reader-side intercept); cold or
                    // stateless, the typed Malformed stands.
                    let warm = (session_id != 0)
                        .then(|| trackers.get(&session_id))
                        .flatten()
                        .and_then(|t| t.predict(SESSION_TICK_SECONDS).map(|p| (p, t.velocity())));
                    match (warm, &outcome.reply) {
                        (Some((pred, vel)), Ok(est)) => {
                            match check_predicted(est, pred, vel, DiagCheck::Zeroed) {
                                Ok(()) => summary.predicted += 1,
                                Err(why) => violations
                                    .push(format!("request {i} (corrupt-csi, warm): {why}")),
                            }
                        }
                        (Some(_), other) => violations.push(format!(
                            "request {i} (corrupt-csi): session is warm, expected a Predicted \
                             estimate, got {other:?}"
                        )),
                        (None, Err(e)) if e.code == ErrorCode::Malformed => {
                            summary.typed_errors += 1;
                        }
                        (None, other) => violations.push(format!(
                            "request {i} (corrupt-csi): expected a Malformed error, got {other:?}"
                        )),
                    }
                }
                FaultClass::InjectPanic => match &outcome.reply {
                    Err(e) if e.code == ErrorCode::Internal => summary.typed_errors += 1,
                    other => violations.push(format!(
                        "request {i} (inject-panic): expected an Internal error, got {other:?}"
                    )),
                },
                FaultClass::DropReadings => {
                    let want = match plan.drop_mode(id) {
                        DropMode::KeepOne => 2, // weighted-centroid tier
                        DropMode::DropAll => 1, // area-region tier
                    };
                    let warm = (session_id != 0 && want == 2)
                        .then(|| trackers.get(&session_id))
                        .flatten()
                        .and_then(|t| t.predict(SESSION_TICK_SECONDS).map(|p| (p, t.velocity())));
                    match (warm, &outcome.reply) {
                        // Centroid tier + warm session: promoted to
                        // Predicted at the extrapolated position.
                        (Some((pred, vel)), Ok(est)) => {
                            match check_predicted(est, pred, vel, DiagCheck::Any) {
                                Ok(()) => summary.predicted += 1,
                                Err(why) => violations
                                    .push(format!("request {i} (drop-readings, warm): {why}")),
                            }
                        }
                        (None, Ok(est)) if est.quality == want => {
                            if session_id != 0 && want == 1 {
                                // Region tier still feeds the session; the
                                // reply must carry the replayed block.
                                let tracker =
                                    trackers.entry(session_id).or_insert_with(session_tracker);
                                let raw = Point::new(est.x, est.y);
                                let smoothed = tracker.push(raw, SESSION_TICK_SECONDS);
                                match expect_block(est, &[(smoothed, tracker.velocity())]) {
                                    Ok(()) => summary.degraded += 1,
                                    Err(why) => violations
                                        .push(format!("request {i} (drop-readings): {why}")),
                                }
                            } else if est.session.is_some() {
                                violations.push(format!(
                                    "request {i} (drop-readings): cold centroid reply must not \
                                     carry a session block"
                                ));
                            } else {
                                summary.degraded += 1;
                            }
                        }
                        (_, other) => violations.push(format!(
                            "request {i} (drop-readings): expected quality tier {want}, \
                             got {other:?}"
                        )),
                    }
                }
            }
        }
        if violations.is_empty() {
            Ok(summary)
        } else {
            Err(violations)
        }
    }
}

fn check_bit_identical(
    got: &Result<WireEstimate, ErrorReply>,
    want: &Result<WireEstimate, ErrorReply>,
) -> Result<(), String> {
    match (got, want) {
        (Ok(g), Ok(w)) => {
            if estimates_bit_identical(g, w) {
                Ok(())
            } else {
                Err(format!("estimate diverged from baseline: {g:?} vs {w:?}"))
            }
        }
        (Err(g), Err(w)) if g.code == w.code => Ok(()),
        (g, w) => Err(format!("reply {g:?} does not match baseline {w:?}")),
    }
}

/// Checks a sessioned reply for a class whose stateless contract is
/// "bit-identical to baseline": the estimator's fields must still match
/// the stateless baseline exactly, while the session machinery adds (or,
/// for a warm centroid, *upgrades*) on top — verified against `tracker`,
/// the caller's replay of this session. `pushes` is how many copies of
/// the frame reached the daemon (2 for duplicated/killed frames).
fn check_sessioned(
    tracker: &mut Tracker,
    got: &Result<WireEstimate, ErrorReply>,
    want: &Result<WireEstimate, ErrorReply>,
    pushes: usize,
) -> Result<SessionVerdict, String> {
    match (got, want) {
        (Err(g), Err(w)) if g.code == w.code => Ok(SessionVerdict::Identical),
        (Ok(g), Ok(w)) => match w.quality {
            // Full/Region: the raw answer is unchanged and also feeds the
            // tracker; the reply must carry the replayed smoothed view.
            0 | 1 => {
                if !nonsession_bit_identical(g, w) {
                    return Err(format!("estimate diverged from baseline: {g:?} vs {w:?}"));
                }
                let raw = Point::new(g.x, g.y);
                let mut views = Vec::with_capacity(pushes);
                for _ in 0..pushes {
                    let smoothed = tracker.push(raw, SESSION_TICK_SECONDS);
                    views.push((smoothed, tracker.velocity()));
                }
                expect_block(g, &views)?;
                Ok(SessionVerdict::Identical)
            }
            // Centroid: a warm session is promoted to Predicted at the
            // extrapolated position (the centroid never feeds the
            // tracker); a cold one passes the baseline through untouched.
            2 => match tracker.predict(SESSION_TICK_SECONDS) {
                Some(pred) => {
                    check_predicted(g, pred, tracker.velocity(), DiagCheck::Matches(w))?;
                    Ok(SessionVerdict::Predicted)
                }
                None => {
                    if !nonsession_bit_identical(g, w) {
                        return Err(format!("estimate diverged from baseline: {g:?} vs {w:?}"));
                    }
                    if g.session.is_some() {
                        return Err("cold centroid reply must not carry a session block".into());
                    }
                    Ok(SessionVerdict::Identical)
                }
            },
            q => Err(format!(
                "stateless baseline has impossible quality tier {q}"
            )),
        },
        (g, w) => Err(format!("reply {g:?} does not match baseline {w:?}")),
    }
}

/// What a `Predicted` reply's diagnostic (LP) fields must look like.
enum DiagCheck<'a> {
    /// The reader-side intercept never ran the estimator: all zeros.
    Zeroed,
    /// The batcher upgrade preserves the underlying solve's diagnostics:
    /// they must match this baseline estimate.
    Matches(&'a WireEstimate),
    /// The underlying solve saw a faulted payload — its diagnostics are
    /// not reproducible from the baseline, so they go unchecked.
    Any,
}

/// Checks a `Predicted`-tier reply against the replayed motion model:
/// quality 3, position bit-equal to the extrapolation, and a session
/// block carrying the same view.
fn check_predicted(
    est: &WireEstimate,
    pred: Point,
    vel: Vec2,
    diag: DiagCheck<'_>,
) -> Result<(), String> {
    if est.quality != 3 {
        return Err(format!(
            "expected the Predicted tier (3), got quality {}",
            est.quality
        ));
    }
    if est.x.to_bits() != pred.x.to_bits() || est.y.to_bits() != pred.y.to_bits() {
        return Err(format!(
            "position ({}, {}) is not the replayed extrapolation ({}, {})",
            est.x, est.y, pred.x, pred.y
        ));
    }
    match diag {
        DiagCheck::Zeroed => {
            if est.relaxation_cost != 0.0
                || est.region_area != 0.0
                || est.n_constraints != 0
                || est.n_winning_pieces != 0
                || est.lp_iterations != 0
                || est.warm_start_hits != 0
                || est.phase1_pivots_saved != 0
            {
                return Err(format!(
                    "reader-side Predicted reply leaked solver diagnostics: {est:?}"
                ));
            }
        }
        DiagCheck::Matches(w) => {
            if !diagnostics_bit_identical(est, w) {
                return Err(format!(
                    "Predicted upgrade changed solver diagnostics: {est:?} vs baseline {w:?}"
                ));
            }
        }
        DiagCheck::Any => {}
    }
    expect_block(est, &[(pred, vel)])
}

/// Asserts the reply carries a session block matching one of the
/// candidate replayed views (two candidates when the daemon processed the
/// frame twice and the observed reply may reflect either push).
fn expect_block(est: &WireEstimate, views: &[(Point, Vec2)]) -> Result<(), String> {
    let Some(block) = &est.session else {
        return Err("sessioned reply is missing its session block".into());
    };
    if block.error_bound < 0.0 {
        return Err(format!("negative error bound {}", block.error_bound));
    }
    if views.iter().any(|(s, v)| {
        block.smoothed_x.to_bits() == s.x.to_bits()
            && block.smoothed_y.to_bits() == s.y.to_bits()
            && block.velocity_x.to_bits() == v.x.to_bits()
            && block.velocity_y.to_bits() == v.y.to_bits()
    }) {
        Ok(())
    } else {
        Err(format!(
            "session block {block:?} does not match the replayed tracker view(s) {views:?} — \
             smoothed by the wrong session's state (cross-wired) or by a diverged tracker"
        ))
    }
}

/// Field-by-field bit equality (`to_bits` on floats, so `-0.0 != 0.0` and
/// NaN payloads would be caught — stronger than `PartialEq`), including
/// the session block.
fn estimates_bit_identical(a: &WireEstimate, b: &WireEstimate) -> bool {
    nonsession_bit_identical(a, b) && session_blocks_bit_identical(&a.session, &b.session)
}

/// Bit equality over everything but the session block.
fn nonsession_bit_identical(a: &WireEstimate, b: &WireEstimate) -> bool {
    a.x.to_bits() == b.x.to_bits()
        && a.y.to_bits() == b.y.to_bits()
        && a.quality == b.quality
        && diagnostics_bit_identical(a, b)
}

/// Bit equality over the diagnostic (LP) fields only.
fn diagnostics_bit_identical(a: &WireEstimate, b: &WireEstimate) -> bool {
    a.relaxation_cost.to_bits() == b.relaxation_cost.to_bits()
        && a.region_area.to_bits() == b.region_area.to_bits()
        && a.n_constraints == b.n_constraints
        && a.n_winning_pieces == b.n_winning_pieces
        && a.lp_iterations == b.lp_iterations
        && a.warm_start_hits == b.warm_start_hits
        && a.phase1_pivots_saved == b.phase1_pivots_saved
}

fn session_blocks_bit_identical(a: &Option<WireSession>, b: &Option<WireSession>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x.smoothed_x.to_bits() == y.smoothed_x.to_bits()
                && x.smoothed_y.to_bits() == y.smoothed_y.to_bits()
                && x.velocity_x.to_bits() == y.velocity_x.to_bits()
                && x.velocity_y.to_bits() == y.velocity_y.to_bits()
                && x.error_bound.to_bits() == y.error_bound.to_bits()
        }
        _ => false,
    }
}

/// Drives `requests` against the daemon at `addr`, injecting the faults
/// `config.plan` assigns (request `i` gets `request_id = i`).
///
/// # Errors
///
/// Forwards connect/read/write errors that are not part of an injected
/// fault, and surfaces protocol violations (a reply for the wrong
/// request, diverging duplicate replies) as
/// [`io::ErrorKind::InvalidData`].
pub fn run(
    addr: SocketAddr,
    config: &ChaosConfig,
    requests: &[Vec<CsiReport>],
) -> io::Result<ChaosReport> {
    let plan = &config.plan;
    let mut conn: Option<Conn> = None;
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut reconnects = 0u64;
    let mut rejections_observed = 0u64;
    let mut stale_expiries = 0u64;
    for (i, reports) in requests.iter().enumerate() {
        let id = i as u64;
        let class = plan.classify(id);
        let session_id = config.session_id_for(id);
        if config.stale_sessions_live() && plan.stale_session_fires(id) {
            if let Some(table) = &config.session_table {
                // Let any straggling in-flight copy (a killed connection's
                // first send racing its resend) land before wiping state,
                // so the verifier's replayed expectation stays exact.
                std::thread::sleep(Duration::from_millis(10));
                table.expire_all();
                stale_expiries += 1;
            }
        }
        let mut wire_reports: Vec<WireReport> = reports.iter().map(WireReport::from_core).collect();
        match class {
            FaultClass::CorruptCsi => corrupt_csi(&mut wire_reports, plan, id),
            FaultClass::DropReadings => match plan.drop_mode(id) {
                DropMode::KeepOne => {
                    let keep = plan.target_report(id, wire_reports.len());
                    if !wire_reports.is_empty() {
                        let kept = wire_reports.swap_remove(keep);
                        wire_reports = vec![kept];
                    }
                }
                DropMode::DropAll => wire_reports.clear(),
            },
            _ => {}
        }
        let frame = Frame::LocateRequest(LocateRequest {
            request_id: id,
            deadline_us: 0,
            venue_id: config.venue_id,
            session_id,
            reports: wire_reports,
        });
        let bytes = wire::frame_to_vec(&frame);

        let response = match class {
            FaultClass::TruncateFrame => {
                // Cut the frame short and close mid-frame; the server
                // must discard the partial frame without replying.
                let cut = plan.truncate_len(id, bytes.len());
                let c = ensure(&mut conn, addr, config)?;
                let _ = c.write.write_all(&bytes[..cut]);
                conn = None;
                reconnects += 1;
                send_and_read(&mut conn, addr, config, &bytes, id)?
            }
            FaultClass::KillConnection => {
                // Full frame, then the connection dies before the reply
                // can land; resend on a fresh connection.
                let c = ensure(&mut conn, addr, config)?;
                let _ = c.write.write_all(&bytes);
                conn = None;
                reconnects += 1;
                send_and_read(&mut conn, addr, config, &bytes, id)?
            }
            FaultClass::CorruptFrame => {
                let (idx, mask) = plan.corrupt_byte(id, bytes.len());
                let mut corrupted = bytes.clone();
                corrupted[idx] ^= mask;
                let c = ensure(&mut conn, addr, config)?;
                let _ = c.write.write_all(&corrupted);
                // Most flips draw an immediate `Malformed` for id 0 and a
                // close; a flip in the length field instead leaves the
                // server waiting for more bytes. Probe briefly, then burn
                // the connection either way.
                c.reader.set_read_timeout(config.reject_probe)?;
                if let Ok(resp) = c.reader.next_response() {
                    if resp.request_id == 0
                        && matches!(&resp.outcome, Err(e) if e.code == ErrorCode::Malformed)
                    {
                        rejections_observed += 1;
                    }
                }
                conn = None;
                reconnects += 1;
                send_and_read(&mut conn, addr, config, &bytes, id)?
            }
            FaultClass::DelayFrame => {
                let (split, pause) = plan.delay_split(id, bytes.len());
                let c = ensure(&mut conn, addr, config)?;
                c.write.write_all(&bytes[..split])?;
                c.write.flush()?;
                std::thread::sleep(pause);
                c.write.write_all(&bytes[split..])?;
                read_reply(c, id)?
            }
            FaultClass::DuplicateFrame => {
                let c = ensure(&mut conn, addr, config)?;
                c.write.write_all(&bytes)?;
                c.write.write_all(&bytes)?;
                let first = read_reply(c, id)?;
                let second = read_reply(c, id)?;
                if !replies_agree(&first, &second) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("duplicate replies for request {id} diverged"),
                    ));
                }
                first
            }
            // Payload-level or server-side faults travel on a clean frame.
            FaultClass::None
            | FaultClass::CorruptCsi
            | FaultClass::DropReadings
            | FaultClass::InjectPanic => send_and_read(&mut conn, addr, config, &bytes, id)?,
        };
        outcomes.push(ChaosOutcome {
            class,
            reply: response,
        });
    }
    Ok(ChaosReport {
        outcomes,
        reconnects,
        rejections_observed,
        stale_expiries,
    })
}

/// One sequential connection: a write half plus an incremental reader.
struct Conn {
    write: TcpStream,
    reader: ResponseReader,
}

impl Conn {
    fn connect(addr: SocketAddr, config: &ChaosConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        let write = stream.try_clone()?;
        Ok(Conn {
            write,
            reader: ResponseReader::new(stream),
        })
    }
}

fn ensure<'a>(
    conn: &'a mut Option<Conn>,
    addr: SocketAddr,
    config: &ChaosConfig,
) -> io::Result<&'a mut Conn> {
    if conn.is_none() {
        *conn = Some(Conn::connect(addr, config)?);
    }
    Ok(conn.as_mut().expect("just connected"))
}

/// Sends the intact frame (connecting first if needed) and reads its reply.
fn send_and_read(
    conn: &mut Option<Conn>,
    addr: SocketAddr,
    config: &ChaosConfig,
    bytes: &[u8],
    id: u64,
) -> io::Result<Result<WireEstimate, ErrorReply>> {
    let c = ensure(conn, addr, config)?;
    c.reader.set_read_timeout(config.read_timeout)?;
    c.write.write_all(bytes)?;
    read_reply(c, id)
}

fn read_reply(c: &mut Conn, id: u64) -> io::Result<Result<WireEstimate, ErrorReply>> {
    let resp: LocateResponse = c.reader.next_response()?;
    if resp.request_id != id {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "reply for request {} while waiting on {id}",
                resp.request_id
            ),
        ));
    }
    Ok(resp.outcome)
}

/// Duplicate replies must agree on everything the estimator produced; the
/// session block is exempt — the second copy of a Full/Region frame
/// legitimately advances the tracker one more tick, and a warm-centroid
/// upgrade moves both copies off the baseline identically anyway.
fn replies_agree(
    a: &Result<WireEstimate, ErrorReply>,
    b: &Result<WireEstimate, ErrorReply>,
) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => nonsession_bit_identical(x, y),
        (Err(x), Err(y)) => x.code == y.code,
        _ => false,
    }
}

/// Applies the plan's [`CsiCorruption`] to the targeted report. Every
/// mode yields a request the wire layer's semantic validation rejects;
/// modes that would be a no-op on degenerate shapes (a single-subcarrier
/// grid cannot "descend") fall back to the NaN-position corruption so the
/// contract stays unambiguous.
fn corrupt_csi(reports: &mut [WireReport], plan: &FaultPlan, id: u64) {
    if reports.is_empty() {
        return;
    }
    let t = plan.target_report(id, reports.len());
    let r = &mut reports[t];
    let mode = plan.csi_corruption(id);
    let nan_position = |r: &mut WireReport| r.x = f64::NAN;
    match mode {
        CsiCorruption::NanPosition => nan_position(r),
        CsiCorruption::InfOffset => match r.burst.first_mut() {
            Some(s) if !s.offsets_hz.is_empty() => {
                *s.offsets_hz.last_mut().expect("non-empty") = f64::INFINITY;
            }
            _ => nan_position(r),
        },
        CsiCorruption::DescendingOffsets => match r.burst.first_mut() {
            Some(s) if s.offsets_hz.len() >= 2 => s.offsets_hz.reverse(),
            _ => nan_position(r),
        },
        CsiCorruption::EmptyH => match r.burst.first_mut() {
            Some(s) => s.h.clear(),
            None => nan_position(r),
        },
        CsiCorruption::MismatchedH => match r.burst.first_mut() {
            Some(s) if !s.h.is_empty() => {
                s.h.pop();
            }
            _ => nan_position(r),
        },
        CsiCorruption::ZeroedSubcarriers => {
            if r.burst.is_empty() {
                nan_position(r);
            }
            for s in &mut r.burst {
                for c in &mut s.h {
                    *c = (0.0, 0.0);
                }
                if let Some(o) = s.offsets_hz.first_mut() {
                    *o = f64::NAN;
                }
            }
        }
    }
}
