//! The chaos driver: replays a workload against a live daemon while
//! injecting every [`FaultClass`] from a shared [`FaultPlan`], then
//! verifies the per-class serving contract against a fault-free baseline.
//!
//! The client, the daemon, and the verifier all hold the *same* plan, and
//! every fault decision is a pure function of `(seed, request_id)` — so
//! the client knows which frame to mangle, the daemon knows which solve
//! to panic, and the verifier independently predicts the expected outcome
//! of every request:
//!
//! | class | injected by | expected reply |
//! |---|---|---|
//! | `None` | — | `Ok`, bit-identical to the baseline |
//! | `CorruptCsi` | client (payload) | typed `Malformed` error |
//! | `DropReadings` | client (payload) | `Ok`, degraded quality tier |
//! | `TruncateFrame` | client (transport) | baseline `Ok` after clean retry |
//! | `CorruptFrame` | client (transport) | baseline `Ok` after clean retry |
//! | `DuplicateFrame` | client (transport) | baseline `Ok`, twice, identical |
//! | `DelayFrame` | client (transport) | baseline `Ok` (split write) |
//! | `KillConnection` | client (transport) | baseline `Ok` after resend |
//! | `InjectPanic` | daemon (compute) | typed `Internal` error |
//!
//! Requests are driven sequentially over one connection (reconnecting as
//! the faults demand), so each reply is unambiguously paired with its
//! request and the daemon's determinism makes the bit-identity assertion
//! meaningful.

use crate::loadgen::ResponseReader;
use crate::wire::{
    self, ErrorCode, ErrorReply, Frame, LocateRequest, LocateResponse, WireEstimate, WireReport,
};
use nomloc_core::server::CsiReport;
use nomloc_faults::{CsiCorruption, DropMode, FaultClass, FaultPlan, FAULT_CLASSES};
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Chaos-driver configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The shared fault plan (also hand it to the daemon via
    /// [`crate::DaemonConfig::fault_plan`] so `InjectPanic` fires).
    pub plan: FaultPlan,
    /// Read timeout for normal replies.
    pub read_timeout: Duration,
    /// How long to wait for the server's `Malformed` rejection of a
    /// corrupted frame before giving up on observing it (a flip that hits
    /// the length field leaves the server waiting for bytes instead).
    pub reject_probe: Duration,
    /// The venue every request in this run targets (0 = the daemon's
    /// resident venue). One chaos run exercises one venue; venue-isolation
    /// tests run two drivers against different venues concurrently.
    pub venue_id: u64,
}

impl ChaosConfig {
    /// Default timeouts around `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        ChaosConfig {
            plan,
            read_timeout: Duration::from_secs(10),
            reject_probe: Duration::from_millis(250),
            venue_id: 0,
        }
    }
}

/// The reply one chaos-driven request ended up with.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The fault class the plan assigned to this request.
    pub class: FaultClass,
    /// The final reply (after any clean retry the class calls for).
    pub reply: Result<WireEstimate, ErrorReply>,
}

/// The result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// One outcome per request, indexed like the input workload.
    pub outcomes: Vec<ChaosOutcome>,
    /// Fresh connections opened after a transport fault burned one.
    pub reconnects: u64,
    /// Corrupted frames the server was *observed* rejecting with a
    /// protocol-level `Malformed` before the clean retry.
    pub rejections_observed: u64,
}

/// Aggregate counts from a verified chaos run.
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// Requests driven.
    pub total: usize,
    /// Requests the plan faulted (class != `None`).
    pub faulted: usize,
    /// Replies required — and verified — to be bit-identical to the
    /// fault-free baseline.
    pub bit_identical: usize,
    /// Requests answered with the typed error their fault class demands.
    pub typed_errors: usize,
    /// Requests answered with a degraded-quality estimate as demanded.
    pub degraded: usize,
    /// Request count per fault class, in [`FAULT_CLASSES`] order with
    /// `None` appended last.
    pub per_class: Vec<(FaultClass, usize)>,
}

impl ChaosSummary {
    /// Renders the summary for terminal output.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "chaos: {} requests, {} faulted — bit-identical {} | typed errors {} | degraded {}\n",
            self.total, self.faulted, self.bit_identical, self.typed_errors, self.degraded
        );
        out.push_str("  per class:");
        for (class, n) in &self.per_class {
            out.push_str(&format!(" {class} {n}"));
        }
        out.push('\n');
        out
    }
}

impl ChaosReport {
    /// Checks every outcome against the per-class contract (table in the
    /// module docs), using `baseline[i]` as the fault-free reply to
    /// request `i`.
    ///
    /// # Errors
    ///
    /// Returns one message per violated request.
    pub fn verify(
        &self,
        plan: &FaultPlan,
        baseline: &[Result<WireEstimate, ErrorReply>],
    ) -> Result<ChaosSummary, Vec<String>> {
        let mut violations = Vec::new();
        let mut summary = ChaosSummary {
            total: self.outcomes.len(),
            faulted: 0,
            bit_identical: 0,
            typed_errors: 0,
            degraded: 0,
            per_class: FAULT_CLASSES
                .iter()
                .copied()
                .chain(std::iter::once(FaultClass::None))
                .map(|c| (c, 0))
                .collect(),
        };
        for (i, outcome) in self.outcomes.iter().enumerate() {
            let class = outcome.class;
            if let Some(slot) = summary.per_class.iter_mut().find(|(c, _)| *c == class) {
                slot.1 += 1;
            }
            if class != FaultClass::None {
                summary.faulted += 1;
            }
            match class {
                FaultClass::None
                | FaultClass::TruncateFrame
                | FaultClass::CorruptFrame
                | FaultClass::DuplicateFrame
                | FaultClass::DelayFrame
                | FaultClass::KillConnection => {
                    match check_bit_identical(&outcome.reply, &baseline[i]) {
                        Ok(()) => summary.bit_identical += 1,
                        Err(why) => violations.push(format!("request {i} ({class}): {why}")),
                    }
                }
                FaultClass::CorruptCsi => match &outcome.reply {
                    Err(e) if e.code == ErrorCode::Malformed => summary.typed_errors += 1,
                    other => violations.push(format!(
                        "request {i} (corrupt-csi): expected a Malformed error, got {other:?}"
                    )),
                },
                FaultClass::InjectPanic => match &outcome.reply {
                    Err(e) if e.code == ErrorCode::Internal => summary.typed_errors += 1,
                    other => violations.push(format!(
                        "request {i} (inject-panic): expected an Internal error, got {other:?}"
                    )),
                },
                FaultClass::DropReadings => {
                    let want = match plan.drop_mode(i as u64) {
                        DropMode::KeepOne => 2, // weighted-centroid tier
                        DropMode::DropAll => 1, // area-region tier
                    };
                    match &outcome.reply {
                        Ok(est) if est.quality == want => summary.degraded += 1,
                        other => violations.push(format!(
                            "request {i} (drop-readings): expected quality tier {want}, \
                             got {other:?}"
                        )),
                    }
                }
            }
        }
        if violations.is_empty() {
            Ok(summary)
        } else {
            Err(violations)
        }
    }
}

fn check_bit_identical(
    got: &Result<WireEstimate, ErrorReply>,
    want: &Result<WireEstimate, ErrorReply>,
) -> Result<(), String> {
    match (got, want) {
        (Ok(g), Ok(w)) => {
            if estimates_bit_identical(g, w) {
                Ok(())
            } else {
                Err(format!("estimate diverged from baseline: {g:?} vs {w:?}"))
            }
        }
        (Err(g), Err(w)) if g.code == w.code => Ok(()),
        (g, w) => Err(format!("reply {g:?} does not match baseline {w:?}")),
    }
}

/// Field-by-field bit equality (`to_bits` on floats, so `-0.0 != 0.0` and
/// NaN payloads would be caught — stronger than `PartialEq`).
fn estimates_bit_identical(a: &WireEstimate, b: &WireEstimate) -> bool {
    a.x.to_bits() == b.x.to_bits()
        && a.y.to_bits() == b.y.to_bits()
        && a.relaxation_cost.to_bits() == b.relaxation_cost.to_bits()
        && a.region_area.to_bits() == b.region_area.to_bits()
        && a.n_constraints == b.n_constraints
        && a.n_winning_pieces == b.n_winning_pieces
        && a.lp_iterations == b.lp_iterations
        && a.warm_start_hits == b.warm_start_hits
        && a.phase1_pivots_saved == b.phase1_pivots_saved
        && a.quality == b.quality
}

/// Drives `requests` against the daemon at `addr`, injecting the faults
/// `config.plan` assigns (request `i` gets `request_id = i`).
///
/// # Errors
///
/// Forwards connect/read/write errors that are not part of an injected
/// fault, and surfaces protocol violations (a reply for the wrong
/// request, diverging duplicate replies) as
/// [`io::ErrorKind::InvalidData`].
pub fn run(
    addr: SocketAddr,
    config: &ChaosConfig,
    requests: &[Vec<CsiReport>],
) -> io::Result<ChaosReport> {
    let plan = &config.plan;
    let mut conn: Option<Conn> = None;
    let mut outcomes = Vec::with_capacity(requests.len());
    let mut reconnects = 0u64;
    let mut rejections_observed = 0u64;
    for (i, reports) in requests.iter().enumerate() {
        let id = i as u64;
        let class = plan.classify(id);
        let mut wire_reports: Vec<WireReport> = reports.iter().map(WireReport::from_core).collect();
        match class {
            FaultClass::CorruptCsi => corrupt_csi(&mut wire_reports, plan, id),
            FaultClass::DropReadings => match plan.drop_mode(id) {
                DropMode::KeepOne => {
                    let keep = plan.target_report(id, wire_reports.len());
                    if !wire_reports.is_empty() {
                        let kept = wire_reports.swap_remove(keep);
                        wire_reports = vec![kept];
                    }
                }
                DropMode::DropAll => wire_reports.clear(),
            },
            _ => {}
        }
        let frame = Frame::LocateRequest(LocateRequest {
            request_id: id,
            deadline_us: 0,
            venue_id: config.venue_id,
            reports: wire_reports,
        });
        let bytes = wire::frame_to_vec(&frame);

        let response = match class {
            FaultClass::TruncateFrame => {
                // Cut the frame short and close mid-frame; the server
                // must discard the partial frame without replying.
                let cut = plan.truncate_len(id, bytes.len());
                let c = ensure(&mut conn, addr, config)?;
                let _ = c.write.write_all(&bytes[..cut]);
                conn = None;
                reconnects += 1;
                send_and_read(&mut conn, addr, config, &bytes, id)?
            }
            FaultClass::KillConnection => {
                // Full frame, then the connection dies before the reply
                // can land; resend on a fresh connection.
                let c = ensure(&mut conn, addr, config)?;
                let _ = c.write.write_all(&bytes);
                conn = None;
                reconnects += 1;
                send_and_read(&mut conn, addr, config, &bytes, id)?
            }
            FaultClass::CorruptFrame => {
                let (idx, mask) = plan.corrupt_byte(id, bytes.len());
                let mut corrupted = bytes.clone();
                corrupted[idx] ^= mask;
                let c = ensure(&mut conn, addr, config)?;
                let _ = c.write.write_all(&corrupted);
                // Most flips draw an immediate `Malformed` for id 0 and a
                // close; a flip in the length field instead leaves the
                // server waiting for more bytes. Probe briefly, then burn
                // the connection either way.
                c.reader.set_read_timeout(config.reject_probe)?;
                if let Ok(resp) = c.reader.next_response() {
                    if resp.request_id == 0
                        && matches!(&resp.outcome, Err(e) if e.code == ErrorCode::Malformed)
                    {
                        rejections_observed += 1;
                    }
                }
                conn = None;
                reconnects += 1;
                send_and_read(&mut conn, addr, config, &bytes, id)?
            }
            FaultClass::DelayFrame => {
                let (split, pause) = plan.delay_split(id, bytes.len());
                let c = ensure(&mut conn, addr, config)?;
                c.write.write_all(&bytes[..split])?;
                c.write.flush()?;
                std::thread::sleep(pause);
                c.write.write_all(&bytes[split..])?;
                read_reply(c, id)?
            }
            FaultClass::DuplicateFrame => {
                let c = ensure(&mut conn, addr, config)?;
                c.write.write_all(&bytes)?;
                c.write.write_all(&bytes)?;
                let first = read_reply(c, id)?;
                let second = read_reply(c, id)?;
                if !replies_agree(&first, &second) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("duplicate replies for request {id} diverged"),
                    ));
                }
                first
            }
            // Payload-level or server-side faults travel on a clean frame.
            FaultClass::None
            | FaultClass::CorruptCsi
            | FaultClass::DropReadings
            | FaultClass::InjectPanic => send_and_read(&mut conn, addr, config, &bytes, id)?,
        };
        outcomes.push(ChaosOutcome {
            class,
            reply: response,
        });
    }
    Ok(ChaosReport {
        outcomes,
        reconnects,
        rejections_observed,
    })
}

/// One sequential connection: a write half plus an incremental reader.
struct Conn {
    write: TcpStream,
    reader: ResponseReader,
}

impl Conn {
    fn connect(addr: SocketAddr, config: &ChaosConfig) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(config.read_timeout))?;
        let write = stream.try_clone()?;
        Ok(Conn {
            write,
            reader: ResponseReader::new(stream),
        })
    }
}

fn ensure<'a>(
    conn: &'a mut Option<Conn>,
    addr: SocketAddr,
    config: &ChaosConfig,
) -> io::Result<&'a mut Conn> {
    if conn.is_none() {
        *conn = Some(Conn::connect(addr, config)?);
    }
    Ok(conn.as_mut().expect("just connected"))
}

/// Sends the intact frame (connecting first if needed) and reads its reply.
fn send_and_read(
    conn: &mut Option<Conn>,
    addr: SocketAddr,
    config: &ChaosConfig,
    bytes: &[u8],
    id: u64,
) -> io::Result<Result<WireEstimate, ErrorReply>> {
    let c = ensure(conn, addr, config)?;
    c.reader.set_read_timeout(config.read_timeout)?;
    c.write.write_all(bytes)?;
    read_reply(c, id)
}

fn read_reply(c: &mut Conn, id: u64) -> io::Result<Result<WireEstimate, ErrorReply>> {
    let resp: LocateResponse = c.reader.next_response()?;
    if resp.request_id != id {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "reply for request {} while waiting on {id}",
                resp.request_id
            ),
        ));
    }
    Ok(resp.outcome)
}

fn replies_agree(
    a: &Result<WireEstimate, ErrorReply>,
    b: &Result<WireEstimate, ErrorReply>,
) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => estimates_bit_identical(x, y),
        (Err(x), Err(y)) => x.code == y.code,
        _ => false,
    }
}

/// Applies the plan's [`CsiCorruption`] to the targeted report. Every
/// mode yields a request the wire layer's semantic validation rejects;
/// modes that would be a no-op on degenerate shapes (a single-subcarrier
/// grid cannot "descend") fall back to the NaN-position corruption so the
/// contract stays unambiguous.
fn corrupt_csi(reports: &mut [WireReport], plan: &FaultPlan, id: u64) {
    if reports.is_empty() {
        return;
    }
    let t = plan.target_report(id, reports.len());
    let r = &mut reports[t];
    let mode = plan.csi_corruption(id);
    let nan_position = |r: &mut WireReport| r.x = f64::NAN;
    match mode {
        CsiCorruption::NanPosition => nan_position(r),
        CsiCorruption::InfOffset => match r.burst.first_mut() {
            Some(s) if !s.offsets_hz.is_empty() => {
                *s.offsets_hz.last_mut().expect("non-empty") = f64::INFINITY;
            }
            _ => nan_position(r),
        },
        CsiCorruption::DescendingOffsets => match r.burst.first_mut() {
            Some(s) if s.offsets_hz.len() >= 2 => s.offsets_hz.reverse(),
            _ => nan_position(r),
        },
        CsiCorruption::EmptyH => match r.burst.first_mut() {
            Some(s) => s.h.clear(),
            None => nan_position(r),
        },
        CsiCorruption::MismatchedH => match r.burst.first_mut() {
            Some(s) if !s.h.is_empty() => {
                s.h.pop();
            }
            _ => nan_position(r),
        },
        CsiCorruption::ZeroedSubcarriers => {
            if r.burst.is_empty() {
                nan_position(r);
            }
            for s in &mut r.burst {
                for c in &mut s.h {
                    *c = (0.0, 0.0);
                }
                if let Some(o) = s.offsets_hz.first_mut() {
                    *o = f64::NAN;
                }
            }
        }
    }
}
