//! A multi-connection load generator for the `nomloc-net` daemon.
//!
//! Drives a pre-generated request workload over `connections` parallel
//! TCP connections with full pipelining (every request is written without
//! waiting for its response), which is exactly the traffic shape the
//! daemon's cross-connection micro-batcher is built for. Per-request
//! latency is measured from the moment the frame is written to the moment
//! its response frame is decoded; quantiles are exact (computed from the
//! sorted sample set, not a histogram).

use crate::wire::{self, ErrorCode, ErrorReply, Frame, LocateRequest, WireEstimate, WireReport};
use nomloc_core::server::CsiReport;
use nomloc_faults::mix64;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Parallel TCP connections (requests are strided across them).
    pub connections: usize,
    /// Per-request deadline forwarded to the server, µs (0 = none).
    pub deadline_us: u32,
    /// Client-side read timeout per connection — a stuck server surfaces
    /// as an I/O error instead of a hang.
    pub read_timeout: Duration,
    /// How many times each connection may reconnect after a transport
    /// failure (reset, EOF, refused…) before giving up. Only requests
    /// still unanswered are resent on the fresh connection.
    pub max_reconnects: usize,
    /// Base delay of the capped exponential reconnect backoff; attempt
    /// `k` sleeps `base · 2^min(k-1, 5)` plus a deterministic jitter in
    /// `[0, base)` keyed on the connection index and attempt number.
    pub reconnect_backoff: Duration,
    /// Extra connections opened before the workload starts and held idle
    /// (no frames ever written) until every response is in — the
    /// mostly-idle soak shape of crowdsourced CSI traffic. Opened
    /// best-effort: the run proceeds with however many the OS allows,
    /// and [`LoadgenReport::idle_held`] reports the count actually held.
    pub idle_connections: usize,
    /// Venue ids traffic is spread over, rank-ordered hottest first (the
    /// zipf head is `venues[0]`). Empty sends everything to venue 0, the
    /// daemon's resident venue.
    pub venues: Vec<u64>,
    /// Zipf exponent `s` for the over-venues traffic skew: rank `k`
    /// (1-based) receives weight `1/k^s`. `0.0` is uniform; real fleet
    /// traffic is closer to `1.0`.
    pub zipf_s: f64,
    /// Seed for the deterministic request → venue assignment.
    pub zipf_seed: u64,
    /// Sessioned traffic: each connection becomes one long-lived session
    /// (`session_id = 1 + connection index`), carried across
    /// reconnect-and-resend so a session survives its transport dying.
    /// Replies then smooth through the daemon's session plane and the
    /// report breaks out the per-session smoothed-vs-raw deviation.
    pub sessions: bool,
    /// Closed-loop worker count. `0` (the default) keeps the open-loop
    /// fully pipelined shape. `N > 0` drives the workload with `N`
    /// synchronous workers instead — each on its own connection, sending
    /// one request and waiting for its reply before the next — the shape
    /// that measures contended dispatch throughput (aggregate RPS and
    /// per-worker p99) rather than pipelined batching latency. Overrides
    /// `connections`.
    pub concurrency: usize,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 4,
            deadline_us: 0,
            read_timeout: Duration::from_secs(30),
            max_reconnects: 5,
            reconnect_backoff: Duration::from_millis(10),
            idle_connections: 0,
            venues: Vec::new(),
            zipf_s: 1.0,
            zipf_seed: 0,
            sessions: false,
            concurrency: 0,
        }
    }
}

/// Deterministic zipf-over-venues traffic assignment.
///
/// Request `i` hashes (via [`mix64`]) to a uniform sample that is pushed
/// through the zipf(`s`) CDF over the venue list, so the same
/// `(venues, s, seed)` triple always yields the same assignment — the
/// loadgen stamps it into the frame, and verifiers (the CLI's per-venue
/// breakdown, the bench bins, tests) recompute it independently.
#[derive(Debug, Clone)]
pub struct VenuePicker {
    venues: Vec<u64>,
    cdf: Vec<f64>,
    seed: u64,
}

impl VenuePicker {
    /// Builds the CDF once; `venues` is hottest-first rank order.
    pub fn new(venues: &[u64], s: f64, seed: u64) -> Self {
        let mut cdf = Vec::with_capacity(venues.len());
        let mut total = 0.0f64;
        for k in 0..venues.len() {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        VenuePicker {
            venues: venues.to_vec(),
            cdf,
            seed,
        }
    }

    /// The picker a config describes.
    pub fn from_config(config: &LoadgenConfig) -> Self {
        VenuePicker::new(&config.venues, config.zipf_s, config.zipf_seed)
    }

    /// The venue request `request_id` travels to (venue 0 when the venue
    /// list is empty).
    pub fn pick(&self, request_id: u64) -> u64 {
        if self.venues.is_empty() {
            return 0;
        }
        // 53 mantissa-exact bits of the hash → uniform in [0, 1).
        let u = (mix64(self.seed, request_id) >> 11) as f64 / (1u64 << 53) as f64;
        let rank = self
            .cdf
            .partition_point(|&c| c <= u)
            .min(self.venues.len() - 1);
        self.venues[rank]
    }
}

/// Transport failures worth a reconnect; anything else (a protocol
/// violation, an unexpected frame) stays fatal so bugs are not retried
/// into silence.
fn is_reconnectable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// The backoff before reconnect `attempt` (1-based) on connection `conn`:
/// capped exponential growth plus a deterministic sub-`base` jitter so
/// many clients reconnecting at once do not stampede in lockstep.
fn reconnect_delay(base: Duration, conn: u64, attempt: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.saturating_sub(1).min(5) as u32);
    let base_ns = base.as_nanos().min(u128::from(u64::MAX)) as u64;
    let jitter_ns = if base_ns == 0 {
        0
    } else {
        mix64(conn, attempt) % base_ns
    };
    exp + Duration::from_nanos(jitter_ns)
}

/// The reply to one request, with its measured round-trip latency.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestOutcome {
    /// Round-trip latency (write of the request → decode of the reply).
    pub latency: Duration,
    /// The estimate, or the per-request error the server returned.
    pub reply: Result<WireEstimate, ErrorReply>,
}

/// The result of one load-generator run.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// One outcome per request, indexed like the input slice.
    pub outcomes: Vec<RequestOutcome>,
    /// Wall-clock time from first connect to last response.
    pub elapsed: Duration,
    /// Reconnects performed across all connections.
    pub reconnects: u64,
    /// Idle connections actually held open for the whole run (see
    /// [`LoadgenConfig::idle_connections`]).
    pub idle_held: usize,
    /// Connections actually driven (the request → session mapping key).
    pub connections: usize,
    /// Whether the run carried session ids (see
    /// [`LoadgenConfig::sessions`]).
    pub sessions_enabled: bool,
    /// Closed-loop worker count the run was driven with (0 = open-loop
    /// pipelined; see [`LoadgenConfig::concurrency`]).
    pub concurrency: usize,
}

impl LoadgenReport {
    /// Requests answered with an estimate.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.reply.is_ok()).count()
    }

    /// Requests answered with the given error code.
    pub fn error_count(&self, code: ErrorCode) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(&o.reply, Err(e) if e.code == code))
            .count()
    }

    /// Requests answered with an estimate of the given quality tier
    /// (the wire encoding of [`nomloc_core::EstimateQuality`]).
    pub fn quality_count(&self, tier: u8) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(&o.reply, Ok(e) if e.quality == tier))
            .count()
    }

    /// Completed requests per second of wall-clock time.
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.elapsed.as_secs_f64()
    }

    /// Exact latency quantile `q ∈ [0, 1]` over all responses.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        Self::quantile_of(self.outcomes.iter().map(|o| o.latency).collect(), q)
    }

    fn quantile_of(mut lat: Vec<Duration>, q: f64) -> Duration {
        if lat.is_empty() {
            return Duration::ZERO;
        }
        lat.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * lat.len() as f64).ceil() as usize).max(1);
        lat[rank - 1]
    }

    /// Per-worker exact latency quantiles for a closed-loop run: worker
    /// `w` owns requests `i % concurrency == w`. Empty for open-loop
    /// runs.
    pub fn per_worker_quantile(&self, q: f64) -> Vec<Duration> {
        (0..self.concurrency)
            .map(|w| {
                Self::quantile_of(
                    self.outcomes
                        .iter()
                        .skip(w)
                        .step_by(self.concurrency)
                        .map(|o| o.latency)
                        .collect(),
                    q,
                )
            })
            .collect()
    }

    /// Per-session smoothed-vs-raw deviation: for every Full/Region reply
    /// that carried a session block, the distance between the raw estimate
    /// and the session's smoothed position. Returns
    /// `(session_id, samples, mean deviation in metres)` per session,
    /// ascending by id; empty for stateless runs. A wildly large mean
    /// would indicate the session plane smoothing against the wrong
    /// track (cross-wiring) — the chaos verifier checks that exactly,
    /// this is the fleet-facing summary of the same signal.
    pub fn session_deviations(&self) -> Vec<(u64, usize, f64)> {
        if !self.sessions_enabled || self.connections == 0 {
            return Vec::new();
        }
        let mut acc: std::collections::BTreeMap<u64, (usize, f64)> =
            std::collections::BTreeMap::new();
        for (i, o) in self.outcomes.iter().enumerate() {
            let session_id = 1 + (i % self.connections) as u64;
            if let Ok(est) = &o.reply {
                if est.quality <= 1 {
                    if let Some(block) = &est.session {
                        let d = ((est.x - block.smoothed_x).powi(2)
                            + (est.y - block.smoothed_y).powi(2))
                        .sqrt();
                        if d.is_finite() {
                            let e = acc.entry(session_id).or_insert((0, 0.0));
                            e.0 += 1;
                            e.1 += d;
                        }
                    }
                }
            }
        }
        acc.into_iter()
            .map(|(sid, (n, sum))| (sid, n, sum / n.max(1) as f64))
            .collect()
    }

    /// Renders throughput plus p50/p95/p99 latency and outcome counts.
    pub fn render(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        let typed_failures = self.error_count(ErrorCode::EstimateFailed)
            + self.error_count(ErrorCode::InsufficientJudgements)
            + self.error_count(ErrorCode::LpInfeasible)
            + self.error_count(ErrorCode::LpNumerical);
        let idle = if self.idle_held > 0 {
            format!(" with {} idle connections held", self.idle_held)
        } else {
            String::new()
        };
        let mut out = format!(
            "loadgen: {} requests in {:.1} ms — {:.0} req/s ({} reconnects){idle}\n\
             latency p50 {:.3} ms | p95 {:.3} ms | p99 {:.3} ms\n\
             ok {} | estimate-failed {} | malformed {} | overloaded {} | deadline {} | internal {}\n\
             quality full {} | region {} | centroid {} | predicted {}\n",
            self.outcomes.len(),
            ms(self.elapsed),
            self.throughput_rps(),
            self.reconnects,
            ms(self.latency_quantile(0.50)),
            ms(self.latency_quantile(0.95)),
            ms(self.latency_quantile(0.99)),
            self.ok_count(),
            typed_failures,
            self.error_count(ErrorCode::Malformed),
            self.error_count(ErrorCode::Overloaded),
            self.error_count(ErrorCode::DeadlineExceeded),
            self.error_count(ErrorCode::Internal),
            self.quality_count(0),
            self.quality_count(1),
            self.quality_count(2),
            self.quality_count(3),
        );
        if self.concurrency > 0 {
            let p99s = self.per_worker_quantile(0.99);
            let worst = p99s.iter().copied().max().unwrap_or(Duration::ZERO);
            out.push_str(&format!(
                "  closed-loop: {} workers | worst per-worker p99 {:.3} ms\n",
                self.concurrency,
                ms(worst),
            ));
        }
        for (sid, n, mean) in self.session_deviations() {
            out.push_str(&format!(
                "  session {sid}: {n} smoothed replies, raw-vs-smoothed mean {mean:.3} m\n"
            ));
        }
        out
    }
}

/// Runs the workload against a daemon at `addr`.
///
/// Request `i` travels on connection `i % connections` with
/// `request_id = i`; the returned outcomes are indexed the same way, so
/// `outcomes[i]` answers `requests[i]` and can be compared directly
/// against an in-process `process_batch` run over the same slice.
///
/// # Errors
///
/// Forwards connect/read/write errors and surfaces protocol violations
/// from the server as [`io::ErrorKind::InvalidData`].
pub fn run(
    addr: SocketAddr,
    config: &LoadgenConfig,
    requests: &[Vec<CsiReport>],
) -> io::Result<LoadgenReport> {
    let n = requests.len();
    let closed_loop = config.concurrency > 0;
    let connections = if closed_loop {
        config.concurrency.clamp(1, n.max(1))
    } else {
        config.connections.clamp(1, n.max(1))
    };
    let outcomes: Vec<Mutex<Option<RequestOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let reconnects = AtomicU64::new(0);
    // The idle herd connects before the clock starts (it models
    // *pre-existing* mostly-idle clients, not connection-setup load) and
    // is held until every response is in. Best-effort: stop at the first
    // failure (e.g. fd exhaustion) and report what was actually held.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(config.idle_connections);
    for _ in 0..config.idle_connections {
        match TcpStream::connect(addr) {
            Ok(stream) => idle.push(stream),
            Err(_) => break,
        }
    }
    let idle_held = idle.len();
    let start = Instant::now();
    let errors: Mutex<Vec<io::Error>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for c in 0..connections {
            let outcomes = &outcomes;
            let errors = &errors;
            let reconnects = &reconnects;
            scope.spawn(move || {
                if let Err(e) = drive_connection(
                    addr,
                    config,
                    requests,
                    c,
                    connections,
                    outcomes,
                    reconnects,
                    closed_loop,
                ) {
                    errors.lock().unwrap().push(e);
                }
            });
        }
    });
    if let Some(e) = errors.into_inner().unwrap().into_iter().next() {
        return Err(e);
    }
    let elapsed = start.elapsed();
    drop(idle); // held across the whole active workload
    let outcomes = outcomes
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every request received a response")
        })
        .collect();
    Ok(LoadgenReport {
        outcomes,
        elapsed,
        reconnects: reconnects.into_inner(),
        idle_held,
        connections,
        sessions_enabled: config.sessions,
        concurrency: if closed_loop { connections } else { 0 },
    })
}

/// Drives the requests with `index % connections == conn`, reconnecting
/// (with capped exponential backoff) after transport failures and
/// resending only the requests still unanswered.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    addr: SocketAddr,
    config: &LoadgenConfig,
    requests: &[Vec<CsiReport>],
    conn: usize,
    connections: usize,
    outcomes: &[Mutex<Option<RequestOutcome>>],
    reconnects: &AtomicU64,
    closed_loop: bool,
) -> io::Result<()> {
    let all: Vec<usize> = (conn..requests.len()).step_by(connections).collect();
    if all.is_empty() {
        return Ok(());
    }
    let mut attempt = 0u64;
    loop {
        // `all` is ascending, so the filtered view stays sorted and the
        // reader's binary search keeps working across attempts.
        let unanswered: Vec<usize> = all
            .iter()
            .copied()
            .filter(|&i| outcomes[i].lock().unwrap().is_none())
            .collect();
        if unanswered.is_empty() {
            return Ok(());
        }
        let pass = if closed_loop {
            drive_once_closed(addr, config, requests, &unanswered, outcomes, conn)
        } else {
            drive_once(addr, config, requests, &unanswered, outcomes, conn)
        };
        match pass {
            Ok(()) => return Ok(()),
            Err(e) if is_reconnectable(&e) && (attempt as usize) < config.max_reconnects => {
                attempt += 1;
                reconnects.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(reconnect_delay(
                    config.reconnect_backoff,
                    conn as u64,
                    attempt,
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

/// One pipelined pass over `indices` on a fresh connection: a sender
/// thread writes every frame while this thread decodes responses until
/// all are in.
fn drive_once(
    addr: SocketAddr,
    config: &LoadgenConfig,
    requests: &[Vec<CsiReport>],
    indices: &[usize],
    outcomes: &[Mutex<Option<RequestOutcome>>],
    conn: usize,
) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let mut write_half = stream.try_clone()?;
    let picker = VenuePicker::from_config(config);
    // The session follows the *connection index*, not the TCP connection:
    // a reconnect-and-resend keeps the same id, so the daemon resumes the
    // session instead of opening a fresh one.
    let session_id = if config.sessions { 1 + conn as u64 } else { 0 };

    // Send stamps, indexed by position in `indices`; stamped just before
    // the frame bytes hit the socket.
    let sent_at: Vec<Mutex<Option<Instant>>> =
        (0..indices.len()).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| -> io::Result<()> {
        let sender_indices = &indices;
        let sender_stamps = &sent_at;
        let picker = &picker;
        let sender: std::thread::ScopedJoinHandle<'_, io::Result<()>> = scope.spawn(move || {
            // One encode buffer for the whole pass: frames are encoded
            // into the reused backing store instead of allocating per
            // request (mirrors the daemon's pooled reply path).
            let mut bytes = Vec::new();
            for (slot, &i) in sender_indices.iter().enumerate() {
                let frame = Frame::LocateRequest(LocateRequest {
                    request_id: i as u64,
                    deadline_us: config.deadline_us,
                    venue_id: picker.pick(i as u64),
                    session_id,
                    reports: requests[i].iter().map(WireReport::from_core).collect(),
                });
                bytes.clear();
                wire::encode_frame(&frame, &mut bytes);
                *sender_stamps[slot].lock().unwrap() = Some(Instant::now());
                write_half.write_all(&bytes)?;
            }
            Ok(())
        });

        let mut reader = ResponseReader::new(stream);
        let mut received = 0usize;
        while received < indices.len() {
            let response = reader.next_response()?;
            let now = Instant::now();
            let id = response.request_id as usize;
            let slot = indices.binary_search(&id).map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for unknown request id {id}"),
                )
            })?;
            let sent = sent_at[slot].lock().unwrap().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("response for request {id} before it was sent"),
                )
            })?;
            let previous = outcomes[id].lock().unwrap().replace(RequestOutcome {
                latency: now.duration_since(sent),
                reply: response.outcome,
            });
            if previous.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("duplicate response for request id {id}"),
                ));
            }
            received += 1;
        }
        sender.join().expect("loadgen sender thread panicked")
    })
}

/// One closed-loop pass over `indices` on a fresh connection: send one
/// request, wait for its reply, send the next — the synchronous-worker
/// shape of [`LoadgenConfig::concurrency`]. Exactly one request is in
/// flight per connection, so each reply must answer the request just
/// sent.
fn drive_once_closed(
    addr: SocketAddr,
    config: &LoadgenConfig,
    requests: &[Vec<CsiReport>],
    indices: &[usize],
    outcomes: &[Mutex<Option<RequestOutcome>>],
    conn: usize,
) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    let mut write_half = stream.try_clone()?;
    let picker = VenuePicker::from_config(config);
    let session_id = if config.sessions { 1 + conn as u64 } else { 0 };
    let mut reader = ResponseReader::new(stream);
    let mut bytes = Vec::new();
    for &i in indices {
        let frame = Frame::LocateRequest(LocateRequest {
            request_id: i as u64,
            deadline_us: config.deadline_us,
            venue_id: picker.pick(i as u64),
            session_id,
            reports: requests[i].iter().map(WireReport::from_core).collect(),
        });
        bytes.clear();
        wire::encode_frame(&frame, &mut bytes);
        let sent = Instant::now();
        write_half.write_all(&bytes)?;
        let response = reader.next_response()?;
        let id = response.request_id as usize;
        if id != i {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("closed-loop reply mismatch: sent request {i}, got reply for {id}"),
            ));
        }
        let previous = outcomes[i].lock().unwrap().replace(RequestOutcome {
            latency: sent.elapsed(),
            reply: response.outcome,
        });
        if previous.is_some() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("duplicate response for request id {id}"),
            ));
        }
    }
    Ok(())
}

/// Incremental frame reader over the connection's read half (shared with
/// the chaos driver in [`crate::chaos`]).
pub(crate) struct ResponseReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl ResponseReader {
    pub(crate) fn new(stream: TcpStream) -> Self {
        ResponseReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Adjusts the read timeout on the underlying stream.
    pub(crate) fn set_read_timeout(&self, timeout: Duration) -> io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))
    }

    pub(crate) fn next_response(&mut self) -> io::Result<wire::LocateResponse> {
        use std::io::Read;
        let mut tmp = [0u8; 64 * 1024];
        loop {
            match wire::decode_frame(&self.buf) {
                Ok((Frame::LocateResponse(resp), consumed)) => {
                    self.buf.drain(..consumed);
                    return Ok(resp);
                }
                Ok((other, _)) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame from server: {other:?}"),
                    ));
                }
                Err(wire::WireError::Incomplete { .. }) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e)),
            }
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-run",
                ));
            }
            self.buf.extend_from_slice(&tmp[..n]);
        }
    }
}
