//! Split (structure-of-arrays) complex buffers.
//!
//! `[Complex]` interleaves real and imaginary parts (`re, im, re, im, …`),
//! so a vector load of consecutive samples pulls both components into one
//! register and every arithmetic instruction wastes half its lanes on the
//! component it does not need. A [`SoaComplex`] stores all real parts in
//! one contiguous `Vec<f64>` and all imaginary parts in another, which is
//! the layout the batched FFT kernel ([`crate::batch::BatchFftPlan`])
//! needs: a batch of `lanes` same-length signals is packed *lane-major* —
//! sample `i` of lane `l` lives at flat index `i * lanes + l` — so the
//! values a butterfly touches in lockstep across the batch are contiguous
//! and the inner per-lane loops autovectorize.

use crate::Complex;

/// A split complex buffer: real parts and imaginary parts in separate
/// contiguous vectors.
///
/// The two vectors always have equal length. Besides plain element access
/// this type offers the *lane-major matrix* view used for batching: with
/// `lanes` interleaved signals, row `i` (one sample index across the whole
/// batch) occupies `re[i*lanes..(i+1)*lanes]` and the matching `im` range.
///
/// # Example
///
/// ```
/// use nomloc_dsp::{Complex, SoaComplex};
///
/// let mut soa = SoaComplex::new();
/// soa.reset(4); // 2 rows × 2 lanes of zeros
/// soa.write_lane(0, 2, &[Complex::new(1.0, 2.0), Complex::new(3.0, 4.0)]);
/// assert_eq!(soa.get(0), Complex::new(1.0, 2.0)); // row 0, lane 0
/// assert_eq!(soa.get(2), Complex::new(3.0, 4.0)); // row 1, lane 0
/// assert_eq!(soa.get(1), Complex::ZERO); // row 0, lane 1 untouched
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoaComplex {
    /// Real components.
    pub re: Vec<f64>,
    /// Imaginary components.
    pub im: Vec<f64>,
}

impl SoaComplex {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `n` elements per component.
    pub fn with_capacity(n: usize) -> Self {
        SoaComplex {
            re: Vec::with_capacity(n),
            im: Vec::with_capacity(n),
        }
    }

    /// Number of complex elements.
    #[inline]
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.re.len(), self.im.len());
        self.re.len()
    }

    /// Returns `true` when the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.re.is_empty()
    }

    /// Clears and resizes both components to `len` zeros, keeping the
    /// allocated capacity — the reuse pattern of a per-thread scratch.
    pub fn reset(&mut self, len: usize) {
        self.re.clear();
        self.re.resize(len, 0.0);
        self.im.clear();
        self.im.resize(len, 0.0);
    }

    /// Element at flat index `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    #[inline]
    pub fn get(&self, idx: usize) -> Complex {
        Complex::new(self.re[idx], self.im[idx])
    }

    /// Overwrites the element at flat index `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of bounds.
    #[inline]
    pub fn set(&mut self, idx: usize, z: Complex) {
        self.re[idx] = z.re;
        self.im[idx] = z.im;
    }

    /// Appends one element.
    pub fn push(&mut self, z: Complex) {
        self.re.push(z.re);
        self.im.push(z.im);
    }

    /// Transposes an interleaved row into lane `lane` of the lane-major
    /// matrix view with `lanes` columns: sample `i` of `row` lands at flat
    /// index `i * lanes + lane`. Rows beyond `row.len()` keep their
    /// current contents (zeros after [`SoaComplex::reset`] — exactly the
    /// zero-padding the padded IFFT wants).
    ///
    /// # Panics
    ///
    /// Panics when `lane >= lanes` or the buffer is shorter than
    /// `row.len() * lanes`.
    pub fn write_lane(&mut self, lane: usize, lanes: usize, row: &[Complex]) {
        assert!(lane < lanes, "lane index out of range");
        assert!(
            row.len().saturating_mul(lanes) <= self.len(),
            "row does not fit the lane-major buffer"
        );
        for (i, z) in row.iter().enumerate() {
            let at = i * lanes + lane;
            self.re[at] = z.re;
            self.im[at] = z.im;
        }
    }

    /// Inverse of [`SoaComplex::write_lane`]: overwrites `out` with lane
    /// `lane` of the lane-major matrix view, one element per row.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= lanes` or the buffer length is not a multiple
    /// of `lanes`.
    pub fn read_lane_into(&self, lane: usize, lanes: usize, out: &mut Vec<Complex>) {
        assert!(lane < lanes, "lane index out of range");
        assert_eq!(
            self.len() % lanes,
            0,
            "buffer length must be a whole number of rows"
        );
        out.clear();
        let rows = self.len() / lanes;
        out.extend((0..rows).map(|i| self.get(i * lanes + lane)));
    }

    /// Builds a split copy of an interleaved slice.
    pub fn from_interleaved(samples: &[Complex]) -> Self {
        SoaComplex {
            re: samples.iter().map(|z| z.re).collect(),
            im: samples.iter().map(|z| z.im).collect(),
        }
    }

    /// Rebuilds the interleaved representation.
    pub fn to_interleaved(&self) -> Vec<Complex> {
        self.re
            .iter()
            .zip(&self.im)
            .map(|(&re, &im)| Complex::new(re, im))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_round_trip() {
        let x: Vec<Complex> = (0..7)
            .map(|i| Complex::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let soa = SoaComplex::from_interleaved(&x);
        assert_eq!(soa.len(), 7);
        assert_eq!(soa.to_interleaved(), x);
    }

    #[test]
    fn lane_write_read_round_trip() {
        let lanes = 3;
        let rows = 4;
        let mut soa = SoaComplex::new();
        soa.reset(rows * lanes);
        let lanes_data: Vec<Vec<Complex>> = (0..lanes)
            .map(|l| {
                (0..rows)
                    .map(|i| Complex::new((l * 10 + i) as f64, -((l + i) as f64)))
                    .collect()
            })
            .collect();
        for (l, row) in lanes_data.iter().enumerate() {
            soa.write_lane(l, lanes, row);
        }
        let mut out = vec![Complex::ONE; 1]; // dirty
        for (l, row) in lanes_data.iter().enumerate() {
            soa.read_lane_into(l, lanes, &mut out);
            assert_eq!(&out, row, "lane {l}");
        }
    }

    #[test]
    fn short_rows_leave_padding_zero() {
        let mut soa = SoaComplex::new();
        soa.reset(8); // 4 rows × 2 lanes
        soa.write_lane(1, 2, &[Complex::new(5.0, 6.0)]);
        assert_eq!(soa.get(1), Complex::new(5.0, 6.0));
        for idx in [0, 2, 3, 4, 5, 6, 7] {
            assert_eq!(soa.get(idx), Complex::ZERO, "index {idx}");
        }
    }

    #[test]
    fn reset_zeroes_previous_contents() {
        let mut soa = SoaComplex::from_interleaved(&[Complex::ONE; 5]);
        soa.reset(3);
        assert_eq!(soa.len(), 3);
        assert!(soa.to_interleaved().iter().all(|z| *z == Complex::ZERO));
    }

    #[test]
    #[should_panic(expected = "lane index out of range")]
    fn lane_bounds_checked() {
        let mut soa = SoaComplex::new();
        soa.reset(4);
        soa.write_lane(2, 2, &[]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn row_overflow_rejected() {
        let mut soa = SoaComplex::new();
        soa.reset(4);
        soa.write_lane(0, 2, &[Complex::ZERO; 3]);
    }
}
