//! Descriptive statistics and empirical CDFs.
//!
//! The NomLoc evaluation reports two metrics (§V-A): localization
//! **accuracy** as the empirical CDF of per-site mean error (Fig. 9/10), and
//! **spatial localizability variance** — the variance of per-site mean error
//! across the venue (Eq. 20–23, Fig. 8). Both are built from the summaries
//! in this module.

/// Arithmetic mean. Returns `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

/// Population variance (divides by `n`), per Eq. 22 of the paper.
///
/// Returns `None` for empty input.
pub fn variance(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample variance (divides by `n − 1`). Returns `None` for `n < 2`.
pub fn sample_variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs)?;
    Some(xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Population standard deviation. Returns `None` for empty input.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Median (midpoint of the two central order statistics for even `n`).
///
/// Returns `None` for empty input.
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 50.0)
}

/// Linear-interpolation percentile, `p ∈ [0, 100]`.
///
/// Returns `None` for empty input or out-of-range `p`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=100.0).contains(&p) {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// [`median`] computed by sorting the caller's buffer in place instead of
/// cloning it — the zero-allocation variant for the per-burst hot path.
///
/// Value-identical to `median`: same `total_cmp` sort, same interpolation
/// formula as `percentile(xs, 50.0)`. Returns `None` for empty input.
pub fn median_in_place(xs: &mut [f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let rank = 50.0 / 100.0 * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(xs[lo] * (1.0 - frac) + xs[hi] * frac)
}

/// Minimum of a slice. Returns `None` for empty input.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::min)
}

/// Maximum of a slice. Returns `None` for empty input.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().reduce(f64::max)
}

/// Empirical cumulative distribution function of a sample.
///
/// # Example
///
/// ```
/// use nomloc_dsp::stats::Ecdf;
///
/// let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.5);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// // 90th-percentile error, the paper's headline accuracy number:
/// assert!((cdf.quantile(0.75) - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample. Returns `None` for an empty sample or
    /// one containing non-finite values.
    pub fn new(mut sample: Vec<f64>) -> Option<Self> {
        if sample.is_empty() || sample.iter().any(|x| !x.is_finite()) {
            return None;
        }
        sample.sort_by(f64::total_cmp);
        Some(Ecdf { sorted: sample })
    }

    /// Number of underlying observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false` post-construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations `≤ x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the count of elements ≤ x.
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Smallest observation `v` with `eval(v) ≥ q`, `q ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `(0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(q > 0.0 && q <= 1.0, "quantile level must be in (0, 1]");
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// The underlying sorted observations.
    #[inline]
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evenly spaced `(value, probability)` pairs for plotting, one per
    /// observation (the staircase's upper-left corners).
    pub fn series(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Mean of the sample.
    pub fn mean(&self) -> f64 {
        mean(&self.sorted).expect("non-empty by construction")
    }
}

/// Spatial localizability variance over per-site mean errors (Eq. 22).
///
/// `site_mean_errors[i]` is the mean localization error observed at sample
/// site `i`; the SLV is their population variance. Returns `None` for empty
/// input.
///
/// # Example
///
/// ```
/// use nomloc_dsp::stats::slv;
///
/// // Perfectly uniform accuracy: zero variance, ideal user experience.
/// assert_eq!(slv(&[1.5, 1.5, 1.5]), Some(0.0));
/// // One blind spot inflates the SLV.
/// assert!(slv(&[1.0, 1.0, 5.0]).unwrap() > 3.0);
/// ```
pub fn slv(site_mean_errors: &[f64]) -> Option<f64> {
    variance(site_mean_errors)
}

/// Simple fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Out-of-range values are clamped into the first/last bucket. Returns
/// `None` when `bins == 0` or the range is empty/invalid.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> Option<Vec<usize>> {
    if bins == 0 || hi <= lo || !(hi - lo).is_finite() {
        return None;
    }
    let mut counts = vec![0usize; bins];
    let width = (hi - lo) / bins as f64;
    for &x in xs {
        let idx = (((x - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    Some(counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(variance(&xs), Some(4.0));
        assert_eq!(std_dev(&xs), Some(2.0));
        assert!((sample_variance(&xs).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(variance(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[]), None);
        assert_eq!(sample_variance(&[1.0]), None);
        assert!(Ecdf::new(vec![]).is_none());
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
    }

    #[test]
    fn median_in_place_matches_median() {
        for xs in [
            vec![3.0, 1.0, 2.0],
            vec![4.0, 1.0, 3.0, 2.0],
            vec![0.5],
            vec![-1.0, -1.0, 7.5, 0.25, 1e-9, -3.25],
        ] {
            let expect = median(&xs);
            let mut buf = xs.clone();
            // Bit-identical to the allocating median, sorting in place.
            assert_eq!(median_in_place(&mut buf), expect, "{xs:?}");
        }
        assert_eq!(median_in_place(&mut []), None);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), Some(10.0));
        assert_eq!(percentile(&xs, 100.0), Some(40.0));
        assert!((percentile(&xs, 50.0).unwrap() - 25.0).abs() < 1e-12);
        assert_eq!(percentile(&xs, 101.0), None);
        assert_eq!(percentile(&xs, -1.0), None);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), Some(-1.0));
        assert_eq!(max(&xs), Some(7.0));
    }

    #[test]
    fn ecdf_step_values() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        assert_eq!(cdf.eval(0.0), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(1.5), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(3.0), 1.0);
        assert_eq!(cdf.eval(99.0), 1.0);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn ecdf_rejects_nan() {
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_none());
    }

    #[test]
    fn ecdf_quantiles() {
        let cdf = Ecdf::new((1..=10).map(|i| i as f64).collect()).unwrap();
        assert_eq!(cdf.quantile(0.1), 1.0);
        assert_eq!(cdf.quantile(0.5), 5.0);
        assert_eq!(cdf.quantile(0.9), 9.0);
        assert_eq!(cdf.quantile(1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn ecdf_quantile_rejects_zero() {
        let cdf = Ecdf::new(vec![1.0]).unwrap();
        let _ = cdf.quantile(0.0);
    }

    #[test]
    fn ecdf_series_is_monotone_staircase() {
        let cdf = Ecdf::new(vec![5.0, 1.0, 3.0]).unwrap();
        let series = cdf.series();
        assert_eq!(series.len(), 3);
        assert_eq!(series[0], (1.0, 1.0 / 3.0));
        assert_eq!(series[2], (5.0, 1.0));
        for w in series.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn ecdf_quantile_consistency_with_eval() {
        let cdf = Ecdf::new(vec![0.5, 1.5, 2.5, 3.5, 4.5]).unwrap();
        for q in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let v = cdf.quantile(q);
            assert!(cdf.eval(v) >= q - 1e-12);
        }
    }

    #[test]
    fn slv_matches_paper_definition() {
        // Hand-computed: errors 1, 2, 3 → mean 2 → variance 2/3.
        let v = slv(&[1.0, 2.0, 3.0]).unwrap();
        assert!((v - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(slv(&[]), None);
    }

    #[test]
    fn slv_is_translation_invariant() {
        let a = slv(&[1.0, 2.0, 3.0]).unwrap();
        let b = slv(&[11.0, 12.0, 13.0]).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts() {
        let xs = [0.1, 0.2, 1.5, 2.9, -5.0, 99.0];
        let h = histogram(&xs, 0.0, 3.0, 3).unwrap();
        // -5 clamps into bin 0, 99 into bin 2.
        assert_eq!(h, vec![3, 1, 2]);
        assert!(histogram(&xs, 0.0, 3.0, 0).is_none());
        assert!(histogram(&xs, 3.0, 0.0, 2).is_none());
    }
}
