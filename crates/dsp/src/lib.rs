//! Signal-processing primitives for the NomLoc indoor localization system.
//!
//! NomLoc's PDP (power-of-direct-path) estimator consumes PHY-layer channel
//! state information (CSI) in the frequency domain and transforms it to the
//! time-domain channel impulse response (CIR) via an inverse FFT; the
//! maximum power tap of the resulting power delay profile approximates the
//! direct-path power (§IV-A of the paper). This crate supplies that
//! machinery plus the descriptive statistics used by the evaluation:
//!
//! * [`Complex`] — minimal complex arithmetic (no external deps).
//! * [`fft`] — radix-2 FFT/IFFT and a Bluestein fallback for arbitrary
//!   lengths (Intel 5300 CSI has 30 grouped subcarriers, not a power of 2).
//! * [`plan`] — precomputed FFT plans (bit-reversal indices + per-stage
//!   twiddle tables) and the per-thread [`plan::PlanCache`] the radix-2
//!   kernel runs through.
//! * [`soa`] / [`batch`] — split (structure-of-arrays) complex buffers and
//!   the batched FFT kernel that marches a burst of same-length packets
//!   through the planned butterflies in lockstep, bit-identical per lane to
//!   the per-packet plan.
//! * [`pdp`] — power delay profiles and their summary taps.
//! * [`stats`] — mean/variance/percentiles and empirical CDFs (the paper's
//!   accuracy metric) plus the spatial-localizability-variance helper.
//! * [`Window`] — spectral tapers (Hann/Hamming/Blackman) for sidelobe
//!   control ahead of the IFFT.
//!
//! # Example
//!
//! ```
//! use nomloc_dsp::{fft, Complex};
//!
//! let time = vec![
//!     Complex::new(1.0, 0.0),
//!     Complex::new(0.0, 0.0),
//!     Complex::new(0.0, 0.0),
//!     Complex::new(0.0, 0.0),
//! ];
//! let freq = fft::fft(&time);
//! // A unit impulse has a flat spectrum.
//! for h in &freq {
//!     assert!((h.abs() - 1.0).abs() < 1e-12);
//! }
//! let back = fft::ifft(&freq);
//! assert!((back[0].re - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
mod complex;
pub mod fft;
pub mod pdp;
pub mod plan;
pub mod soa;
pub mod stats;
mod window;

pub use batch::BatchFftPlan;
pub use complex::Complex;
pub use plan::{FftPlan, PlanCache};
pub use soa::SoaComplex;
pub use window::Window;

/// Converts a linear power ratio to decibels.
///
/// Returns negative infinity for non-positive input.
#[inline]
pub fn to_db(linear: f64) -> f64 {
    if linear <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * linear.log10()
    }
}

/// Converts decibels to a linear power ratio.
#[inline]
pub fn from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_round_trip() {
        for &x in &[1e-9, 1e-3, 1.0, 42.0, 1e6] {
            assert!((from_db(to_db(x)) - x).abs() / x < 1e-12);
        }
    }

    #[test]
    fn db_of_known_values() {
        assert!((to_db(10.0) - 10.0).abs() < 1e-12);
        assert!((to_db(100.0) - 20.0).abs() < 1e-12);
        assert!(to_db(0.0) == f64::NEG_INFINITY);
        assert!(to_db(-1.0) == f64::NEG_INFINITY);
        assert!((from_db(0.0) - 1.0).abs() < 1e-12);
        assert!((from_db(30.0) - 1000.0).abs() < 1e-9);
    }
}
