//! Minimal complex arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Used for frequency-domain CSI samples and time-domain CIR taps. A local
/// implementation keeps the workspace dependency-free; only the operations
/// the localization pipeline needs are provided.
///
/// # Example
///
/// ```
/// use nomloc_dsp::Complex;
///
/// let h = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
/// assert!((h.re).abs() < 1e-12);
/// assert!((h.im - 2.0).abs() < 1e-12);
/// assert!((h.abs() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Unit phasor `e^{jθ}`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` — the *power* of a CSI/CIR sample.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `self` is zero.
    #[inline]
    pub fn recip(self) -> Complex {
        let d = self.norm_sq();
        debug_assert!(d > 0.0, "reciprocal of zero complex number");
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Complex {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.4}+{:.4}j", self.re, self.im)
        } else {
            write!(f, "{:.4}-{:.4}j", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z·w⁻¹ by definition
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z + Complex::ZERO, z);
        assert_eq!(z * Complex::ONE, z);
        assert_eq!(z - z, Complex::ZERO);
        assert_eq!(-z, Complex::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_matches_polar() {
        let a = Complex::from_polar(2.0, 0.3);
        let b = Complex::from_polar(3.0, 0.9);
        let p = a * b;
        assert!((p.abs() - 6.0).abs() < 1e-12);
        assert!((p.arg() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex::I * Complex::I, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(1.5, -2.5);
        let b = Complex::new(-0.5, 3.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm_sq(), 25.0);
        assert_eq!(z.abs(), 5.0);
        let zz = z * z.conj();
        assert!((zz.re - 25.0).abs() < 1e-12 && zz.im.abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_phasor() {
        for k in 0..8 {
            let theta = k as f64 * PI / 4.0;
            let z = Complex::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        let z = Complex::cis(PI);
        assert!((z.re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_accumulates() {
        let total: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex::new(6.0, 4.0));
    }

    #[test]
    fn assign_ops() {
        let mut z = Complex::ONE;
        z += Complex::I;
        assert_eq!(z, Complex::new(1.0, 1.0));
        z -= Complex::ONE;
        assert_eq!(z, Complex::I);
        z *= Complex::I;
        assert_eq!(z, Complex::new(-1.0, 0.0));
    }

    #[test]
    fn display_has_both_parts() {
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1.0000+2.0000j");
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.0000-2.0000j");
    }

    #[test]
    fn from_real() {
        let z: Complex = 2.5f64.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
    }
}
