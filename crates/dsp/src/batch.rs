//! Batched FFTs: N same-length signals marched through the planned
//! butterflies in lockstep.
//!
//! The per-packet planned kernel ([`crate::plan::FftPlan`]) already runs
//! without allocation or bounds checks, but it processes one interleaved
//! `Complex` packet at a time: every butterfly is a handful of scalar
//! multiply-adds, so the CPU's vector lanes sit mostly empty and the
//! bit-reversal/twiddle traversal is re-paid per packet. A burst of CSI
//! snapshots, though, is a *batch* of transforms of identical size — the
//! ideal SIMD shape. [`BatchFftPlan`] packs the batch lane-major into a
//! split [`SoaComplex`] buffer (sample `i` of lane `l` at `i * lanes + l`)
//! and executes **one** traversal of the swap pairs and twiddle tables,
//! with every butterfly applied to all lanes via contiguous per-lane inner
//! loops that the compiler autovectorizes (packed `vmulpd`/`vfmadd` under
//! `-C target-cpu=native`; see `scripts/asm_check.sh`).
//!
//! Per lane the kernel performs *exactly* the floating-point operations of
//! [`FftPlan::process`] in the same order — lanes are mutually
//! independent, so vectorizing across them is a pure reordering of
//! independent IEEE-754 operations — which makes every batched result
//! bit-identical to running the per-packet planned kernel on that lane
//! alone. The per-packet kernel is therefore retained unchanged as the
//! bit-identity oracle (see `crates/dsp/tests/batch.rs`).

use crate::plan::FftPlan;
use crate::soa::SoaComplex;
use crate::Complex;
use std::rc::Rc;

/// Views a `lanes`-wide chunk as a fixed-size lane row.
#[inline(always)]
fn row<const L: usize>(s: &mut [f64]) -> &mut [f64; L] {
    s.try_into().expect("chunk is exactly one lane row")
}

/// The twiddle-free butterfly (`w = 1`): `u' = u + v; v' = u − v` across
/// all lanes. Per lane this is exactly the scalar kernel's len = 2 stage.
#[inline(always)]
fn bf2<const L: usize>(
    u_re: &mut [f64; L],
    u_im: &mut [f64; L],
    v_re: &mut [f64; L],
    v_im: &mut [f64; L],
) {
    for l in 0..L {
        let (a_re, a_im) = (u_re[l], u_im[l]);
        let (b_re, b_im) = (v_re[l], v_im[l]);
        u_re[l] = a_re + b_re;
        u_im[l] = a_im + b_im;
        v_re[l] = a_re - b_re;
        v_im[l] = a_im - b_im;
    }
}

/// The twiddle butterfly `b = v·w; u' = u + b; v' = u − b` unrolled into
/// components across all lanes. Same per-lane float op order as
/// `FftPlan::process` — the bit-identity contract depends on it.
#[inline(always)]
fn bf<const L: usize>(
    u_re: &mut [f64; L],
    u_im: &mut [f64; L],
    v_re: &mut [f64; L],
    v_im: &mut [f64; L],
    w: Complex,
) {
    let (w_re, w_im) = (w.re, w.im);
    for l in 0..L {
        let b_re = v_re[l] * w_re - v_im[l] * w_im;
        let b_im = v_re[l] * w_im + v_im[l] * w_re;
        let (a_re, a_im) = (u_re[l], u_im[l]);
        u_re[l] = a_re + b_re;
        u_im[l] = a_im + b_im;
        v_re[l] = a_re - b_re;
        v_im[l] = a_im - b_im;
    }
}

/// One lane row of the fused `1/N` multiply — applied at the final pass's
/// stores so the normalization costs no extra memory traversal. Per value
/// this is the same single multiply the scalar kernel's separate scale
/// pass performs, so the result is bit-identical.
#[inline(always)]
fn scale_row<const L: usize>(r: &mut [f64; L], s: f64) {
    for v in r.iter_mut() {
        *v *= s;
    }
}

/// A radix-2 FFT plan applied to a lane-major batch of same-length
/// signals.
///
/// Wraps (and shares) an [`FftPlan`]: the swap pairs and twiddle tables
/// are identical, only the traversal changes — one pass over the plan
/// drives all `lanes` transforms.
///
/// # Example
///
/// ```
/// use nomloc_dsp::{BatchFftPlan, Complex, FftPlan, SoaComplex};
///
/// let signal: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
/// // Two identical lanes through the batched kernel…
/// let batch = BatchFftPlan::new(8);
/// let mut soa = SoaComplex::new();
/// soa.reset(8 * 2);
/// soa.write_lane(0, 2, &signal);
/// soa.write_lane(1, 2, &signal);
/// batch.forward(&mut soa, 2);
/// // …match the per-packet planned kernel bit for bit.
/// let mut expect = signal.clone();
/// FftPlan::new(8).forward(&mut expect);
/// let mut lane = Vec::new();
/// soa.read_lane_into(0, 2, &mut lane);
/// assert_eq!(lane, expect);
/// ```
#[derive(Debug, Clone)]
pub struct BatchFftPlan {
    plan: Rc<FftPlan>,
    /// Full bit-reversal permutation: `bitrev[i]` is where the swap pass
    /// would move row `i`. Lets fill paths scatter rows straight into
    /// their post-permutation positions so the transform can skip the
    /// swap traversal entirely (see [`Self::scatter_lane`]).
    bitrev: Vec<u32>,
}

impl BatchFftPlan {
    /// Builds a batched plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two (see [`FftPlan::new`]).
    pub fn new(n: usize) -> Self {
        Self::from_plan(Rc::new(FftPlan::new(n)))
    }

    /// Wraps an existing per-packet plan, sharing its tables.
    pub fn from_plan(plan: Rc<FftPlan>) -> Self {
        // Reconstruct the full permutation by replaying the plan's swap
        // pairs on an identity map — `bitrev` then moves rows exactly as
        // the swap pass does (bit reversal is an involution, so this is
        // also the scatter target of each logical row).
        let mut bitrev: Vec<u32> = (0..plan.len() as u32).collect();
        for &(i, j) in plan.swaps() {
            bitrev.swap(i as usize, j as usize);
        }
        BatchFftPlan { plan, bitrev }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.plan.len()
    }

    /// Whether this is the trivial length-zero plan.
    pub fn is_empty(&self) -> bool {
        self.plan.is_empty()
    }

    /// The shared per-packet plan.
    pub fn plan(&self) -> &FftPlan {
        &self.plan
    }

    /// Runs the raw in-place transform on all `lanes` lanes *without*
    /// inverse normalization, matching [`FftPlan::process`] per lane.
    ///
    /// `buf` must hold the batch lane-major: `len() * lanes` elements with
    /// sample `i` of lane `l` at flat index `i * lanes + l`.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero or `buf.len() != len() * lanes`.
    pub fn process(&self, buf: &mut SoaComplex, lanes: usize, inverse: bool) {
        self.run(buf, lanes, inverse, None, false);
    }

    /// Writes `values` into lane `lane` with every row already at its
    /// bit-reversed position: `values[i]` lands in row `bitrev[i]`.
    ///
    /// A batch filled this way (into a freshly [`SoaComplex::reset`]
    /// buffer, so untouched rows are zero — and zero rows are invariant
    /// under any permutation) is in exactly the state the swap pass would
    /// produce, so [`Self::process_prepermuted`] can skip that full-buffer
    /// traversal. Pure data movement, no arithmetic: results stay
    /// bit-identical to [`SoaComplex::write_lane`] + [`Self::process`].
    ///
    /// Like `write_lane`, `values` may be shorter than the transform
    /// length (the zero-padded fill path); rows past `values.len()` are
    /// left untouched.
    ///
    /// # Panics
    ///
    /// Panics when `lane >= lanes`, `buf.len() != len() * lanes`, or
    /// `values.len() > len()`.
    pub fn scatter_lane(
        &self,
        buf: &mut SoaComplex,
        lane: usize,
        lanes: usize,
        values: &[Complex],
    ) {
        assert!(lane < lanes, "lane index out of range");
        assert_eq!(
            buf.len(),
            self.plan.len() * lanes,
            "buffer length must match plan size × lanes"
        );
        assert!(
            values.len() <= self.plan.len(),
            "lane data must fit the transform length"
        );
        for (v, &p) in values.iter().zip(&self.bitrev) {
            let at = p as usize * lanes + lane;
            buf.re[at] = v.re;
            buf.im[at] = v.im;
        }
    }

    /// [`Self::process`] for a batch whose rows are already bit-reversed
    /// (filled via [`Self::scatter_lane`]): runs the butterfly stages
    /// without the swap traversal. Bit-identical to the unpermuted path.
    ///
    /// # Panics
    ///
    /// Panics when `lanes` is zero or `buf.len() != len() * lanes`.
    pub fn process_prepermuted(&self, buf: &mut SoaComplex, lanes: usize, inverse: bool) {
        self.run(buf, lanes, inverse, None, true);
    }

    /// [`Self::inverse`] for a batch filled via [`Self::scatter_lane`]:
    /// skips the swap traversal, keeps the fused `1/N` normalization.
    pub fn inverse_prepermuted(&self, buf: &mut SoaComplex, lanes: usize) {
        let scale = 1.0 / self.plan.len() as f64;
        self.run(buf, lanes, true, Some(scale), true);
    }

    /// Shared entry for [`Self::process`] (`scale: None`) and
    /// [`Self::inverse`] (`scale: Some(1/N)`, folded into the final
    /// pass's stores). `prepermuted` skips the bit-reversal swap pass for
    /// batches scattered directly into permuted row order.
    fn run(
        &self,
        buf: &mut SoaComplex,
        lanes: usize,
        inverse: bool,
        scale: Option<f64>,
        prepermuted: bool,
    ) {
        let n = self.plan.len();
        assert!(lanes > 0, "batch must have at least one lane");
        assert_eq!(
            buf.len(),
            n * lanes,
            "buffer length must match plan size × lanes"
        );
        if n <= 1 {
            // Trivial transforms still get the scalar kernel's `*= 1/N`
            // pass (a no-op multiply by 1.0 when n == 1).
            if let Some(s) = scale {
                for v in buf.re.iter_mut() {
                    *v *= s;
                }
                for v in buf.im.iter_mut() {
                    *v *= s;
                }
            }
            return;
        }
        let re = buf.re.as_mut_slice();
        let im = buf.im.as_mut_slice();
        let table = self.plan.twiddles(inverse);
        let swaps: &[(u32, u32)] = if prepermuted { &[] } else { self.plan.swaps() };
        // Dispatch on the lane count: each arm monomorphizes the kernel
        // with the lane width as a `const`, so every lane loop runs over
        // `&mut [f64; L]` — compile-time trip counts and bounds, which
        // LLVM unrolls into straight packed instructions with no
        // per-butterfly trip-count checks, remainder loops, or runtime
        // aliasing guards (a dynamic `lanes` pays vector-loop entry
        // overhead comparable to the butterfly's own arithmetic). The
        // serving hot path batches 8 lanes (4 APs × 2 packets) and chunks
        // larger bursts at 16, so those widths matter most; small burst
        // sizes get arms too because `pdp_of_burst` batches at the burst
        // length.
        match lanes {
            2 => Self::kernel::<2>(re, im, swaps, table, n, scale),
            3 => Self::kernel::<3>(re, im, swaps, table, n, scale),
            4 => Self::kernel::<4>(re, im, swaps, table, n, scale),
            5 => Self::kernel::<5>(re, im, swaps, table, n, scale),
            6 => Self::kernel::<6>(re, im, swaps, table, n, scale),
            7 => Self::kernel::<7>(re, im, swaps, table, n, scale),
            8 => Self::kernel::<8>(re, im, swaps, table, n, scale),
            16 => Self::kernel::<16>(re, im, swaps, table, n, scale),
            l => Self::kernel_dyn(re, im, l, swaps, table, n, scale),
        }
    }

    /// The full post-validation transform for a compile-time lane count:
    /// bit-reversal row swaps, then the butterfly stages walked as
    /// *fused pairs* — each pass loads four lane rows once, applies both
    /// stages' butterflies in registers (radix-2² traversal), and stores
    /// once. The batch at the serving shape (8 lanes × 256 taps, 32 KiB
    /// split-complex) overflows a 32 KiB L1d, so halving the number of
    /// full-buffer traversals is where the batched win comes from; the
    /// per-value computation dags are untouched, so results stay
    /// bit-identical to the per-packet kernel.
    ///
    /// When `scale` is set the multiply is applied at the final pass's
    /// stores (one multiply per value, exactly what a separate scale pass
    /// performs — bit-identical, one traversal cheaper).
    ///
    /// Per lane the float op order is exactly [`FftPlan::process`], which
    /// the bit-identity tests pin down.
    fn kernel<const L: usize>(
        re: &mut [f64],
        im: &mut [f64],
        swaps: &[(u32, u32)],
        table: &[Complex],
        n: usize,
        scale: Option<f64>,
    ) {
        // Bit-reversal permutation: each swap pair exchanges two whole
        // lane-rows, i.e. two contiguous `L`-wide runs.
        for &(i, j) in swaps {
            let (i, j) = (i as usize * L, j as usize * L);
            let (lo, hi) = re.split_at_mut(j);
            lo[i..i + L].swap_with_slice(&mut hi[..L]);
            let (lo, hi) = im.split_at_mut(j);
            lo[i..i + L].swap_with_slice(&mut hi[..L]);
        }
        let mut off = 0;
        let mut len;
        if n >= 4 {
            // Fused (len = 2, len = 4) pass: blocks of four rows
            // (a, b, c, d); stage 2 is the twiddle-free pairs (a, b) and
            // (c, d), stage 4 couples (a, c) and (b, d) with the first
            // two table entries.
            let pass_scale = if n == 4 { scale } else { None };
            let (w20, w21) = (table[0], table[1]);
            off = 2;
            for (block_re, block_im) in re.chunks_exact_mut(4 * L).zip(im.chunks_exact_mut(4 * L)) {
                let (h0_re, h1_re) = block_re.split_at_mut(2 * L);
                let (h0_im, h1_im) = block_im.split_at_mut(2 * L);
                let (a_re, b_re) = h0_re.split_at_mut(L);
                let (a_im, b_im) = h0_im.split_at_mut(L);
                let (c_re, d_re) = h1_re.split_at_mut(L);
                let (c_im, d_im) = h1_im.split_at_mut(L);
                let (ar, ai) = (row::<L>(a_re), row::<L>(a_im));
                let (br, bi) = (row::<L>(b_re), row::<L>(b_im));
                let (cr, ci) = (row::<L>(c_re), row::<L>(c_im));
                let (dr, di) = (row::<L>(d_re), row::<L>(d_im));
                bf2::<L>(ar, ai, br, bi);
                bf2::<L>(cr, ci, dr, di);
                bf::<L>(ar, ai, cr, ci, w20);
                bf::<L>(br, bi, dr, di, w21);
                if let Some(s) = pass_scale {
                    scale_row::<L>(ar, s);
                    scale_row::<L>(ai, s);
                    scale_row::<L>(br, s);
                    scale_row::<L>(bi, s);
                    scale_row::<L>(cr, s);
                    scale_row::<L>(ci, s);
                    scale_row::<L>(dr, s);
                    scale_row::<L>(di, s);
                }
            }
            len = 8;
        } else {
            // n == 2: the lone twiddle-free stage, with the scale fused
            // into its stores when requested.
            for (pair_re, pair_im) in re.chunks_exact_mut(2 * L).zip(im.chunks_exact_mut(2 * L)) {
                let (ur, vr) = pair_re.split_at_mut(L);
                let (ui, vi) = pair_im.split_at_mut(L);
                let (ur, ui, vr, vi) = (row::<L>(ur), row::<L>(ui), row::<L>(vr), row::<L>(vi));
                bf2::<L>(ur, ui, vr, vi);
                if let Some(s) = scale {
                    scale_row::<L>(ur, s);
                    scale_row::<L>(ui, s);
                    scale_row::<L>(vr, s);
                    scale_row::<L>(vi, s);
                }
            }
            len = 4;
        }
        while len <= n {
            let half = len / 2;
            if 2 * len <= n {
                // Fused (len, 2·len) pass: within one 2·len block the
                // four quarter-runs hold rows a = k, b = k + half,
                // c = len + k, d = len + k + half — stage `len` pairs
                // (a, b) and (c, d) with w1[k] and stage `2·len` pairs
                // (a, c) with w2[k] and (b, d) with w2[k + half]. All
                // four rows are loaded and stored once per fused pass.
                let pass_scale = if 2 * len == n { scale } else { None };
                let tw1 = &table[off..off + half];
                let (tw2a, tw2b) = table[off + half..off + half + len].split_at(half);
                off += half + len;
                for (block_re, block_im) in re
                    .chunks_exact_mut(2 * len * L)
                    .zip(im.chunks_exact_mut(2 * len * L))
                {
                    let (h0_re, h1_re) = block_re.split_at_mut(len * L);
                    let (h0_im, h1_im) = block_im.split_at_mut(len * L);
                    let (a_re, b_re) = h0_re.split_at_mut(half * L);
                    let (a_im, b_im) = h0_im.split_at_mut(half * L);
                    let (c_re, d_re) = h1_re.split_at_mut(half * L);
                    let (c_im, d_im) = h1_im.split_at_mut(half * L);
                    for (((((((((a_re, a_im), b_re), b_im), c_re), c_im), d_re), d_im), w1), w2) in
                        a_re.chunks_exact_mut(L)
                            .zip(a_im.chunks_exact_mut(L))
                            .zip(b_re.chunks_exact_mut(L))
                            .zip(b_im.chunks_exact_mut(L))
                            .zip(c_re.chunks_exact_mut(L))
                            .zip(c_im.chunks_exact_mut(L))
                            .zip(d_re.chunks_exact_mut(L))
                            .zip(d_im.chunks_exact_mut(L))
                            .zip(tw1)
                            .zip(tw2a.iter().zip(tw2b))
                    {
                        let (ar, ai) = (row::<L>(a_re), row::<L>(a_im));
                        let (br, bi) = (row::<L>(b_re), row::<L>(b_im));
                        let (cr, ci) = (row::<L>(c_re), row::<L>(c_im));
                        let (dr, di) = (row::<L>(d_re), row::<L>(d_im));
                        let (w2a, w2b) = w2;
                        bf::<L>(ar, ai, br, bi, *w1);
                        bf::<L>(cr, ci, dr, di, *w1);
                        bf::<L>(ar, ai, cr, ci, *w2a);
                        bf::<L>(br, bi, dr, di, *w2b);
                        if let Some(s) = pass_scale {
                            scale_row::<L>(ar, s);
                            scale_row::<L>(ai, s);
                            scale_row::<L>(br, s);
                            scale_row::<L>(bi, s);
                            scale_row::<L>(cr, s);
                            scale_row::<L>(ci, s);
                            scale_row::<L>(dr, s);
                            scale_row::<L>(di, s);
                        }
                    }
                }
                len <<= 2;
            } else {
                // Trailing single stage (odd stage count): the plain
                // planned butterfly walk, scale fused into its stores.
                let pass_scale = if len == n { scale } else { None };
                let tw = &table[off..off + half];
                off += half;
                for (block_re, block_im) in re
                    .chunks_exact_mut(len * L)
                    .zip(im.chunks_exact_mut(len * L))
                {
                    let (u_re, v_re) = block_re.split_at_mut(half * L);
                    let (u_im, v_im) = block_im.split_at_mut(half * L);
                    for ((((ur, ui), vr), vi), w) in u_re
                        .chunks_exact_mut(L)
                        .zip(u_im.chunks_exact_mut(L))
                        .zip(v_re.chunks_exact_mut(L))
                        .zip(v_im.chunks_exact_mut(L))
                        .zip(tw)
                    {
                        let (ur, ui, vr, vi) =
                            (row::<L>(ur), row::<L>(ui), row::<L>(vr), row::<L>(vi));
                        bf::<L>(ur, ui, vr, vi, *w);
                        if let Some(s) = pass_scale {
                            scale_row::<L>(ur, s);
                            scale_row::<L>(ui, s);
                            scale_row::<L>(vr, s);
                            scale_row::<L>(vi, s);
                        }
                    }
                }
                len <<= 1;
            }
        }
    }

    /// Fallback transform for lane counts without a monomorphized arm —
    /// same per-lane op order as [`Self::kernel`], with runtime `lanes`
    /// (single-stage passes and dynamic trip counts, so this path is
    /// correct but not specialized; `scale` runs as the scalar kernel's
    /// separate trailing pass, which is equally bit-identical).
    fn kernel_dyn(
        re: &mut [f64],
        im: &mut [f64],
        lanes: usize,
        swaps: &[(u32, u32)],
        table: &[Complex],
        n: usize,
        scale: Option<f64>,
    ) {
        // Bit-reversal permutation: each swap pair exchanges two whole
        // lane-rows, i.e. two contiguous `lanes`-wide runs.
        for &(i, j) in swaps {
            let (i, j) = (i as usize * lanes, j as usize * lanes);
            let (lo, hi) = re.split_at_mut(j);
            lo[i..i + lanes].swap_with_slice(&mut hi[..lanes]);
            let (lo, hi) = im.split_at_mut(j);
            lo[i..i + lanes].swap_with_slice(&mut hi[..lanes]);
        }
        // Stage len = 2: twiddle is exactly 1 — a pure add/sub pair of
        // adjacent rows, done across all lanes at once.
        for (pair_re, pair_im) in re
            .chunks_exact_mut(2 * lanes)
            .zip(im.chunks_exact_mut(2 * lanes))
        {
            let (ur, vr) = pair_re.split_at_mut(lanes);
            let (ui, vi) = pair_im.split_at_mut(lanes);
            for (((ur, ui), vr), vi) in ur
                .iter_mut()
                .zip(ui.iter_mut())
                .zip(vr.iter_mut())
                .zip(vi.iter_mut())
            {
                let (a_re, a_im) = (*ur, *ui);
                let (b_re, b_im) = (*vr, *vi);
                *ur = a_re + b_re;
                *ui = a_im + b_im;
                *vr = a_re - b_re;
                *vi = a_im - b_im;
            }
        }
        let mut off = 0;
        let mut len = 4;
        while len <= n {
            let half = len / 2;
            let tw = &table[off..off + half];
            // Within one block the u rows (k = 0..half) and v rows
            // (k = half..len) are two *contiguous* lane-major runs, so the
            // whole stage is walked with chunked iterators — no index
            // arithmetic or bounds checks anywhere in the butterfly path.
            for (block_re, block_im) in re
                .chunks_exact_mut(len * lanes)
                .zip(im.chunks_exact_mut(len * lanes))
            {
                let (u_re, v_re) = block_re.split_at_mut(half * lanes);
                let (u_im, v_im) = block_im.split_at_mut(half * lanes);
                for ((((ur, ui), vr), vi), w) in u_re
                    .chunks_exact_mut(lanes)
                    .zip(u_im.chunks_exact_mut(lanes))
                    .zip(v_re.chunks_exact_mut(lanes))
                    .zip(v_im.chunks_exact_mut(lanes))
                    .zip(tw)
                {
                    let (w_re, w_im) = (w.re, w.im);
                    // The scalar butterfly `b = v·w; u' = a+b; v' = a−b`
                    // unrolled into components, one lockstep lane loop.
                    // Same per-lane op order as FftPlan::process — the
                    // bit-identity contract depends on it.
                    for (((ur, ui), vr), vi) in ur
                        .iter_mut()
                        .zip(ui.iter_mut())
                        .zip(vr.iter_mut())
                        .zip(vi.iter_mut())
                    {
                        let b_re = *vr * w_re - *vi * w_im;
                        let b_im = *vr * w_im + *vi * w_re;
                        let (a_re, a_im) = (*ur, *ui);
                        *ur = a_re + b_re;
                        *ui = a_im + b_im;
                        *vr = a_re - b_re;
                        *vi = a_im - b_im;
                    }
                }
            }
            off += half;
            len <<= 1;
        }
        if let Some(s) = scale {
            for v in re.iter_mut() {
                *v *= s;
            }
            for v in im.iter_mut() {
                *v *= s;
            }
        }
    }

    /// In-place forward DFT of every lane.
    pub fn forward(&self, buf: &mut SoaComplex, lanes: usize) {
        self.process(buf, lanes, false);
    }

    /// In-place inverse DFT of every lane, including the `1/N`
    /// normalization (the same per-component multiply as
    /// [`FftPlan::inverse`], fused into the final pass's stores — see
    /// [`Self::kernel`]).
    pub fn inverse(&self, buf: &mut SoaComplex, lanes: usize) {
        let scale = 1.0 / self.plan.len() as f64;
        self.run(buf, lanes, true, Some(scale), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Complex;

    fn signal(n: usize, lane: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64 + lane as f64 * 0.37;
                Complex::new((0.3 * t).sin() + 0.1 * t, (0.7 * t).cos() - 0.05 * t)
            })
            .collect()
    }

    fn pack(lanes_data: &[Vec<Complex>]) -> SoaComplex {
        let lanes = lanes_data.len();
        let n = lanes_data[0].len();
        let mut soa = SoaComplex::new();
        soa.reset(n * lanes);
        for (l, row) in lanes_data.iter().enumerate() {
            soa.write_lane(l, lanes, row);
        }
        soa
    }

    #[test]
    fn batch_matches_per_packet_plan_bit_for_bit() {
        for lanes in [1usize, 2, 3, 5, 8] {
            for log2 in 1..=6 {
                let n = 1usize << log2;
                let rows: Vec<Vec<Complex>> = (0..lanes).map(|l| signal(n, l)).collect();
                let plan = FftPlan::new(n);
                let batch = BatchFftPlan::from_plan(Rc::new(plan.clone()));
                for inverse in [false, true] {
                    let mut soa = pack(&rows);
                    batch.process(&mut soa, lanes, inverse);
                    let mut lane_out = Vec::new();
                    for (l, row) in rows.iter().enumerate() {
                        let mut expect = row.clone();
                        plan.process(&mut expect, inverse);
                        soa.read_lane_into(l, lanes, &mut lane_out);
                        assert_eq!(lane_out, expect, "n={n} lanes={lanes} lane={l}");
                    }
                }
            }
        }
    }

    #[test]
    fn inverse_normalization_matches_plan() {
        let n = 16;
        let lanes = 4;
        let rows: Vec<Vec<Complex>> = (0..lanes).map(|l| signal(n, l)).collect();
        let plan = FftPlan::new(n);
        let batch = BatchFftPlan::new(n);
        let mut soa = pack(&rows);
        batch.inverse(&mut soa, lanes);
        let mut lane_out = Vec::new();
        for (l, row) in rows.iter().enumerate() {
            let mut expect = row.clone();
            plan.inverse(&mut expect);
            soa.read_lane_into(l, lanes, &mut lane_out);
            assert_eq!(lane_out, expect, "lane {l}");
        }
    }

    #[test]
    fn scattered_prepermuted_matches_unpermuted_path() {
        for lanes in [1usize, 3, 8] {
            for log2 in 0..=6 {
                let n = 1usize << log2;
                // Short rows exercise the zero-padded scatter fill.
                let fill = (n * 3).div_ceil(4).max(1);
                let rows: Vec<Vec<Complex>> = (0..lanes).map(|l| signal(fill, l)).collect();
                let batch = BatchFftPlan::new(n);
                for inverse in [false, true] {
                    let mut via_swap = SoaComplex::new();
                    via_swap.reset(n * lanes);
                    let mut scattered = SoaComplex::new();
                    scattered.reset(n * lanes);
                    for (l, row) in rows.iter().enumerate() {
                        via_swap.write_lane(l, lanes, row);
                        batch.scatter_lane(&mut scattered, l, lanes, row);
                    }
                    batch.process(&mut via_swap, lanes, inverse);
                    batch.process_prepermuted(&mut scattered, lanes, inverse);
                    assert_eq!(scattered.re, via_swap.re, "n={n} lanes={lanes} re");
                    assert_eq!(scattered.im, via_swap.im, "n={n} lanes={lanes} im");
                }
                let mut via_swap = SoaComplex::new();
                via_swap.reset(n * lanes);
                let mut scattered = SoaComplex::new();
                scattered.reset(n * lanes);
                for (l, row) in rows.iter().enumerate() {
                    via_swap.write_lane(l, lanes, row);
                    batch.scatter_lane(&mut scattered, l, lanes, row);
                }
                batch.inverse(&mut via_swap, lanes);
                batch.inverse_prepermuted(&mut scattered, lanes);
                assert_eq!(scattered.re, via_swap.re, "inverse n={n} lanes={lanes} re");
                assert_eq!(scattered.im, via_swap.im, "inverse n={n} lanes={lanes} im");
            }
        }
    }

    #[test]
    #[should_panic(expected = "lane data must fit")]
    fn scatter_lane_rejects_long_rows() {
        let batch = BatchFftPlan::new(4);
        let mut soa = SoaComplex::new();
        soa.reset(4 * 2);
        batch.scatter_lane(&mut soa, 0, 2, &[Complex::ONE; 5]);
    }

    #[test]
    fn trivial_size_is_identity() {
        let batch = BatchFftPlan::new(1);
        let rows = vec![vec![Complex::new(2.5, -1.5)], vec![Complex::new(0.5, 3.0)]];
        let mut soa = pack(&rows);
        batch.forward(&mut soa, 2);
        assert_eq!(soa.get(0), Complex::new(2.5, -1.5));
        assert_eq!(soa.get(1), Complex::new(0.5, 3.0));
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let batch = BatchFftPlan::new(4);
        let mut soa = SoaComplex::new();
        batch.process(&mut soa, 0, false);
    }

    #[test]
    #[should_panic(expected = "plan size × lanes")]
    fn mismatched_buffer_rejected() {
        let batch = BatchFftPlan::new(4);
        let mut soa = SoaComplex::new();
        soa.reset(4 * 3 - 1);
        batch.process(&mut soa, 3, false);
    }
}
