//! Discrete Fourier transforms.
//!
//! The CSI→CIR conversion at the heart of NomLoc's PDP estimator is an
//! inverse DFT of the per-subcarrier channel coefficients. CSI vectors come
//! in awkward lengths — the Intel 5300 driver exports 30 grouped subcarriers
//! over a 20 MHz 802.11n channel — so alongside the classic radix-2
//! Cooley–Tukey kernel this module provides a Bluestein (chirp-z) fallback
//! that handles any length exactly.
//!
//! All transforms use the convention
//!
//! ```text
//! X[k] = Σ_n x[n]·e^{−j2πkn/N}          (forward)
//! x[n] = (1/N)·Σ_k X[k]·e^{+j2πkn/N}    (inverse)
//! ```

use crate::Complex;
use std::f64::consts::PI;

/// Forward DFT of arbitrary length.
///
/// Uses radix-2 Cooley–Tukey when `x.len()` is a power of two and Bluestein
/// otherwise. O(N log N) in both cases.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    dft(x, false)
}

/// Inverse DFT of arbitrary length (includes the `1/N` normalization).
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    dft(x, true)
}

/// Naive O(N²) DFT. Exists as a cross-check oracle for the fast paths and
/// for very short inputs where it is competitive.
pub fn dft_naive(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex::ZERO;
        for (i, &xi) in x.iter().enumerate() {
            let theta = sign * 2.0 * PI * (k as f64) * (i as f64) / (n as f64);
            acc += xi * Complex::cis(theta);
        }
        out.push(acc);
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for v in &mut out {
            *v = v.scale(scale);
        }
    }
    out
}

fn dft(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    let mut out = if n.is_power_of_two() {
        let mut buf = x.to_vec();
        fft_radix2(&mut buf, inverse);
        buf
    } else {
        bluestein(x, inverse)
    };
    if inverse {
        let scale = 1.0 / n as f64;
        for v in &mut out {
            *v = v.scale(scale);
        }
    }
    out
}

/// In-place radix-2 Cooley–Tukey, *without* inverse normalization.
///
/// Routes through the per-thread [`crate::plan::PlanCache`], so the
/// bit-reversal permutation and twiddle tables are computed once per size
/// per thread instead of on every call.
///
/// # Panics
///
/// Panics when `buf.len()` is not a power of two (plan construction
/// rejects other sizes).
pub fn fft_radix2(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    crate::plan::with_thread_plan(n, |plan| plan.process(buf, inverse));
}

/// The pre-plan iterative radix-2 kernel, kept as a benchmark baseline and
/// accuracy reference: it recomputes the bit-reversal permutation per call
/// and accumulates twiddles by repeated multiplication (`w *= wlen`),
/// which drifts by one rounding error per butterfly.
///
/// Semantics match the planned kernel: in-place, no inverse normalization.
pub fn fft_radix2_unplanned(buf: &mut [Complex], inverse: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            buf.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = buf[start + k];
                let v = buf[start + k + len / 2] * w;
                buf[start + k] = u + v;
                buf[start + k + len / 2] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Bluestein's chirp-z algorithm: DFT of arbitrary N via a power-of-two
/// convolution. No inverse normalization applied here.
fn bluestein(x: &[Complex], inverse: bool) -> Vec<Complex> {
    let n = x.len();
    let sign = if inverse { 1.0 } else { -1.0 };
    // Chirp: w[k] = e^{sign·jπk²/N}. Use k² mod 2N to keep angles bounded.
    let chirp: Vec<Complex> = (0..n)
        .map(|k| {
            let k2 = (k as u128 * k as u128) % (2 * n as u128);
            Complex::cis(sign * PI * k2 as f64 / n as f64)
        })
        .collect();

    let m = (2 * n - 1).next_power_of_two();
    let mut a = vec![Complex::ZERO; m];
    let mut b = vec![Complex::ZERO; m];
    for k in 0..n {
        a[k] = x[k] * chirp[k];
        b[k] = chirp[k].conj();
    }
    for k in 1..n {
        b[m - k] = chirp[k].conj();
    }
    // Convolve via the radix-2 kernel.
    fft_radix2(&mut a, false);
    fft_radix2(&mut b, false);
    for k in 0..m {
        a[k] *= b[k];
    }
    fft_radix2(&mut a, true);
    let scale = 1.0 / m as f64;
    (0..n).map(|k| a[k].scale(scale) * chirp[k]).collect()
}

/// The padded transform length used by [`ifft_padded`]: the next power of
/// two at least `max(len, min_len)`.
///
/// Exposed so batched callers can size their lane-major buffers to the
/// exact length the scalar path would use — the bit-identity contract
/// between the two depends on padding to the same target.
#[inline]
pub fn padded_len(len: usize, min_len: usize) -> usize {
    min_len.max(len).next_power_of_two()
}

/// Zero-pads `x` to the next power of two at least `min_len` and returns the
/// inverse FFT.
///
/// Zero-padding the frequency-domain CSI before the IFFT interpolates the
/// delay-domain profile, giving the PDP estimator sub-tap resolution.
pub fn ifft_padded(x: &[Complex], min_len: usize) -> Vec<Complex> {
    let mut out = Vec::new();
    ifft_padded_into(x, min_len, &mut out);
    out
}

/// [`ifft_padded`] into a caller-provided buffer: `out` is overwritten with
/// the padded inverse FFT and keeps its capacity across calls, so a loop
/// over many same-sized CSI snapshots allocates only on the first one.
///
/// Bit-identical to `ifft_padded` — the padded length is always a power of
/// two, so both run the same radix-2 kernel and `1/N` scaling in the same
/// order.
pub fn ifft_padded_into(x: &[Complex], min_len: usize, out: &mut Vec<Complex>) {
    let target = padded_len(x.len(), min_len);
    out.clear();
    out.extend_from_slice(x);
    out.resize(target, Complex::ZERO);
    fft_radix2(out, true);
    let scale = 1.0 / target as f64;
    for v in out.iter_mut() {
        *v = v.scale(scale);
    }
}

/// [`ifft_padded_into`] running the unplanned kernel. Benchmark baseline for
/// the planned path; not used on the serving hot path.
pub fn ifft_padded_into_unplanned(x: &[Complex], min_len: usize, out: &mut Vec<Complex>) {
    let target = padded_len(x.len(), min_len);
    out.clear();
    out.extend_from_slice(x);
    out.resize(target, Complex::ZERO);
    fft_radix2_unplanned(out, true);
    let scale = 1.0 / target as f64;
    for v in out.iter_mut() {
        *v = v.scale(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (*x - *y).abs() < tol,
                "index {i}: {x} vs {y} (diff {})",
                (*x - *y).abs()
            );
        }
    }

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex::new((0.3 * t).sin() + 0.1 * t, (0.7 * t).cos() - 0.05 * t)
            })
            .collect()
    }

    #[test]
    fn empty_input() {
        assert!(fft(&[]).is_empty());
        assert!(ifft(&[]).is_empty());
    }

    #[test]
    fn single_element_is_identity() {
        let x = vec![Complex::new(2.0, -3.0)];
        assert_close(&fft(&x), &x, 1e-12);
        assert_close(&ifft(&x), &x, 1e-12);
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        let spec = fft(&x);
        for s in spec {
            assert!((s - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_has_dc_only_spectrum() {
        let x = vec![Complex::new(3.0, 0.0); 16];
        let spec = fft(&x);
        assert!((spec[0].re - 48.0).abs() < 1e-9);
        for s in &spec[1..] {
            assert!(s.abs() < 1e-9);
        }
    }

    #[test]
    fn single_tone_bin() {
        // x[n] = e^{j2π·3n/16} should land in bin 3.
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(2.0 * PI * 3.0 * i as f64 / n as f64))
            .collect();
        let spec = fft(&x);
        for (k, s) in spec.iter().enumerate() {
            if k == 3 {
                assert!((s.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(s.abs() < 1e-9, "leakage in bin {k}");
            }
        }
    }

    #[test]
    fn round_trip_power_of_two() {
        for n in [2usize, 4, 8, 64, 256] {
            let x = signal(n);
            let back = ifft(&fft(&x));
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn round_trip_arbitrary_lengths() {
        // 30 = Intel 5300 grouped subcarriers; 56 = full 20 MHz 802.11n.
        for n in [3usize, 5, 7, 12, 30, 56, 100] {
            let x = signal(n);
            let back = ifft(&fft(&x));
            assert_close(&back, &x, 1e-8);
        }
    }

    #[test]
    fn fast_matches_naive() {
        for n in [4usize, 8, 13, 30, 31] {
            let x = signal(n);
            assert_close(&fft(&x), &dft_naive(&x, false), 1e-8);
            assert_close(&ifft(&x), &dft_naive(&x, true), 1e-8);
        }
    }

    #[test]
    fn linearity() {
        let n = 30;
        let x = signal(n);
        let y: Vec<Complex> = signal(n).iter().map(|z| z.conj()).collect();
        let sum: Vec<Complex> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        let expect: Vec<Complex> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        assert_close(&fsum, &expect, 1e-8);
    }

    #[test]
    fn parseval_energy_conserved() {
        let x = signal(64);
        let spec = fft(&x);
        let e_time: f64 = x.iter().map(|z| z.norm_sq()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sq()).sum::<f64>() / 64.0;
        assert!((e_time - e_freq).abs() / e_time < 1e-10);
    }

    #[test]
    fn ifft_padded_pads_to_power_of_two() {
        let x = signal(30);
        let y = ifft_padded(&x, 64);
        assert_eq!(y.len(), 64);
        let z = ifft_padded(&x, 10);
        assert_eq!(z.len(), 32);
    }

    #[test]
    fn ifft_padded_into_matches_allocating_variant() {
        // One dirty scratch reused across shrinking and growing targets —
        // results must stay bit-identical to the allocating call.
        let mut scratch = vec![Complex::new(9.9, -9.9); 7];
        for (n, min_len) in [(30usize, 256usize), (30, 64), (8, 8), (5, 0), (56, 128)] {
            let x = signal(n);
            let expect = ifft_padded(&x, min_len);
            ifft_padded_into(&x, min_len, &mut scratch);
            assert_eq!(scratch, expect, "n={n} min_len={min_len}");
        }
    }

    #[test]
    fn ifft_padded_into_empty_input() {
        // 0.next_power_of_two() == 1: an empty CSI still yields one zero tap.
        let mut scratch = vec![Complex::ONE; 3];
        ifft_padded_into(&[], 0, &mut scratch);
        assert_eq!(scratch, vec![Complex::ZERO]);
        assert_eq!(ifft_padded(&[], 0), vec![Complex::ZERO]);
    }

    #[test]
    fn planned_twiddles_no_worse_than_iterative_on_adversarial_input() {
        // Regression for the twiddle rounding drift: the old kernel
        // accumulated w *= wlen per butterfly, so late butterflies in a long
        // stage used twiddles carrying hundreds of rounding errors. A
        // 1024-point shifted impulse is adversarial for exactly that: its
        // spectrum is a pure twiddle per bin, the O(N²) oracle reduces to a
        // single exact term, so the measured error is the kernel's twiddle
        // error and nothing else.
        let n = 1024usize;
        let mut x = vec![Complex::ZERO; n];
        x[1] = Complex::ONE;
        let oracle = dft_naive(&x, false);

        let mut planned = x.clone();
        fft_radix2(&mut planned, false);
        let mut iterative = x.clone();
        fft_radix2_unplanned(&mut iterative, false);

        let err = |got: &[Complex]| -> f64 {
            got.iter()
                .zip(&oracle)
                .map(|(a, b)| (*a - *b).abs())
                .fold(0.0, f64::max)
        };
        let planned_err = err(&planned);
        let iterative_err = err(&iterative);
        assert!(
            planned_err <= iterative_err,
            "planned max error {planned_err:e} exceeds iterative {iterative_err:e}"
        );
        // And the planned kernel must be accurate in absolute terms: every
        // output has unit magnitude, so a few ulps is the right scale.
        assert!(planned_err < 1e-13, "planned error {planned_err:e}");
    }

    #[test]
    fn unplanned_kernel_matches_planned_within_tolerance() {
        for n in [2usize, 8, 64, 256] {
            let x = signal(n);
            let mut a = x.clone();
            fft_radix2(&mut a, false);
            let mut b = x.clone();
            fft_radix2_unplanned(&mut b, false);
            assert_close(&a, &b, 1e-8 * n as f64);
        }
        let x = signal(30);
        let mut planned = Vec::new();
        ifft_padded_into(&x, 256, &mut planned);
        let mut unplanned = Vec::new();
        ifft_padded_into_unplanned(&x, 256, &mut unplanned);
        assert_close(&planned, &unplanned, 1e-10);
    }

    #[test]
    fn padding_preserves_peak_location_for_impulse_like_channel() {
        // Channel with a single dominant delay: spectrum is a complex
        // exponential; the padded IFFT must peak near the same relative
        // delay.
        let n = 30;
        let delay_frac = 0.2; // 20 % of the aliasing window
        let x: Vec<Complex> = (0..n)
            .map(|k| Complex::cis(-2.0 * PI * delay_frac * k as f64))
            .collect();
        let cir = ifft_padded(&x, 256);
        let peak = cir
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sq().total_cmp(&b.1.norm_sq()))
            .unwrap()
            .0;
        let got_frac = peak as f64 / cir.len() as f64;
        assert!(
            (got_frac - delay_frac).abs() < 0.05,
            "peak at {got_frac}, expected {delay_frac}"
        );
    }
}
