//! Window functions for spectral shaping.
//!
//! The CSI→CIR transform operates on a finite 20 MHz slice of spectrum; the
//! implicit rectangular window convolves the delay profile with a Dirichlet
//! kernel whose −13 dB sidelobes can mask weak taps and bias the max-tap
//! PDP. Tapering the subcarrier samples trades main-lobe width for sidelobe
//! suppression — the standard knob real CSI pipelines expose, offered here
//! through [`crate::pdp`] consumers via [`Window::apply`].

use crate::Complex;

/// A window (taper) function over `n` samples.
///
/// # Example
///
/// ```
/// use nomloc_dsp::{Complex, Window};
///
/// let flat = vec![Complex::ONE; 16];
/// let tapered = Window::Hann.apply(&flat);
/// // Endpoints are pulled to zero, the middle is emphasized.
/// assert!(tapered[0].abs() < 1e-12);
/// assert!(tapered[8].abs() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Window {
    /// No tapering (rectangular window): narrowest main lobe, −13 dB
    /// sidelobes.
    #[default]
    Rectangular,
    /// Hann window: −31 dB sidelobes, 2× main-lobe width.
    Hann,
    /// Hamming window: −41 dB first sidelobe, slightly narrower than Hann.
    Hamming,
    /// Blackman window: −58 dB sidelobes, 3× main-lobe width.
    Blackman,
}

impl Window {
    /// The window coefficient at sample `i` of `n`.
    ///
    /// Returns 1.0 for every sample of a rectangular window, and the
    /// symmetric taper value otherwise. `n == 1` always yields 1.0.
    ///
    /// # Panics
    ///
    /// Panics when `i >= n`.
    pub fn coefficient(&self, i: usize, n: usize) -> f64 {
        assert!(i < n, "sample index out of range");
        if n == 1 {
            return 1.0;
        }
        let x = i as f64 / (n - 1) as f64;
        let tau = std::f64::consts::TAU;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 - 0.5 * (tau * x).cos(),
            Window::Hamming => 0.54 - 0.46 * (tau * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (tau * x).cos() + 0.08 * (2.0 * tau * x).cos(),
        }
    }

    /// All `n` coefficients.
    pub fn coefficients(&self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Applies the window to a complex sample vector, returning the tapered
    /// copy normalized to preserve total energy for white input (division
    /// by the RMS coefficient), so windowed and unwindowed PDPs remain
    /// comparable in scale.
    pub fn apply(&self, samples: &[Complex]) -> Vec<Complex> {
        let n = samples.len();
        if n == 0 || *self == Window::Rectangular {
            return samples.to_vec();
        }
        let coeffs = self.coefficients(n);
        let rms = (coeffs.iter().map(|c| c * c).sum::<f64>() / n as f64).sqrt();
        samples
            .iter()
            .zip(&coeffs)
            .map(|(s, &c)| s.scale(c / rms))
            .collect()
    }

    /// [`Window::apply`] into a caller-provided buffer: `out` is overwritten
    /// with the tapered samples and keeps its capacity across calls, so the
    /// per-packet hot path tapers without allocating.
    ///
    /// Bit-identical to `apply`: the coefficients are recomputed in two
    /// passes (RMS accumulation, then scaling) in the same order the
    /// allocating variant visits them.
    pub fn apply_into(&self, samples: &[Complex], out: &mut Vec<Complex>) {
        out.clear();
        let n = samples.len();
        if n == 0 || *self == Window::Rectangular {
            out.extend_from_slice(samples);
            return;
        }
        let sum_sq: f64 = (0..n)
            .map(|i| {
                let c = self.coefficient(i, n);
                c * c
            })
            .sum();
        let rms = (sum_sq / n as f64).sqrt();
        out.extend(
            samples
                .iter()
                .enumerate()
                .map(|(i, s)| s.scale(self.coefficient(i, n) / rms)),
        );
    }

    /// Equivalent noise bandwidth relative to rectangular (1.0 = rect).
    ///
    /// Computed numerically from the coefficients: `n·Σc² / (Σc)²`.
    pub fn enbw(&self, n: usize) -> f64 {
        let coeffs = self.coefficients(n);
        let sum: f64 = coeffs.iter().sum();
        let sum_sq: f64 = coeffs.iter().map(|c| c * c).sum();
        n as f64 * sum_sq / (sum * sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft;

    #[test]
    fn rectangular_is_identity() {
        let x = vec![Complex::new(1.0, 2.0); 8];
        assert_eq!(Window::Rectangular.apply(&x), x);
        assert!(Window::Rectangular
            .coefficients(5)
            .iter()
            .all(|&c| c == 1.0));
        assert!((Window::Rectangular.enbw(64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let c = w.coefficients(33);
            for i in 0..c.len() {
                assert!(
                    (c[i] - c[c.len() - 1 - i]).abs() < 1e-12,
                    "{w:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn hann_endpoints_zero_center_one() {
        let c = Window::Hann.coefficients(65);
        assert!(c[0].abs() < 1e-12);
        assert!(c[64].abs() < 1e-12);
        assert!((c[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints_nonzero() {
        let c = Window::Hamming.coefficients(65);
        assert!((c[0] - 0.08).abs() < 1e-12);
        assert!((c[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enbw_ordering() {
        // Broader windows have larger equivalent noise bandwidth.
        let n = 64;
        let rect = Window::Rectangular.enbw(n);
        let hann = Window::Hann.enbw(n);
        let blackman = Window::Blackman.enbw(n);
        assert!(rect < hann && hann < blackman);
        // Textbook values: Hann 1.50, Blackman ≈ 1.73 (asymptotic).
        assert!((hann - 1.5).abs() < 0.05, "hann enbw {hann}");
        assert!((blackman - 1.73).abs() < 0.06, "blackman enbw {blackman}");
    }

    #[test]
    fn apply_preserves_energy_for_flat_input() {
        let x = vec![Complex::ONE; 30];
        for w in [Window::Hann, Window::Hamming, Window::Blackman] {
            let y = w.apply(&x);
            let e_in: f64 = x.iter().map(|z| z.norm_sq()).sum();
            let e_out: f64 = y.iter().map(|z| z.norm_sq()).sum();
            // RMS normalization preserves the energy of white (flat
            // magnitude) input exactly.
            assert!(
                (e_out / e_in - 1.0).abs() < 1e-9,
                "{w:?} energy ratio {}",
                e_out / e_in
            );
        }
    }

    #[test]
    fn hann_suppresses_sidelobes() {
        // A mid-bin tone leaks everywhere under rectangular windowing;
        // Hann knocks the far sidelobes down by an order of magnitude.
        let n = 64;
        let freq = 10.37; // deliberately off-bin
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::cis(std::f64::consts::TAU * freq * i as f64 / n as f64))
            .collect();
        let far_bin = 40;
        let rect_leak = fft::fft(&x)[far_bin].abs();
        let hann_leak = fft::fft(&Window::Hann.apply(&x))[far_bin].abs();
        assert!(
            hann_leak < rect_leak / 8.0,
            "hann {hann_leak} vs rect {rect_leak}"
        );
    }

    #[test]
    fn empty_input_ok() {
        assert!(Window::Hann.apply(&[]).is_empty());
    }

    #[test]
    fn apply_into_matches_apply_bit_for_bit() {
        // One dirty buffer reused across every window and several lengths —
        // results must stay bit-identical to the allocating call.
        let mut out = vec![Complex::new(4.2, -4.2); 3];
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            // n = 2 is excluded: a 2-sample Hann window is all zeros, so
            // both paths produce NaN (equal bit patterns, but NaN != NaN).
            for n in [0usize, 1, 3, 30, 64] {
                let x: Vec<Complex> = (0..n)
                    .map(|i| Complex::new(0.3 * i as f64, 1.0 - 0.1 * i as f64))
                    .collect();
                w.apply_into(&x, &mut out);
                assert_eq!(out, w.apply(&x), "{w:?} n={n}");
            }
        }
    }

    #[test]
    fn single_sample_coefficient_is_one() {
        for w in [
            Window::Rectangular,
            Window::Hann,
            Window::Hamming,
            Window::Blackman,
        ] {
            assert_eq!(w.coefficient(0, 1), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coefficient_bounds_checked() {
        let _ = Window::Hann.coefficient(5, 5);
    }
}
