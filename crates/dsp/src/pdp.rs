//! Power delay profiles.
//!
//! The *power delay profile* (PDP, the delay-domain power distribution of a
//! radio channel — not to be confused with the paper's "power of direct
//! path", which is a scalar extracted *from* the profile) describes how the
//! received energy spreads across propagation delays. NomLoc obtains it by
//! an IFFT of the frequency-domain CSI and summarizes each link by its
//! maximum tap power (§IV-A).

use crate::batch::BatchFftPlan;
use crate::soa::SoaComplex;
use crate::{fft, Complex};

/// The delay-domain power profile of one radio link.
///
/// # Example
///
/// ```
/// use nomloc_dsp::pdp::DelayProfile;
/// use nomloc_dsp::Complex;
///
/// // A flat spectrum concentrates all energy at delay zero.
/// let csi = vec![Complex::ONE; 32];
/// let profile = DelayProfile::from_csi(&csi, 20e6, 64);
/// assert_eq!(profile.peak().index, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DelayProfile {
    /// Power of each delay tap (linear, |h|²).
    powers: Vec<f64>,
    /// Delay spacing between consecutive taps, in seconds.
    tap_spacing: f64,
}

/// One tap of a [`DelayProfile`], as returned by its queries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tap {
    /// Index of the tap within the profile.
    pub index: usize,
    /// Delay of the tap in seconds.
    pub delay: f64,
    /// Linear power of the tap.
    pub power: f64,
}

impl DelayProfile {
    /// Builds a profile from time-domain CIR taps sampled every
    /// `tap_spacing` seconds.
    ///
    /// # Panics
    ///
    /// Panics when `cir` is empty or `tap_spacing` is not positive.
    pub fn from_cir(cir: &[Complex], tap_spacing: f64) -> Self {
        assert!(!cir.is_empty(), "CIR must not be empty");
        assert!(tap_spacing > 0.0, "tap spacing must be positive");
        DelayProfile {
            powers: cir.iter().map(|h| h.norm_sq()).collect(),
            tap_spacing,
        }
    }

    /// Builds a profile from frequency-domain CSI spanning `bandwidth` Hz.
    ///
    /// The CSI is zero-padded to at least `min_taps` (rounded up to a power
    /// of two) before the IFFT, interpolating the delay axis; the effective
    /// tap spacing is `len(csi) / (bandwidth · n_taps)` so that the total
    /// unambiguous delay window remains `len(csi)/bandwidth`.
    ///
    /// # Panics
    ///
    /// Panics when `csi` is empty or `bandwidth` is not positive.
    pub fn from_csi(csi: &[Complex], bandwidth: f64, min_taps: usize) -> Self {
        Self::from_csi_with(csi, bandwidth, min_taps, &mut Vec::new())
    }

    /// [`DelayProfile::from_csi`] with a caller-provided IFFT scratch
    /// buffer. `scratch` is overwritten and keeps its capacity, so a loop
    /// over a burst of same-sized snapshots performs the delay-domain
    /// transform without per-packet allocation. Bit-identical to
    /// `from_csi`.
    ///
    /// # Panics
    ///
    /// Panics when `csi` is empty or `bandwidth` is not positive.
    pub fn from_csi_with(
        csi: &[Complex],
        bandwidth: f64,
        min_taps: usize,
        scratch: &mut Vec<Complex>,
    ) -> Self {
        assert!(!csi.is_empty(), "CSI must not be empty");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        fft::ifft_padded_into(csi, min_taps, scratch);
        // The n-point unpadded IFFT has tap spacing 1/bandwidth and window
        // n/bandwidth; padding to m taps subdivides the same window.
        let window = csi.len() as f64 / bandwidth;
        let spacing = window / scratch.len() as f64;
        // Undo the extra 1/pad scaling relative to the unpadded IFFT so
        // that tap powers are comparable across pad sizes.
        let gain = scratch.len() as f64 / csi.len() as f64;
        DelayProfile {
            powers: scratch.iter().map(|h| (*h * gain).norm_sq()).collect(),
            tap_spacing: spacing,
        }
    }

    /// The peak tap power of [`DelayProfile::from_csi_with`] without
    /// materializing the profile: the tap powers are folded into a running
    /// maximum as they are computed, so the per-packet hot path performs no
    /// allocation beyond the reused IFFT scratch.
    ///
    /// Value-identical to `from_csi_with(..).peak().power` — each power is
    /// the same `(h · gain)` norm and the fold uses the same `total_cmp`
    /// order with later ties winning, exactly like
    /// [`DelayProfile::peak`]'s `max_by`.
    ///
    /// # Panics
    ///
    /// Panics when `csi` is empty or `bandwidth` is not positive.
    pub fn peak_power_from_csi_with(
        csi: &[Complex],
        bandwidth: f64,
        min_taps: usize,
        scratch: &mut Vec<Complex>,
    ) -> f64 {
        assert!(!csi.is_empty(), "CSI must not be empty");
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        fft::ifft_padded_into(csi, min_taps, scratch);
        let gain = scratch.len() as f64 / csi.len() as f64;
        let mut taps = scratch.iter();
        let first = taps.next().expect("padded IFFT output is never empty");
        let mut best = (*first * gain).norm_sq();
        for h in taps {
            let power = (*h * gain).norm_sq();
            if power.total_cmp(&best) != std::cmp::Ordering::Less {
                best = power;
            }
        }
        best
    }

    /// Batched [`DelayProfile::peak_power_from_csi_with`]: one peak tap
    /// power per lane of a lane-major batch of same-length CSI rows.
    ///
    /// The caller packs `lanes` CSI rows of original length `csi_len` into
    /// `buf` via [`SoaComplex::reset`] (to `plan.len() * lanes` zeros — the
    /// zero rows beyond `csi_len` are exactly the padding
    /// [`fft::ifft_padded_into`] would append) and [`SoaComplex::write_lane`],
    /// with `plan.len() == fft::padded_len(csi_len, min_taps)`. This runs a
    /// single batched inverse transform and folds each lane's tap powers
    /// into its running maximum, writing one peak per lane into `out`.
    ///
    /// Bit-identical per lane to the scalar path: the batched kernel
    /// performs the scalar kernel's float ops in the same per-lane order,
    /// and the fold uses the same `(h · gain)` norm and `total_cmp`
    /// tie-break (later ties win).
    ///
    /// # Panics
    ///
    /// Panics when `csi_len` is zero, `plan.len() < csi_len`, `lanes` is
    /// zero, or `buf.len() != plan.len() * lanes`.
    pub fn peak_powers_from_batch_with(
        plan: &BatchFftPlan,
        buf: &mut SoaComplex,
        lanes: usize,
        csi_len: usize,
        out: &mut Vec<f64>,
    ) {
        assert!(csi_len > 0, "CSI must not be empty");
        assert!(
            plan.len() >= csi_len,
            "padded plan must cover the CSI length"
        );
        plan.inverse(buf, lanes);
        Self::fold_batch_peaks(plan, buf, lanes, csi_len, out);
    }

    /// [`DelayProfile::peak_powers_from_batch_with`] for a batch whose
    /// rows were scattered straight into bit-reversed positions via
    /// [`BatchFftPlan::scatter_lane`]: the inverse transform skips the
    /// swap traversal ([`BatchFftPlan::inverse_prepermuted`]), everything
    /// else — gain, fold order, tie-break — is identical, so the peaks
    /// stay bit-identical to the scalar path.
    ///
    /// # Panics
    ///
    /// Same contract as [`DelayProfile::peak_powers_from_batch_with`].
    pub fn peak_powers_from_prepermuted_batch_with(
        plan: &BatchFftPlan,
        buf: &mut SoaComplex,
        lanes: usize,
        csi_len: usize,
        out: &mut Vec<f64>,
    ) {
        assert!(csi_len > 0, "CSI must not be empty");
        assert!(
            plan.len() >= csi_len,
            "padded plan must cover the CSI length"
        );
        plan.inverse_prepermuted(buf, lanes);
        Self::fold_batch_peaks(plan, buf, lanes, csi_len, out);
    }

    /// Shared gain + per-lane running-maximum fold over a transformed
    /// batch (taps walked row-major, so per lane the visit order matches
    /// the scalar fold exactly).
    fn fold_batch_peaks(
        plan: &BatchFftPlan,
        buf: &SoaComplex,
        lanes: usize,
        csi_len: usize,
        out: &mut Vec<f64>,
    ) {
        let gain = plan.len() as f64 / csi_len as f64;
        out.clear();
        // Tap 0 initializes each lane's running maximum…
        for lane in 0..lanes {
            let sr = buf.re[lane] * gain;
            let si = buf.im[lane] * gain;
            out.push(sr * sr + si * si);
        }
        // …and taps 1.. fold in row-major order: per lane this visits taps
        // in exactly the order the scalar fold does.
        for i in 1..plan.len() {
            let base = i * lanes;
            let row_re = &buf.re[base..base + lanes];
            let row_im = &buf.im[base..base + lanes];
            for ((best, &re), &im) in out.iter_mut().zip(row_re).zip(row_im) {
                let sr = re * gain;
                let si = im * gain;
                let power = sr * sr + si * si;
                if power.total_cmp(best) != std::cmp::Ordering::Less {
                    *best = power;
                }
            }
        }
    }

    /// Number of delay taps.
    #[inline]
    pub fn len(&self) -> usize {
        self.powers.len()
    }

    /// Returns `true` when the profile has no taps (never, post-construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.powers.is_empty()
    }

    /// Delay spacing between taps, in seconds.
    #[inline]
    pub fn tap_spacing(&self) -> f64 {
        self.tap_spacing
    }

    /// Linear tap powers.
    #[inline]
    pub fn powers(&self) -> &[f64] {
        &self.powers
    }

    /// Tap at `index`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is out of bounds.
    pub fn tap(&self, index: usize) -> Tap {
        Tap {
            index,
            delay: index as f64 * self.tap_spacing,
            power: self.powers[index],
        }
    }

    /// The maximum-power tap.
    ///
    /// This is the paper's PDP surrogate: "it is reasonable to assume that
    /// the [power of the direct path] is the highest among all the
    /// transmission paths. Hence, we can use the maximum power of the power
    /// delay profile to approximate PDP of each link" (§IV-A).
    pub fn peak(&self) -> Tap {
        let (index, _) = self
            .powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("profile is non-empty by construction");
        self.tap(index)
    }

    /// The first tap whose power exceeds `threshold × peak power`.
    ///
    /// A *first-path* detector: under LOS this coincides with the peak; under
    /// NLOS the first path is attenuated and arrives before stronger
    /// reflections, which is the dichotomy Fig. 3 of the paper illustrates.
    pub fn first_path(&self, threshold: f64) -> Tap {
        let peak_power = self.peak().power;
        let cut = peak_power * threshold;
        for (i, &p) in self.powers.iter().enumerate() {
            if p >= cut {
                return self.tap(i);
            }
        }
        self.peak()
    }

    /// Total received power (sum of all taps).
    pub fn total_power(&self) -> f64 {
        self.powers.iter().sum()
    }

    /// Mean excess delay: the power-weighted mean tap delay.
    pub fn mean_excess_delay(&self) -> f64 {
        let total = self.total_power();
        if total <= 0.0 {
            return 0.0;
        }
        self.powers
            .iter()
            .enumerate()
            .map(|(i, &p)| i as f64 * self.tap_spacing * p)
            .sum::<f64>()
            / total
    }

    /// RMS delay spread: the power-weighted standard deviation of tap delay.
    ///
    /// A standard channel dispersion metric; large values indicate rich
    /// multipath, the regime where RSS-based localization breaks down.
    pub fn rms_delay_spread(&self) -> f64 {
        let total = self.total_power();
        if total <= 0.0 {
            return 0.0;
        }
        let mean = self.mean_excess_delay();
        let second: f64 = self
            .powers
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let d = i as f64 * self.tap_spacing;
                d * d * p
            })
            .sum::<f64>()
            / total;
        (second - mean * mean).max(0.0).sqrt()
    }

    /// Rician K-factor estimate: peak power over the summed power of all
    /// other taps, in linear scale. Larger means more LOS-dominated.
    pub fn k_factor(&self) -> f64 {
        let peak = self.peak().power;
        let rest = self.total_power() - peak;
        if rest <= 0.0 {
            f64::INFINITY
        } else {
            peak / rest
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn two_path_csi(n: usize, bw: f64, d1: f64, a1: f64, d2: f64, a2: f64) -> Vec<Complex> {
        (0..n)
            .map(|k| {
                let f = k as f64 * bw / n as f64;
                Complex::cis(-2.0 * PI * f * d1).scale(a1)
                    + Complex::cis(-2.0 * PI * f * d2).scale(a2)
            })
            .collect()
    }

    #[test]
    fn from_csi_with_matches_from_csi() {
        let bw = 20e6;
        let mut scratch = vec![Complex::new(7.0, -7.0); 5]; // dirty, wrong size
        for (n, min_taps) in [(30usize, 256usize), (30, 64), (16, 16), (56, 128)] {
            let csi = two_path_csi(n, bw, 80e-9, 1.0, 350e-9, 0.5);
            let direct = DelayProfile::from_csi(&csi, bw, min_taps);
            let reused = DelayProfile::from_csi_with(&csi, bw, min_taps, &mut scratch);
            // Bit-identical, not just approximately equal.
            assert_eq!(reused, direct, "n={n} min_taps={min_taps}");
        }
    }

    #[test]
    fn peak_power_from_csi_with_matches_profile_peak() {
        let bw = 20e6;
        let mut scratch = vec![Complex::new(3.0, 3.0); 9]; // dirty, wrong size
        for (n, min_taps) in [(30usize, 256usize), (30, 64), (16, 16), (56, 128), (1, 1)] {
            let csi = two_path_csi(n, bw, 80e-9, 1.0, 350e-9, 0.5);
            let profile = DelayProfile::from_csi(&csi, bw, min_taps);
            let fused = DelayProfile::peak_power_from_csi_with(&csi, bw, min_taps, &mut scratch);
            // Value-identical: same powers, same tie-break order.
            assert_eq!(fused, profile.peak().power, "n={n} min_taps={min_taps}");
        }
    }

    #[test]
    fn batched_peaks_match_scalar_bit_for_bit() {
        let bw = 20e6;
        for (n, min_taps) in [(30usize, 256usize), (30, 64), (16, 16), (56, 128), (1, 1)] {
            let lanes = 5;
            let rows: Vec<Vec<Complex>> = (0..lanes)
                .map(|l| {
                    two_path_csi(
                        n,
                        bw,
                        (50 + 40 * l) as f64 * 1e-9,
                        1.0 - 0.1 * l as f64,
                        350e-9,
                        0.5,
                    )
                })
                .collect();
            let padded = crate::fft::padded_len(n, min_taps);
            let plan = BatchFftPlan::new(padded);
            let mut buf = SoaComplex::new();
            buf.reset(padded * lanes);
            for (l, row) in rows.iter().enumerate() {
                buf.write_lane(l, lanes, row);
            }
            let mut peaks = Vec::new();
            DelayProfile::peak_powers_from_batch_with(&plan, &mut buf, lanes, n, &mut peaks);
            let mut scratch = Vec::new();
            for (l, row) in rows.iter().enumerate() {
                let scalar =
                    DelayProfile::peak_power_from_csi_with(row, bw, min_taps, &mut scratch);
                assert_eq!(peaks[l], scalar, "n={n} min_taps={min_taps} lane={l}");
            }
        }
    }

    #[test]
    fn from_cir_powers() {
        let cir = vec![
            Complex::new(2.0, 0.0),
            Complex::new(0.0, 1.0),
            Complex::ZERO,
        ];
        let p = DelayProfile::from_cir(&cir, 50e-9);
        assert_eq!(p.len(), 3);
        assert_eq!(p.powers(), &[4.0, 1.0, 0.0]);
        assert_eq!(p.peak().index, 0);
        assert!((p.tap(1).delay - 50e-9).abs() < 1e-18);
    }

    #[test]
    #[should_panic(expected = "CIR must not be empty")]
    fn from_cir_rejects_empty() {
        let _ = DelayProfile::from_cir(&[], 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn from_csi_rejects_bad_bandwidth() {
        let _ = DelayProfile::from_csi(&[Complex::ONE], 0.0, 8);
    }

    #[test]
    fn flat_spectrum_is_single_tap() {
        let csi = vec![Complex::ONE; 30];
        let p = DelayProfile::from_csi(&csi, 20e6, 64);
        assert_eq!(p.peak().index, 0);
        // Zero-padding a rectangular spectrum smears the impulse into a
        // Dirichlet main lobe; the lobe (peak ± 3 taps, with wrap-around)
        // still holds the bulk of the energy.
        let n = p.len();
        let lobe: f64 = (-3i64..=3)
            .map(|d| p.powers()[((d.rem_euclid(n as i64)) as usize) % n])
            .sum();
        assert!(lobe / p.total_power() > 0.8, "lobe fraction too small");
    }

    #[test]
    fn delayed_path_peaks_at_its_delay() {
        let bw = 20e6;
        let n = 30;
        let delay = 300e-9; // 300 ns
        let csi: Vec<Complex> = (0..n)
            .map(|k| Complex::cis(-2.0 * PI * (k as f64 * bw / n as f64) * delay))
            .collect();
        let p = DelayProfile::from_csi(&csi, bw, 256);
        let peak = p.peak();
        assert!(
            (peak.delay - delay).abs() < 2.0 * p.tap_spacing(),
            "peak at {} s, expected {} s",
            peak.delay,
            delay
        );
    }

    #[test]
    fn stronger_path_wins_peak() {
        let bw = 20e6;
        // Direct path at 50 ns with amplitude 1.0; reflection at 400 ns, 0.4.
        let csi = two_path_csi(30, bw, 50e-9, 1.0, 400e-9, 0.4);
        let p = DelayProfile::from_csi(&csi, bw, 256);
        assert!((p.peak().delay - 50e-9).abs() < 2.0 * p.tap_spacing());
        // NLOS flips the strengths: the late path now wins the max.
        let csi = two_path_csi(30, bw, 50e-9, 0.2, 400e-9, 0.8);
        let p = DelayProfile::from_csi(&csi, bw, 256);
        assert!((p.peak().delay - 400e-9).abs() < 2.0 * p.tap_spacing());
    }

    #[test]
    fn first_path_detects_early_weak_tap() {
        let bw = 20e6;
        let csi = two_path_csi(30, bw, 50e-9, 0.5, 400e-9, 1.0);
        let p = DelayProfile::from_csi(&csi, bw, 256);
        let first = p.first_path(0.1);
        assert!(first.delay < 100e-9, "first path at {}", first.delay);
        assert!(p.peak().delay > 300e-9);
    }

    #[test]
    fn peak_power_scales_quadratically_with_amplitude() {
        let bw = 20e6;
        let weak = DelayProfile::from_csi(&two_path_csi(30, bw, 0.0, 1.0, 0.0, 0.0), bw, 128);
        let strong = DelayProfile::from_csi(&two_path_csi(30, bw, 0.0, 2.0, 0.0, 0.0), bw, 128);
        let ratio = strong.peak().power / weak.peak().power;
        assert!((ratio - 4.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn peak_power_invariant_to_padding() {
        let bw = 20e6;
        // Delay window is 30/bw = 1.5 µs; 93.75 ns lands exactly on a tap
        // for both pad sizes (4/64 and 32/512 of the window), so the peak
        // sample sits on the true maximum and only the normalization is
        // under test.
        let csi = two_path_csi(30, bw, 93.75e-9, 1.0, 0.0, 0.0);
        let p64 = DelayProfile::from_csi(&csi, bw, 64);
        let p512 = DelayProfile::from_csi(&csi, bw, 512);
        let rel = (p64.peak().power - p512.peak().power).abs() / p64.peak().power;
        assert!(rel < 1e-9, "padding changed peak power by {rel}");
        // Off-grid delays suffer bounded scalloping: still within ~15 %.
        let csi = two_path_csi(30, bw, 100e-9, 1.0, 0.0, 0.0);
        let p256 = DelayProfile::from_csi(&csi, bw, 256);
        let p1024 = DelayProfile::from_csi(&csi, bw, 1024);
        let rel = (p256.peak().power - p1024.peak().power).abs() / p1024.peak().power;
        assert!(rel < 0.15, "off-grid scalloping too large: {rel}");
    }

    #[test]
    fn delay_spread_zero_for_single_path() {
        let cir = vec![Complex::ONE, Complex::ZERO, Complex::ZERO];
        let p = DelayProfile::from_cir(&cir, 50e-9);
        assert_eq!(p.rms_delay_spread(), 0.0);
        assert_eq!(p.mean_excess_delay(), 0.0);
    }

    #[test]
    fn delay_spread_positive_for_two_paths() {
        let cir = vec![Complex::ONE, Complex::ZERO, Complex::ONE];
        let p = DelayProfile::from_cir(&cir, 50e-9);
        assert!((p.mean_excess_delay() - 50e-9).abs() < 1e-15);
        assert!((p.rms_delay_spread() - 50e-9).abs() < 1e-15);
    }

    #[test]
    fn k_factor_orders_los_vs_nlos() {
        let los = DelayProfile::from_cir(&[Complex::new(3.0, 0.0), Complex::new(0.5, 0.0)], 50e-9);
        let nlos = DelayProfile::from_cir(
            &[
                Complex::new(1.0, 0.0),
                Complex::new(0.9, 0.0),
                Complex::new(0.8, 0.0),
            ],
            50e-9,
        );
        assert!(los.k_factor() > nlos.k_factor());
        let pure = DelayProfile::from_cir(&[Complex::ONE], 50e-9);
        assert!(pure.k_factor().is_infinite());
    }
}
