//! Precomputed FFT plans and a per-thread plan cache.
//!
//! The iterative radix-2 kernel in [`crate::fft`] recomputes the bit-reversal
//! permutation on every call and generates twiddle factors by repeated
//! complex multiplication (`w *= wlen`), which both wastes work and
//! accumulates one rounding error per butterfly. An [`FftPlan`] does that
//! work once per transform size: the swap pairs of the bit-reversal
//! permutation and a per-stage twiddle table whose entries are each computed
//! directly as `e^{±j2πk/len}` — no accumulated drift.
//!
//! Plans are immutable after construction, so a [`PlanCache`] hands out
//! shared references and each batcher thread reuses its plans across
//! requests via [`with_thread_plan`]. The hot path therefore performs zero
//! allocation in steady state: the first transform of a given size on a
//! thread builds the plan, every later one just runs butterflies.

use crate::batch::BatchFftPlan;
use crate::Complex;
use std::cell::RefCell;
use std::f64::consts::PI;
use std::rc::Rc;

/// A precomputed radix-2 FFT plan for one fixed power-of-two size.
///
/// Holds the bit-reversal swap pairs and per-stage twiddle tables for both
/// transform directions. Construction is `O(N log N)`; each
/// [`process`](FftPlan::process) call then runs the classic in-place
/// Cooley–Tukey butterflies with table lookups instead of iterated twiddle
/// multiplication.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal swap pairs `(i, j)` with `i < j`.
    swaps: Vec<(u32, u32)>,
    /// Concatenated twiddle tables for stages `len = 4, 8, …, n` (the
    /// `len = 2` stage has `w = 1` and is executed as pure add/sub).
    /// Stage `len` contributes `len/2` entries `e^{−j2πk/len}`.
    forward: Vec<Complex>,
    /// Same layout as `forward` with entries `e^{+j2πk/len}`.
    inverse: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two or exceeds `2^31`.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FFT plan size must be a power of two");
        assert!(n <= 1 << 31, "FFT plan size too large");
        let mut swaps = Vec::new();
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                swaps.push((i as u32, j as u32));
            }
        }
        // n − 2 twiddles per direction: Σ_{len=4,8,…,n} len/2.
        let mut forward = Vec::with_capacity(n.saturating_sub(2));
        let mut inverse = Vec::with_capacity(n.saturating_sub(2));
        let mut len = 4;
        while len <= n {
            for k in 0..len / 2 {
                let ang = 2.0 * PI * k as f64 / len as f64;
                forward.push(Complex::cis(-ang));
                inverse.push(Complex::cis(ang));
            }
            len <<= 1;
        }
        Self {
            n,
            swaps,
            forward,
            inverse,
        }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether this is the trivial length-zero plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Runs the raw in-place transform *without* inverse normalization,
    /// matching the semantics of the module-private radix-2 kernel.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned size.
    pub fn process(&self, buf: &mut [Complex], inverse: bool) {
        assert_eq!(buf.len(), self.n, "buffer length must match the plan");
        let n = self.n;
        if n <= 1 {
            return;
        }
        for &(i, j) in &self.swaps {
            buf.swap(i as usize, j as usize);
        }
        // Stage len = 2: twiddle is exactly 1, so the butterfly is a pure
        // add/sub pair. chunks_exact_mut keeps the loop bounds-check-free.
        for pair in buf.chunks_exact_mut(2) {
            let u = pair[0];
            let v = pair[1];
            pair[0] = u + v;
            pair[1] = u - v;
        }
        let table = if inverse {
            &self.inverse
        } else {
            &self.forward
        };
        let mut off = 0;
        let mut len = 4;
        while len <= n {
            let half = len / 2;
            let tw = &table[off..off + half];
            // Splitting each block into its two halves lets the butterfly
            // loop run on zipped iterators — no index arithmetic, no
            // bounds checks — while keeping the exact float-op order of
            // the indexed form (the bit-identity contracts depend on it).
            for block in buf.chunks_exact_mut(len) {
                let (lo, hi) = block.split_at_mut(half);
                for ((u, v), w) in lo.iter_mut().zip(hi.iter_mut()).zip(tw) {
                    let a = *u;
                    let b = *v * *w;
                    *u = a + b;
                    *v = a - b;
                }
            }
            off += half;
            len <<= 1;
        }
    }

    /// In-place forward DFT.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.process(buf, false);
    }

    /// In-place inverse DFT, including the `1/N` normalization.
    pub fn inverse(&self, buf: &mut [Complex]) {
        self.process(buf, true);
        let scale = 1.0 / self.n as f64;
        for v in buf.iter_mut() {
            *v = v.scale(scale);
        }
    }

    /// The bit-reversal swap pairs, for kernels that replay this plan's
    /// traversal over a different data layout (the batched SoA kernel).
    pub(crate) fn swaps(&self) -> &[(u32, u32)] {
        &self.swaps
    }

    /// The concatenated per-stage twiddle table for one direction, in the
    /// layout documented on the struct fields.
    pub(crate) fn twiddles(&self, inverse: bool) -> &[Complex] {
        if inverse {
            &self.inverse
        } else {
            &self.forward
        }
    }
}

/// A size-keyed cache of [`FftPlan`]s.
///
/// Plans are indexed by `log2(n)` so lookup is a bounds check plus a vector
/// index. Cached plans are shared via `Rc`, letting callers run transforms
/// without holding a borrow of the cache (important for the thread-local
/// wrapper below, where a Bluestein transform performs several planned
/// transforms back to back).
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Vec<Option<Rc<FftPlan>>>,
    batch_plans: Vec<Option<Rc<BatchFftPlan>>>,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the plan for length `n`, building and caching it on first use.
    ///
    /// The returned `Rc` clone is deliberate, not redundant: handing out an
    /// owned handle lets the caller drop the cache borrow before running the
    /// transform, which is what allows [`with_thread_plan`] to be re-entered
    /// (a Bluestein-style transform runs several planned transforms back to
    /// back on one thread). The steady-state cost is one refcount increment;
    /// the hit path below avoids the resize branch entirely.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn plan(&mut self, n: usize) -> Rc<FftPlan> {
        assert!(n.is_power_of_two(), "FFT plan size must be a power of two");
        let idx = n.trailing_zeros() as usize;
        if let Some(Some(plan)) = self.plans.get(idx) {
            return Rc::clone(plan);
        }
        if self.plans.len() <= idx {
            self.plans.resize(idx + 1, None);
        }
        Rc::clone(self.plans[idx].get_or_insert_with(|| Rc::new(FftPlan::new(n))))
    }

    /// Returns the batched plan for length `n`, building and caching it on
    /// first use. Shares the twiddle/swap tables with the per-packet plan of
    /// the same size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two.
    pub fn batch_plan(&mut self, n: usize) -> Rc<BatchFftPlan> {
        assert!(n.is_power_of_two(), "FFT plan size must be a power of two");
        let idx = n.trailing_zeros() as usize;
        if let Some(Some(plan)) = self.batch_plans.get(idx) {
            return Rc::clone(plan);
        }
        let inner = self.plan(n);
        if self.batch_plans.len() <= idx {
            self.batch_plans.resize(idx + 1, None);
        }
        Rc::clone(
            self.batch_plans[idx].get_or_insert_with(|| Rc::new(BatchFftPlan::from_plan(inner))),
        )
    }

    /// Number of distinct transform sizes currently cached.
    pub fn cached_sizes(&self) -> usize {
        self.plans.iter().filter(|p| p.is_some()).count()
    }
}

thread_local! {
    static THREAD_PLANS: RefCell<PlanCache> = RefCell::new(PlanCache::new());
}

/// Runs `f` with this thread's cached plan for length `n`, building the plan
/// on first use.
///
/// The cache is thread-local, so long-lived worker threads (the daemon's
/// batchers) amortize plan construction across every request they serve
/// while short-lived helpers pay it at most once per size.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn with_thread_plan<R>(n: usize, f: impl FnOnce(&FftPlan) -> R) -> R {
    let plan = THREAD_PLANS.with(|cache| cache.borrow_mut().plan(n));
    f(&plan)
}

/// Runs `f` with this thread's cached batched plan for length `n`, building
/// it on first use. Same caching discipline as [`with_thread_plan`].
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn with_thread_batch_plan<R>(n: usize, f: impl FnOnce(&BatchFftPlan) -> R) -> R {
    let plan = THREAD_PLANS.with(|cache| cache.borrow_mut().batch_plan(n));
    f(&plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::dft_naive;

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Complex::new((0.3 * t).sin() + 0.1 * t, (0.7 * t).cos() - 0.05 * t)
            })
            .collect()
    }

    #[test]
    fn plan_matches_naive_dft_both_directions() {
        for log2 in 1..=8 {
            let n = 1usize << log2;
            let x = signal(n);
            let plan = FftPlan::new(n);

            let mut fwd = x.clone();
            plan.forward(&mut fwd);
            let expect = dft_naive(&x, false);
            for (a, b) in fwd.iter().zip(&expect) {
                assert!((*a - *b).abs() < 1e-9 * n as f64, "forward n={n}");
            }

            let mut inv = x.clone();
            plan.inverse(&mut inv);
            let expect = dft_naive(&x, true);
            for (a, b) in inv.iter().zip(&expect) {
                assert!((*a - *b).abs() < 1e-9, "inverse n={n}");
            }
        }
    }

    #[test]
    fn round_trip_is_identity() {
        for n in [1usize, 2, 4, 32, 256] {
            let x = signal(n);
            let plan = FftPlan::new(n);
            let mut buf = x.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            for (a, b) in buf.iter().zip(&x) {
                assert!((*a - *b).abs() < 1e-9, "round trip n={n}");
            }
        }
    }

    #[test]
    fn trivial_sizes_are_identity() {
        let plan = FftPlan::new(1);
        let mut buf = vec![Complex::new(2.5, -1.5)];
        plan.forward(&mut buf);
        assert_eq!(buf, vec![Complex::new(2.5, -1.5)]);
        plan.inverse(&mut buf);
        assert_eq!(buf, vec![Complex::new(2.5, -1.5)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = FftPlan::new(30);
    }

    #[test]
    #[should_panic(expected = "buffer length must match")]
    fn mismatched_buffer_rejected() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex::ZERO; 4];
        plan.process(&mut buf, false);
    }

    #[test]
    fn cache_reuses_plans() {
        let mut cache = PlanCache::new();
        let a = cache.plan(64);
        let b = cache.plan(64);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(cache.cached_sizes(), 1);
        let _ = cache.plan(128);
        assert_eq!(cache.cached_sizes(), 2);
    }

    #[test]
    fn cache_reuses_batch_plans_and_shares_tables() {
        let mut cache = PlanCache::new();
        let a = cache.batch_plan(64);
        let b = cache.batch_plan(64);
        assert!(Rc::ptr_eq(&a, &b));
        // The batched plan wraps the cached per-packet plan of the same
        // size, so both directions share one twiddle/swap table set.
        let scalar = cache.plan(64);
        assert!(std::ptr::eq(a.plan(), scalar.as_ref()));
    }

    #[test]
    fn thread_batch_plan_runs_transform() {
        use crate::soa::SoaComplex;
        let x = signal(16);
        let mut soa = SoaComplex::new();
        soa.reset(16);
        soa.write_lane(0, 1, &x);
        with_thread_batch_plan(16, |p| p.forward(&mut soa, 1));
        let expect = dft_naive(&x, false);
        for (a, b) in soa.to_interleaved().iter().zip(&expect) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn thread_plan_runs_transform() {
        let x = signal(16);
        let mut buf = x.clone();
        with_thread_plan(16, |p| p.forward(&mut buf));
        let expect = dft_naive(&x, false);
        for (a, b) in buf.iter().zip(&expect) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }
}
