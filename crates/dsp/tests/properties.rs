//! Property-based tests for the DSP crate.

use nomloc_dsp::pdp::DelayProfile;
use nomloc_dsp::stats::{self, Ecdf};
use nomloc_dsp::{fft, from_db, to_db, Complex, FftPlan};
use proptest::prelude::*;

fn complex_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| Complex::new(re, im)),
        len,
    )
}

proptest! {
    #[test]
    fn fft_round_trip(x in complex_vec(1..80)) {
        let back = fft::ifft(&fft::fft(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn fft_matches_naive_dft(x in complex_vec(1..40)) {
        let fast = fft::fft(&x);
        let slow = fft::dft_naive(&x, false);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7);
        }
    }

    #[test]
    fn parseval_holds(x in complex_vec(1..64)) {
        let spec = fft::fft(&x);
        let e_time: f64 = x.iter().map(|z| z.norm_sq()).sum();
        let e_freq: f64 = spec.iter().map(|z| z.norm_sq()).sum::<f64>() / x.len() as f64;
        prop_assert!((e_time - e_freq).abs() <= 1e-7 * (1.0 + e_time));
    }

    #[test]
    fn db_round_trip(x in 1e-8..1e8f64) {
        prop_assert!((from_db(to_db(x)) - x).abs() / x < 1e-10);
    }

    #[test]
    fn db_is_monotone(a in 1e-6..1e6f64, b in 1e-6..1e6f64) {
        prop_assume!(a < b);
        prop_assert!(to_db(a) < to_db(b));
    }

    #[test]
    fn ecdf_is_monotone_and_bounded(xs in prop::collection::vec(-100.0..100.0f64, 1..50)) {
        let cdf = Ecdf::new(xs).unwrap();
        let mut prev = 0.0;
        for i in -110..=110 {
            let v = cdf.eval(i as f64);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev);
            prev = v;
        }
        prop_assert_eq!(cdf.eval(1e9), 1.0);
        prop_assert_eq!(cdf.eval(-1e9), 0.0);
    }

    #[test]
    fn quantile_inverts_eval(xs in prop::collection::vec(-100.0..100.0f64, 1..50), q in 0.01..1.0f64) {
        let cdf = Ecdf::new(xs).unwrap();
        let v = cdf.quantile(q);
        prop_assert!(cdf.eval(v) + 1e-12 >= q);
    }

    #[test]
    fn variance_nonnegative_and_shift_invariant(
        xs in prop::collection::vec(-100.0..100.0f64, 1..50),
        shift in -50.0..50.0f64,
    ) {
        let v = stats::variance(&xs).unwrap();
        prop_assert!(v >= 0.0);
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let vs = stats::variance(&shifted).unwrap();
        prop_assert!((v - vs).abs() < 1e-6 * (1.0 + v));
    }

    #[test]
    fn percentiles_are_monotone(xs in prop::collection::vec(-100.0..100.0f64, 2..50)) {
        let p25 = stats::percentile(&xs, 25.0).unwrap();
        let p50 = stats::percentile(&xs, 50.0).unwrap();
        let p75 = stats::percentile(&xs, 75.0).unwrap();
        prop_assert!(p25 <= p50 && p50 <= p75);
    }

    #[test]
    fn delay_profile_peak_is_max(x in complex_vec(1..40)) {
        let profile = DelayProfile::from_cir(&x, 50e-9);
        let peak = profile.peak();
        for &p in profile.powers() {
            prop_assert!(p <= peak.power + 1e-15);
        }
        prop_assert!(profile.total_power() + 1e-12 >= peak.power);
    }

    #[test]
    fn delay_profile_from_csi_total_power_positive(x in complex_vec(2..40)) {
        prop_assume!(x.iter().any(|z| z.norm_sq() > 1e-6));
        let profile = DelayProfile::from_csi(&x, 20e6, 64);
        prop_assert!(profile.total_power() > 0.0);
        prop_assert!(profile.rms_delay_spread() >= 0.0);
    }

    #[test]
    fn plan_matches_naive_dft_all_power_of_two_sizes(log2 in 1u32..11, seed in 0u64..1000) {
        // Sizes 2..=1024: the planned kernel must track the O(N²) oracle in
        // both directions. Seeded pseudo-random input keeps shrinking useful.
        let n = 1usize << log2;
        let x: Vec<Complex> = (0..n)
            .map(|i| {
                let t = (i as f64 + 1.0) * (seed as f64 + 1.0);
                Complex::new((0.37 * t).sin(), (0.73 * t).cos())
            })
            .collect();
        let plan = FftPlan::new(n);

        let mut fwd = x.clone();
        plan.forward(&mut fwd);
        for (a, b) in fwd.iter().zip(&fft::dft_naive(&x, false)) {
            prop_assert!((*a - *b).abs() < 1e-9 * n as f64);
        }

        let mut inv = x.clone();
        plan.inverse(&mut inv);
        for (a, b) in inv.iter().zip(&fft::dft_naive(&x, true)) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn plan_inverse_matches_ifft_padded_into_bit_for_bit(
        x in complex_vec(1..80),
        min_log2 in 0u32..10,
    ) {
        // Where both apply — padded length a power of two — a plan-driven
        // inverse over the padded buffer must be byte-identical to
        // ifft_padded_into, since that is exactly the code path it runs.
        let min_len = 1usize << min_log2;
        let target = min_len.max(x.len()).next_power_of_two();

        let mut via_into = Vec::new();
        fft::ifft_padded_into(&x, min_len, &mut via_into);

        let mut via_plan = x.clone();
        via_plan.resize(target, Complex::ZERO);
        FftPlan::new(target).inverse(&mut via_plan);

        prop_assert_eq!(via_into, via_plan);
    }

    #[test]
    fn plan_round_trip_is_identity(x in complex_vec(1..80), pad_log2 in 0u32..9) {
        let target = (x.len().max(1) << pad_log2).next_power_of_two();
        let plan = FftPlan::new(target);
        let mut buf = x.clone();
        buf.resize(target, Complex::ZERO);
        let orig = buf.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&orig) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }
}
