//! Property-based tests for the batched SoA DSP layer.
//!
//! The batched kernel's contract is *bit*-identity, not approximate
//! equality: per lane it must perform exactly the per-packet planned
//! kernel's float operations in the same order, so every assertion here is
//! `prop_assert_eq!` on the raw values — one flipped rounding anywhere in
//! a butterfly fails the suite.

use nomloc_dsp::pdp::DelayProfile;
use nomloc_dsp::{fft, BatchFftPlan, Complex, FftPlan, SoaComplex};
use proptest::prelude::*;

fn complex_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Complex>> {
    prop::collection::vec(
        (-10.0..10.0f64, -10.0..10.0f64).prop_map(|(re, im)| Complex::new(re, im)),
        len,
    )
}

/// Deterministic pseudo-random batch of `lanes` rows of `n` samples —
/// sized by the drawn parameters, which the shim's strategies cannot do
/// directly (no `prop_flat_map`), matching the idiom of the existing
/// seeded plan properties.
fn seeded_rows(n: usize, lanes: usize, seed: u64) -> Vec<Vec<Complex>> {
    (0..lanes)
        .map(|l| {
            (0..n)
                .map(|i| {
                    let t = (i as f64 + 1.3 * l as f64 + 1.0) * (seed as f64 * 0.01 + 1.0);
                    Complex::new((0.37 * t).sin(), (0.73 * t).cos())
                })
                .collect()
        })
        .collect()
}

fn pack(rows: &[Vec<Complex>]) -> SoaComplex {
    let lanes = rows.len();
    let mut soa = SoaComplex::new();
    soa.reset(rows[0].len() * lanes);
    for (l, row) in rows.iter().enumerate() {
        soa.write_lane(l, lanes, row);
    }
    soa
}

proptest! {
    #[test]
    fn batch_fft_bit_identical_to_per_packet_plan(
        log2 in 1u32..9,
        lanes in 1usize..17,
        seed in 0u64..1000,
        dir in 0u32..2,
    ) {
        // Tentpole contract: any batch of 1..=16 packets through the
        // lockstep kernel equals running the per-packet planned FFT on
        // each row — bit for bit, both directions.
        let n = 1usize << log2;
        let inverse = dir == 1;
        let rows = seeded_rows(n, lanes, seed);
        let plan = FftPlan::new(n);
        let batched = BatchFftPlan::new(n);
        let mut soa = pack(&rows);
        batched.process(&mut soa, lanes, inverse);
        let mut lane = Vec::new();
        for (l, row) in rows.iter().enumerate() {
            let mut expect = row.clone();
            plan.process(&mut expect, inverse);
            soa.read_lane_into(l, lanes, &mut lane);
            prop_assert_eq!(&lane, &expect, "lane {} of {} (n={})", l, lanes, n);
        }
    }

    #[test]
    fn batch_inverse_normalization_bit_identical(
        log2 in 1u32..8,
        lanes in 1usize..17,
        seed in 0u64..1000,
    ) {
        // The 1/N pass is applied per component after the raw transform —
        // the same separate multiply as FftPlan::inverse, never fused with
        // downstream gains.
        let n = 1usize << log2;
        let rows = seeded_rows(n, lanes, seed);
        let plan = FftPlan::new(n);
        let batched = BatchFftPlan::new(n);
        let mut soa = pack(&rows);
        batched.inverse(&mut soa, lanes);
        let mut lane = Vec::new();
        for (l, row) in rows.iter().enumerate() {
            let mut expect = row.clone();
            plan.inverse(&mut expect);
            soa.read_lane_into(l, lanes, &mut lane);
            prop_assert_eq!(&lane, &expect, "lane {} of {} (n={})", l, lanes, n);
        }
    }

    #[test]
    fn soa_interleaved_round_trip(x in complex_vec(0..120)) {
        let soa = SoaComplex::from_interleaved(&x);
        prop_assert_eq!(soa.len(), x.len());
        prop_assert_eq!(soa.to_interleaved(), x);
    }

    #[test]
    fn soa_lane_transpose_round_trip(
        n in 1usize..64,
        lanes in 1usize..17,
        seed in 0u64..1000,
    ) {
        // write_lane/read_lane_into are exact inverses, and writing every
        // lane fully determines the lane-major matrix.
        let rows = seeded_rows(n, lanes, seed);
        let soa = pack(&rows);
        let mut out = Vec::new();
        for (l, row) in rows.iter().enumerate() {
            soa.read_lane_into(l, lanes, &mut out);
            prop_assert_eq!(&out, row, "lane {} of {}", l, lanes);
        }
    }

    #[test]
    fn soa_short_rows_keep_zero_padding(
        n in 1usize..32,
        lanes in 1usize..17,
        pad_rows in 1usize..32,
        seed in 0u64..1000,
    ) {
        // Lane rows beyond the written CSI stay zero — exactly the padding
        // the batched padded IFFT relies on.
        let rows = seeded_rows(n, lanes, seed);
        let mut soa = SoaComplex::new();
        soa.reset((n + pad_rows) * lanes);
        for (l, row) in rows.iter().enumerate() {
            soa.write_lane(l, lanes, row);
        }
        for i in n..n + pad_rows {
            for l in 0..lanes {
                prop_assert_eq!(soa.get(i * lanes + l), Complex::ZERO);
            }
        }
        let mut out = Vec::new();
        for (l, row) in rows.iter().enumerate() {
            soa.read_lane_into(l, lanes, &mut out);
            prop_assert_eq!(&out[..n], &row[..], "lane {} of {}", l, lanes);
            prop_assert!(out[n..].iter().all(|z| *z == Complex::ZERO));
        }
    }

    #[test]
    fn batched_pdp_peaks_match_scalar_oracle(
        csi_len in 1usize..60,
        lanes in 1usize..17,
        min_log2 in 0u32..9,
        seed in 0u64..500,
    ) {
        // The full batched PDP reduction (pad → lockstep IFFT → gain →
        // max-tap fold) against the retained scalar kernel, which itself is
        // oracle-locked to DelayProfile::from_csi. Bit-identity per lane.
        let min_taps = 1usize << min_log2;
        let rows = seeded_rows(csi_len, lanes, seed);
        let padded = fft::padded_len(csi_len, min_taps);
        let plan = BatchFftPlan::new(padded);
        let mut soa = SoaComplex::new();
        soa.reset(padded * lanes);
        for (l, row) in rows.iter().enumerate() {
            soa.write_lane(l, lanes, row);
        }
        let mut peaks = Vec::new();
        DelayProfile::peak_powers_from_batch_with(&plan, &mut soa, lanes, csi_len, &mut peaks);
        prop_assert_eq!(peaks.len(), lanes);
        let mut scratch = Vec::new();
        for (l, row) in rows.iter().enumerate() {
            let scalar =
                DelayProfile::peak_power_from_csi_with(row, 20e6, min_taps, &mut scratch);
            prop_assert_eq!(peaks[l], scalar, "lane {} of {}", l, lanes);
        }
    }
}
