//! Property-based tests for the geometry crate.

use nomloc_geometry::{convex, HalfPlane, Line, Point, Polygon, Vec2};
use proptest::prelude::*;

fn finite_coord() -> impl Strategy<Value = f64> {
    -100.0..100.0f64
}

fn point() -> impl Strategy<Value = Point> {
    (finite_coord(), finite_coord()).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn distance_is_symmetric(a in point(), b in point()) {
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality(a in point(), b in point(), c in point()) {
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
    }

    #[test]
    fn mirror_is_involution(p in point(), a in point(), b in point()) {
        prop_assume!(a.distance(b) > 1e-6);
        let line = Line::through(a, b).unwrap();
        let back = line.mirror(line.mirror(p));
        prop_assert!(back.distance(p) < 1e-6);
    }

    #[test]
    fn mirror_preserves_distance_to_line(p in point(), a in point(), b in point()) {
        prop_assume!(a.distance(b) > 1e-6);
        let line = Line::through(a, b).unwrap();
        prop_assert!((line.distance(p) - line.distance(line.mirror(p))).abs() < 1e-6);
    }

    #[test]
    fn projection_is_closest_line_point(p in point(), a in point(), b in point(), t in -2.0..3.0f64) {
        prop_assume!(a.distance(b) > 1e-6);
        let line = Line::through(a, b).unwrap();
        let proj = line.project(p);
        // Any other point of the line is at least as far from p.
        let other = a.lerp(b, t);
        prop_assert!(p.distance(proj) <= p.distance(other) + 1e-9);
    }

    #[test]
    fn closer_to_halfplane_matches_distance_comparison(z in point(), a in point(), b in point()) {
        prop_assume!(a.distance(b) > 1e-6);
        let hp = HalfPlane::closer_to(a, b);
        let closer_a = z.distance_sq(a) < z.distance_sq(b) - 1e-9;
        let closer_b = z.distance_sq(b) < z.distance_sq(a) - 1e-9;
        if closer_a {
            prop_assert!(hp.contains(z));
        }
        if closer_b {
            prop_assert!(!hp.contains(z));
        }
    }

    #[test]
    fn clipping_never_grows_area(
        nx in -1.0..1.0f64,
        ny in -1.0..1.0f64,
        off in -50.0..50.0f64,
    ) {
        prop_assume!(nx.abs() + ny.abs() > 1e-6);
        let square = Polygon::rectangle(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
        let hp = HalfPlane::new(Vec2::new(nx, ny), off);
        if let Some(clipped) = hp.clip_polygon(&square) {
            prop_assert!(clipped.area() <= square.area() + 1e-9);
            // Every vertex of the result satisfies the constraint.
            for v in clipped.vertices() {
                prop_assert!(hp.violation(*v) < 1e-6);
            }
        }
    }

    #[test]
    fn hull_is_convex_and_contains_points(pts in prop::collection::vec(point(), 3..40)) {
        if let Some(h) = convex::hull(&pts) {
            prop_assert!(h.is_convex());
            for p in &pts {
                prop_assert!(h.contains(*p));
            }
        }
    }

    #[test]
    fn rectangle_centroid_is_center(
        x0 in -50.0..50.0f64, y0 in -50.0..50.0f64,
        w in 0.1..50.0f64, h in 0.1..50.0f64,
    ) {
        let r = Polygon::rectangle(Point::new(x0, y0), Point::new(x0 + w, y0 + h));
        let c = r.centroid();
        prop_assert!(c.distance(Point::new(x0 + w / 2.0, y0 + h / 2.0)) < 1e-6);
        prop_assert!((r.area() - w * h).abs() < 1e-6);
        prop_assert!(r.contains(c));
    }

    #[test]
    fn clamp_point_result_is_inside(p in point()) {
        let r = Polygon::rectangle(Point::new(-5.0, -5.0), Point::new(5.0, 5.0));
        let c = r.clamp_point(p);
        prop_assert!(r.contains(c));
        if r.contains(p) {
            prop_assert!(c.distance(p) < 1e-12);
        }
    }
}
