//! Half-planes: the geometric form of one proximity constraint.

use std::fmt;

use crate::{Point, Polygon, Vec2, EPS};

/// The closed half-plane `{ z : a · z ≤ b }`.
///
/// Every relative-proximity judgement in NomLoc is one half-plane: "the
/// object is closer to AP *i* at `pᵢ` than to AP *j* at `pⱼ`" expands
/// (Eq. 6–7 of the paper) to
///
/// ```text
/// 2(pⱼ − pᵢ) · z  ≤  ‖pⱼ‖² − ‖pᵢ‖²
/// ```
///
/// which is the perpendicular bisector half-plane containing `pᵢ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HalfPlane {
    /// Constraint row `a`.
    pub a: Vec2,
    /// Right-hand side `b`.
    pub b: f64,
}

impl HalfPlane {
    /// Creates the half-plane `a · z ≤ b`.
    #[inline]
    pub const fn new(a: Vec2, b: f64) -> Self {
        HalfPlane { a, b }
    }

    /// The proximity half-plane "closer to `near` than to `far`" (Eq. 7).
    pub fn closer_to(near: Point, far: Point) -> Self {
        HalfPlane {
            a: (far - near) * 2.0,
            b: far.to_vec().norm_sq() - near.to_vec().norm_sq(),
        }
    }

    /// Violation margin of `z`: `a · z − b` (≤ 0 when satisfied).
    #[inline]
    pub fn violation(&self, z: Point) -> f64 {
        self.a.dot(z.to_vec()) - self.b
    }

    /// Returns `true` when `z` satisfies the constraint (with tolerance).
    #[inline]
    pub fn contains(&self, z: Point) -> bool {
        self.violation(z) <= EPS
    }

    /// Euclidean distance from `z` to the constraint boundary, signed so
    /// that satisfied points are negative. Returns the raw violation when
    /// the row is (near-)zero.
    pub fn signed_distance(&self, z: Point) -> f64 {
        let n = self.a.norm();
        if n < EPS {
            self.violation(z)
        } else {
            self.violation(z) / n
        }
    }

    /// Relaxed copy with the right-hand side increased by `slack ≥ 0`.
    ///
    /// This is the geometric meaning of the LP relaxation variable `tᵢ`
    /// (Eq. 19): the half-plane is pushed outward until it can be satisfied.
    pub fn relaxed(&self, slack: f64) -> HalfPlane {
        HalfPlane {
            a: self.a,
            b: self.b + slack,
        }
    }

    /// Clips `polygon` by this half-plane (Sutherland–Hodgman step).
    ///
    /// Returns `None` when the intersection is empty or degenerate (area
    /// below tolerance).
    pub fn clip_polygon(&self, polygon: &Polygon) -> Option<Polygon> {
        let input = polygon.vertices();
        let mut output: Vec<Point> = Vec::with_capacity(input.len() + 1);
        let n = input.len();
        for i in 0..n {
            let cur = input[i];
            let next = input[(i + 1) % n];
            let cur_in = self.violation(cur) <= EPS;
            let next_in = self.violation(next) <= EPS;
            if cur_in {
                output.push(cur);
            }
            if cur_in != next_in {
                if let Some(x) = self.edge_crossing(cur, next) {
                    output.push(x);
                }
            }
        }
        dedup_ring(&mut output);
        Polygon::new(output).ok()
    }

    /// Point where the segment `p → q` crosses the constraint boundary.
    fn edge_crossing(&self, p: Point, q: Point) -> Option<Point> {
        let vp = self.violation(p);
        let vq = self.violation(q);
        let denom = vp - vq;
        if denom.abs() < EPS * EPS {
            return None;
        }
        let t = (vp / denom).clamp(0.0, 1.0);
        Some(p.lerp(q, t))
    }
}

impl fmt::Display for HalfPlane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}·x + {:.3}·y ≤ {:.3}", self.a.x, self.a.y, self.b)
    }
}

/// Intersects a set of half-planes, starting from `bounds` (usually the
/// floor-plan polygon or its bounding box).
///
/// Returns `None` when the intersection is empty — the over-constrained case
/// that NomLoc's constraint relaxation (Eq. 19) exists to repair.
pub fn intersect_halfplanes(bounds: &Polygon, halfplanes: &[HalfPlane]) -> Option<Polygon> {
    let mut region = bounds.clone();
    for hp in halfplanes {
        region = hp.clip_polygon(&region)?;
    }
    Some(region)
}

/// Removes consecutive (near-)duplicate vertices, including wrap-around.
fn dedup_ring(ring: &mut Vec<Point>) {
    ring.dedup_by(|a, b| a.distance(*b) < 1e-9);
    while ring.len() > 1 && ring[0].distance(*ring.last().unwrap()) < 1e-9 {
        ring.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square10() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn closer_to_is_perpendicular_bisector() {
        let a = Point::new(2.0, 5.0);
        let b = Point::new(8.0, 5.0);
        let hp = HalfPlane::closer_to(a, b);
        // Points nearer `a` satisfy it; nearer `b` violate it.
        assert!(hp.contains(Point::new(3.0, 1.0)));
        assert!(!hp.contains(Point::new(7.0, 9.0)));
        // The midpoint is on the boundary.
        assert!(hp.violation(a.midpoint(b)).abs() < 1e-12);
    }

    #[test]
    fn closer_to_agrees_with_distances_everywhere() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(7.0, 4.5);
        for i in 0..20 {
            for j in 0..20 {
                let z = Point::new(i as f64 * 0.5, j as f64 * 0.5);
                let hp = HalfPlane::closer_to(a, b);
                let closer_a = z.distance_sq(a) <= z.distance_sq(b) + 1e-12;
                assert_eq!(hp.violation(z) <= 1e-9, closer_a, "at {z}");
            }
        }
    }

    #[test]
    fn clip_square_in_half() {
        let hp = HalfPlane::new(Vec2::new(1.0, 0.0), 5.0); // x ≤ 5
        let clipped = hp.clip_polygon(&square10()).unwrap();
        assert!((clipped.area() - 50.0).abs() < 1e-9);
        assert!(clipped.contains(Point::new(2.0, 2.0)));
        assert!(!clipped.contains(Point::new(8.0, 2.0)));
    }

    #[test]
    fn clip_that_keeps_everything() {
        let hp = HalfPlane::new(Vec2::new(1.0, 0.0), 100.0);
        let clipped = hp.clip_polygon(&square10()).unwrap();
        assert!((clipped.area() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn clip_that_removes_everything() {
        let hp = HalfPlane::new(Vec2::new(1.0, 0.0), -1.0); // x ≤ −1
        assert!(hp.clip_polygon(&square10()).is_none());
    }

    #[test]
    fn clip_corner_triangle() {
        // x + y ≤ 2 cuts a right triangle with legs 2 off the square.
        let hp = HalfPlane::new(Vec2::new(1.0, 1.0), 2.0);
        let clipped = hp.clip_polygon(&square10()).unwrap();
        assert!((clipped.area() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn clipping_never_grows_area() {
        let sq = square10();
        let hps = [
            HalfPlane::new(Vec2::new(1.0, 0.3), 7.0),
            HalfPlane::new(Vec2::new(-0.5, 1.0), 3.0),
            HalfPlane::new(Vec2::new(0.0, -1.0), -1.0),
        ];
        let mut area = sq.area();
        let mut poly = sq;
        for hp in hps {
            poly = hp.clip_polygon(&poly).unwrap();
            assert!(poly.area() <= area + 1e-9);
            area = poly.area();
        }
    }

    #[test]
    fn intersect_halfplanes_voronoi_cell() {
        // Four APs at the corners of the square; the cell of the SW AP is
        // the SW quadrant.
        let aps = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let hps: Vec<HalfPlane> = aps[1..]
            .iter()
            .map(|&far| HalfPlane::closer_to(aps[0], far))
            .collect();
        let cell = intersect_halfplanes(&square10(), &hps).unwrap();
        assert!((cell.area() - 25.0).abs() < 1e-9);
        assert!(cell.contains(Point::new(1.0, 1.0)));
        assert!(!cell.contains(Point::new(9.0, 9.0)));
    }

    #[test]
    fn intersect_halfplanes_empty() {
        let hps = [
            HalfPlane::new(Vec2::new(1.0, 0.0), 2.0),   // x ≤ 2
            HalfPlane::new(Vec2::new(-1.0, 0.0), -8.0), // x ≥ 8
        ];
        assert!(intersect_halfplanes(&square10(), &hps).is_none());
    }

    #[test]
    fn relaxed_halfplane_recovers_feasibility() {
        let hps = [
            HalfPlane::new(Vec2::new(1.0, 0.0), 2.0),
            HalfPlane::new(Vec2::new(-1.0, 0.0), -8.0),
        ];
        // Relax the second constraint by 6: x ≥ 2, now touching.
        let relaxed = [hps[0], hps[1].relaxed(6.1)];
        assert!(intersect_halfplanes(&square10(), &relaxed).is_some());
    }

    #[test]
    fn signed_distance_normalizes() {
        let hp = HalfPlane::new(Vec2::new(2.0, 0.0), 4.0); // x ≤ 2
        assert!((hp.signed_distance(Point::new(5.0, 0.0)) - 3.0).abs() < 1e-12);
        assert!((hp.signed_distance(Point::new(0.0, 7.0)) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_nonempty() {
        let hp = HalfPlane::new(Vec2::new(1.0, 2.0), 3.0);
        assert!(format!("{hp}").contains('≤'));
    }
}
