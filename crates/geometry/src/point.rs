//! Points and vectors in the plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A position in the plane, in metres.
///
/// `Point` is an affine position; the corresponding displacement type is
/// [`Vec2`]. Subtracting two points yields a `Vec2`, and a `Vec2` can be
/// added to a `Point`.
///
/// # Example
///
/// ```
/// use nomloc_geometry::{Point, Vec2};
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// assert_eq!(b - a, Vec2::new(3.0, 4.0));
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate (metres).
    pub x: f64,
    /// Vertical coordinate (metres).
    pub y: f64,
}

/// A displacement (free vector) in the plane, in metres.
///
/// See [`Point`] for the affine/linear distinction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin, `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in metres.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other` (Eq. 5 of the paper).
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point::distance`]; proximity comparisons only need the
    /// ordering, which squaring preserves.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        (self - other).norm_sq()
    }

    /// Squared norm of the position vector, `x² + y²`.
    ///
    /// This is the quantity that appears on the right-hand side of the
    /// proximity half-plane (Eq. 7): `b = ‖x_far‖² − ‖x_near‖²`.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Midpoint of `self` and `other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        self.lerp(other, 0.5)
    }

    /// Interprets this position as a displacement from the origin.
    #[inline]
    pub fn to_vec(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from components in metres.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at `angle` radians from the positive x-axis.
    #[inline]
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Rotates the vector 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Returns the unit vector in the same direction, or `None` for a
    /// (near-)zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < crate::EPS {
            None
        } else {
            Some(self / n)
        }
    }

    /// Angle from the positive x-axis, in `(-π, π]` radians.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Interprets this displacement as a position relative to the origin.
    #[inline]
    pub fn to_point(self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{:.3}, {:.3}⟩", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl Sub for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Point) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vec2) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vec2) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign<Vec2> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
        assert_eq!(b.distance(a), 5.0);
    }

    #[test]
    fn point_minus_point_is_vector() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        let v = b - a;
        assert_eq!(v, Vec2::new(3.0, 4.0));
        assert_eq!(a + v, b);
        assert_eq!(b - v, a);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.midpoint(b), Point::new(1.0, 2.0));
    }

    #[test]
    fn cross_sign_gives_orientation() {
        let right = Vec2::new(1.0, 0.0);
        let up = Vec2::new(0.0, 1.0);
        assert!(right.cross(up) > 0.0);
        assert!(up.cross(right) < 0.0);
        assert_eq!(right.cross(right), 0.0);
    }

    #[test]
    fn dot_detects_orthogonality() {
        let v = Vec2::new(2.0, 3.0);
        assert_eq!(v.dot(v.perp()), 0.0);
        assert_eq!(v.perp(), Vec2::new(-3.0, 2.0));
    }

    #[test]
    fn normalized_unit_vector() {
        let v = Vec2::new(3.0, 4.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::ZERO.normalized().is_none());
    }

    #[test]
    fn from_angle_round_trip() {
        for &a in &[0.0, 0.5, 1.0, -2.0, 3.0] {
            let v = Vec2::from_angle(a);
            assert!((v.angle() - a).abs() < 1e-12, "angle {a}");
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn vector_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
    }

    #[test]
    fn assign_ops() {
        let mut p = Point::new(1.0, 1.0);
        p += Vec2::new(1.0, 2.0);
        assert_eq!(p, Point::new(2.0, 3.0));
        p -= Vec2::new(2.0, 3.0);
        assert_eq!(p, Point::ORIGIN);

        let mut v = Vec2::new(1.0, 0.0);
        v += Vec2::new(0.0, 1.0);
        assert_eq!(v, Vec2::new(1.0, 1.0));
        v -= Vec2::new(1.0, 0.0);
        assert_eq!(v, Vec2::new(0.0, 1.0));
    }

    #[test]
    fn conversions() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
        assert_eq!(p.to_vec().to_point(), p);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::new(1.0, 2.0)).is_empty());
        assert!(!format!("{}", Vec2::new(1.0, 2.0)).is_empty());
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Vec2::new(f64::INFINITY, 0.0).is_finite());
    }
}
