//! Convex hulls and convex decomposition of simple polygons.
//!
//! The SP-based estimator requires a *convex* area of interest: the paper
//! notes (§IV-B-2) that a non-convex venue — such as the L-shaped lobby of
//! the evaluation — is divided into convex pieces, the LP is solved per
//! piece, and feasible pieces are merged. [`decompose`] provides that
//! division via ear-clipping triangulation followed by Hertel–Mehlhorn
//! greedy merging.

use crate::{Point, Polygon, EPS};

/// Convex hull of a point set (Andrew's monotone chain).
///
/// Returns `None` when the points are all (near-)collinear, since no polygon
/// with positive area exists.
///
/// # Example
///
/// ```
/// use nomloc_geometry::{convex::hull, Point};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(1.0, 0.5), // interior
///     Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0),
/// ];
/// let h = hull(&pts).unwrap();
/// assert_eq!(h.len(), 4);
/// ```
pub fn hull(points: &[Point]) -> Option<Polygon> {
    if points.len() < 3 {
        return None;
    }
    let mut pts = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| a.distance(*b) < EPS);
    if pts.len() < 3 {
        return None;
    }

    let mut lower: Vec<Point> = Vec::new();
    for &p in &pts {
        while lower.len() >= 2 {
            let a = lower[lower.len() - 2];
            let b = lower[lower.len() - 1];
            if (b - a).cross(p - b) <= EPS {
                lower.pop();
            } else {
                break;
            }
        }
        lower.push(p);
    }
    let mut upper: Vec<Point> = Vec::new();
    for &p in pts.iter().rev() {
        while upper.len() >= 2 {
            let a = upper[upper.len() - 2];
            let b = upper[upper.len() - 1];
            if (b - a).cross(p - b) <= EPS {
                upper.pop();
            } else {
                break;
            }
        }
        upper.push(p);
    }
    lower.pop();
    upper.pop();
    lower.extend(upper);
    Polygon::new(lower).ok()
}

/// Triangulates a simple polygon by ear clipping.
///
/// Returns index triples into `polygon.vertices()`. The polygon must be
/// simple (non-self-intersecting); the counter-clockwise orientation is
/// guaranteed by [`Polygon`]'s constructor.
pub fn triangulate(polygon: &Polygon) -> Vec<[usize; 3]> {
    let verts = polygon.vertices();
    let n = verts.len();
    let mut indices: Vec<usize> = (0..n).collect();
    let mut triangles = Vec::with_capacity(n.saturating_sub(2));

    // Guard against malformed input: at most n² iterations.
    let mut guard = n * n + 16;
    while indices.len() > 3 && guard > 0 {
        guard -= 1;
        let m = indices.len();
        let mut clipped = false;
        for i in 0..m {
            let prev = indices[(i + m - 1) % m];
            let cur = indices[i];
            let next = indices[(i + 1) % m];
            if is_ear(verts, &indices, prev, cur, next) {
                triangles.push([prev, cur, next]);
                indices.remove(i);
                clipped = true;
                break;
            }
        }
        if !clipped {
            // Numerically stuck (e.g. collinear runs): clip the first
            // strictly convex vertex as a fallback.
            for i in 0..indices.len() {
                let m = indices.len();
                let prev = indices[(i + m - 1) % m];
                let cur = indices[i];
                let next = indices[(i + 1) % m];
                if convex_corner(verts[prev], verts[cur], verts[next]) {
                    triangles.push([prev, cur, next]);
                    indices.remove(i);
                    break;
                }
            }
        }
    }
    if indices.len() == 3 {
        triangles.push([indices[0], indices[1], indices[2]]);
    }
    triangles
}

fn convex_corner(a: Point, b: Point, c: Point) -> bool {
    (b - a).cross(c - b) > EPS
}

fn is_ear(verts: &[Point], active: &[usize], prev: usize, cur: usize, next: usize) -> bool {
    let (a, b, c) = (verts[prev], verts[cur], verts[next]);
    if !convex_corner(a, b, c) {
        return false;
    }
    for &k in active {
        if k == prev || k == cur || k == next {
            continue;
        }
        if point_in_triangle(verts[k], a, b, c) {
            return false;
        }
    }
    true
}

fn point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool {
    let d1 = (b - a).cross(p - a);
    let d2 = (c - b).cross(p - b);
    let d3 = (a - c).cross(p - c);
    let has_neg = d1 < -EPS || d2 < -EPS || d3 < -EPS;
    let has_pos = d1 > EPS || d2 > EPS || d3 > EPS;
    !(has_neg && has_pos)
}

/// Decomposes a simple polygon into convex pieces.
///
/// A convex input is returned as a single piece. Non-convex inputs are
/// ear-clipped into triangles which are then greedily merged across shared
/// diagonals while the union stays convex (Hertel–Mehlhorn), yielding at
/// most four times the optimal number of pieces.
///
/// The returned pieces tile the input: their areas sum to the input area.
///
/// # Example
///
/// ```
/// use nomloc_geometry::{convex::decompose, Point, Polygon};
///
/// let l_shape = Polygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(4.0, 2.0),
///     Point::new(2.0, 2.0),
///     Point::new(2.0, 4.0),
///     Point::new(0.0, 4.0),
/// ])?;
/// let pieces = decompose(&l_shape);
/// assert!(pieces.len() >= 2);
/// let total: f64 = pieces.iter().map(|p| p.area()).sum();
/// assert!((total - l_shape.area()).abs() < 1e-9);
/// # Ok::<(), nomloc_geometry::PolygonError>(())
/// ```
pub fn decompose(polygon: &Polygon) -> Vec<Polygon> {
    if polygon.is_convex() {
        return vec![polygon.clone()];
    }
    let verts = polygon.vertices();
    let tris = triangulate(polygon);
    // Pieces as index rings (CCW, since triangles come out CCW).
    let mut pieces: Vec<Vec<usize>> = tris.into_iter().map(|t| t.to_vec()).collect();

    // Greedy merge: repeatedly find two pieces sharing a diagonal whose
    // union is convex.
    let mut merged_any = true;
    while merged_any {
        merged_any = false;
        'outer: for i in 0..pieces.len() {
            for j in (i + 1)..pieces.len() {
                if let Some(merged) = try_merge(verts, &pieces[i], &pieces[j]) {
                    pieces[i] = merged;
                    pieces.swap_remove(j);
                    merged_any = true;
                    break 'outer;
                }
            }
        }
    }

    pieces
        .into_iter()
        .filter_map(|ring| Polygon::new(ring.into_iter().map(|i| verts[i]).collect()).ok())
        .collect()
}

/// Merges two index rings sharing exactly one directed edge when the result
/// is convex. Rings are CCW, so a shared interior diagonal appears as
/// `(u, v)` in one ring and `(v, u)` in the other.
fn try_merge(verts: &[Point], a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let na = a.len();
    let nb = b.len();
    for i in 0..na {
        let (u, v) = (a[i], a[(i + 1) % na]);
        for j in 0..nb {
            if b[j] == v && b[(j + 1) % nb] == u {
                // Splice: a up to u, then b's path from u's successor
                // around to v's predecessor, then continue a from v.
                let mut ring = Vec::with_capacity(na + nb - 2);
                // a: start at v (index i+1), walk all of a back to u.
                for k in 0..na {
                    ring.push(a[(i + 1 + k) % na]);
                }
                // ring currently ends at u == a[i]; insert b's interior
                // path from u to v (exclusive of both).
                let mut k = (j + 2) % nb; // successor of u in b
                while b[k % nb] != v {
                    ring.push(b[k % nb]);
                    k = (k + 1) % nb;
                }
                if !ring_is_convex(verts, &ring) {
                    return None;
                }
                return Some(ring);
            }
        }
    }
    None
}

fn ring_is_convex(verts: &[Point], ring: &[usize]) -> bool {
    let n = ring.len();
    if n < 3 {
        return false;
    }
    for i in 0..n {
        let a = verts[ring[i]];
        let b = verts[ring[(i + 1) % n]];
        let c = verts[ring[(i + 2) % n]];
        if (b - a).cross(c - b) < -EPS {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap()
    }

    fn u_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(6.0, 0.0),
            Point::new(6.0, 4.0),
            Point::new(4.0, 4.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap()
    }

    #[test]
    fn hull_of_square_plus_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        let h = hull(&pts).unwrap();
        assert_eq!(h.len(), 4);
        assert!((h.area() - 16.0).abs() < 1e-9);
        assert!(h.is_convex());
    }

    #[test]
    fn hull_rejects_collinear_input() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
            Point::new(3.0, 3.0),
        ];
        assert!(hull(&pts).is_none());
        assert!(hull(&pts[..2]).is_none());
    }

    #[test]
    fn hull_contains_all_points() {
        let pts: Vec<Point> = (0..25)
            .map(|i| Point::new((i * 7 % 13) as f64, (i * 5 % 11) as f64))
            .collect();
        let h = hull(&pts).unwrap();
        for p in &pts {
            assert!(h.contains(*p), "{p} outside hull");
        }
    }

    #[test]
    fn triangulate_square() {
        let sq = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let tris = triangulate(&sq);
        assert_eq!(tris.len(), 2);
        let area: f64 = tris
            .iter()
            .map(|t| {
                let v = sq.vertices();
                ((v[t[1]] - v[t[0]]).cross(v[t[2]] - v[t[0]]) / 2.0).abs()
            })
            .sum();
        assert!((area - 4.0).abs() < 1e-9);
    }

    #[test]
    fn triangulate_l_shape_covers_area() {
        let l = l_shape();
        let tris = triangulate(&l);
        assert_eq!(tris.len(), l.len() - 2);
        let v = l.vertices();
        let area: f64 = tris
            .iter()
            .map(|t| ((v[t[1]] - v[t[0]]).cross(v[t[2]] - v[t[0]]) / 2.0).abs())
            .sum();
        assert!((area - l.area()).abs() < 1e-9);
    }

    #[test]
    fn decompose_convex_is_identity() {
        let sq = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(3.0, 1.0));
        let pieces = decompose(&sq);
        assert_eq!(pieces.len(), 1);
        assert!((pieces[0].area() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn decompose_l_shape() {
        let l = l_shape();
        let pieces = decompose(&l);
        assert!(
            (2..=4).contains(&pieces.len()),
            "L-shape should decompose into 2–4 convex pieces, got {}",
            pieces.len()
        );
        let total: f64 = pieces.iter().map(|p| p.area()).sum();
        assert!((total - l.area()).abs() < 1e-9);
        for p in &pieces {
            assert!(p.is_convex(), "piece {p} is not convex");
        }
    }

    #[test]
    fn decompose_u_shape() {
        let u = u_shape();
        let pieces = decompose(&u);
        let total: f64 = pieces.iter().map(|p| p.area()).sum();
        assert!((total - u.area()).abs() < 1e-9);
        for p in &pieces {
            assert!(p.is_convex());
        }
        assert!(pieces.len() >= 3, "U-shape needs ≥ 3 convex pieces");
    }

    #[test]
    fn decompose_pieces_stay_inside_input() {
        let l = l_shape();
        for piece in decompose(&l) {
            let c = piece.centroid();
            assert!(l.contains(c), "piece centroid {c} escaped the polygon");
        }
    }

    #[test]
    fn decompose_interior_points_covered_exactly_once() {
        let l = l_shape();
        let pieces = decompose(&l);
        // Sample strictly interior points away from piece boundaries.
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(0.05 + i as f64 * 0.1, 0.05 + j as f64 * 0.1);
                if !l.contains(p) {
                    continue;
                }
                let hits = pieces.iter().filter(|q| q.contains(p)).count();
                assert!(hits >= 1, "interior point {p} not covered");
            }
        }
    }
}
