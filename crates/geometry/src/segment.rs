//! Line segments: walls, boundary edges and propagation paths.

use crate::{Line, Point, EPS};

/// A directed line segment between two points.
///
/// Segments model walls and obstacle edges in the RF simulator (a radio path
/// is *obstructed* when the TX–RX segment crosses a wall segment) and the
/// edges of floor-plan polygons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment from `a` to `b`.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// The supporting line, or `None` for a degenerate (zero-length) segment.
    pub fn line(&self) -> Option<Line> {
        Line::through(self.a, self.b)
    }

    /// The segment with endpoints swapped.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// Distance from `p` to the closest point of the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        p.distance(self.closest_point(p))
    }

    /// Closest point of the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.b - self.a;
        let len_sq = d.norm_sq();
        if len_sq < EPS * EPS {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Returns `true` when the *open* interiors of the segments cross, or an
    /// endpoint of one lies strictly inside the other.
    ///
    /// Sharing an endpoint exactly does **not** count as an intersection;
    /// this is the convention the ray tracer wants (a ray grazing a wall
    /// corner is not blocked by the wall).
    pub fn intersects(&self, other: &Segment) -> bool {
        self.intersection(other).is_some()
    }

    /// Intersection point per the convention of [`Segment::intersects`].
    pub fn intersection(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        let qp = other.a - self.a;
        if denom.abs() < EPS {
            // Parallel (possibly collinear): treat overlap as "no proper
            // intersection"; collinear-overlap blocking is handled by the
            // caller when needed (walls have thickness in the simulator).
            return None;
        }
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let tol = 1e-12;
        if t > tol && t < 1.0 - tol && u > tol && u < 1.0 - tol {
            Some(self.at(t))
        } else {
            None
        }
    }

    /// Like [`Segment::intersection`] but *inclusive* of endpoints.
    pub fn intersection_inclusive(&self, other: &Segment) -> Option<Point> {
        let r = self.b - self.a;
        let s = other.b - other.a;
        let denom = r.cross(s);
        let qp = other.a - self.a;
        if denom.abs() < EPS {
            return None;
        }
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        let tol = 1e-12;
        if (-tol..=1.0 + tol).contains(&t) && (-tol..=1.0 + tol).contains(&u) {
            Some(self.at(t.clamp(0.0, 1.0)))
        } else {
            None
        }
    }

    /// Returns `true` when `p` lies on the segment (within [`EPS`]).
    pub fn contains(&self, p: Point) -> bool {
        self.distance_to_point(p) < EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_midpoint() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
    }

    #[test]
    fn crossing_segments_intersect() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        let p = s1.intersection(&s2).unwrap();
        assert!(p.distance(Point::new(1.0, 1.0)) < 1e-12);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s1.intersects(&s2));
    }

    #[test]
    fn touching_at_endpoint_is_not_proper_intersection() {
        let s1 = seg(0.0, 0.0, 1.0, 1.0);
        let s2 = seg(1.0, 1.0, 2.0, 0.0);
        assert!(!s1.intersects(&s2));
        // ...but the inclusive variant sees it.
        assert!(s1.intersection_inclusive(&s2).is_some());
    }

    #[test]
    fn t_junction_counts_as_intersection() {
        // s2 endpoint strictly inside s1: the wall blocks the ray.
        let s1 = seg(0.0, 0.0, 4.0, 0.0);
        let s2 = seg(2.0, -1.0, 2.0, 1.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn parallel_segments_never_intersect() {
        let s1 = seg(0.0, 0.0, 4.0, 0.0);
        let s2 = seg(1.0, 0.0, 5.0, 0.0); // collinear overlap
        assert!(!s1.intersects(&s2));
        let s3 = seg(0.0, 1.0, 4.0, 1.0);
        assert!(!s1.intersects(&s3));
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = seg(0.0, 0.0, 2.0, 0.0);
        assert_eq!(s.closest_point(Point::new(-5.0, 3.0)), s.a);
        assert_eq!(s.closest_point(Point::new(9.0, -1.0)), s.b);
        assert_eq!(s.closest_point(Point::new(1.0, 7.0)), Point::new(1.0, 0.0));
        assert_eq!(s.distance_to_point(Point::new(1.0, 7.0)), 7.0);
    }

    #[test]
    fn degenerate_segment_behaves() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.length(), 0.0);
        assert!(s.line().is_none());
        assert_eq!(s.closest_point(Point::new(5.0, 5.0)), s.a);
    }

    #[test]
    fn contains_points_on_segment() {
        let s = seg(0.0, 0.0, 2.0, 2.0);
        assert!(s.contains(Point::new(1.0, 1.0)));
        assert!(s.contains(s.a));
        assert!(!s.contains(Point::new(3.0, 3.0)));
        assert!(!s.contains(Point::new(1.0, 1.5)));
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let s = seg(0.0, 0.0, 1.0, 2.0);
        assert_eq!(s.reversed().a, s.b);
        assert_eq!(s.reversed().b, s.a);
    }
}
