//! 2-D computational geometry primitives for the NomLoc indoor localization
//! system.
//!
//! This crate provides the geometric substrate that the space-partition (SP)
//! localization algorithm of NomLoc is built on:
//!
//! * [`Point`] / [`Vec2`] — positions and displacements in metres.
//! * [`Segment`] and [`Line`] — walls, boundary edges, propagation paths,
//!   and mirror reflections (used to place *virtual APs*).
//! * [`Polygon`] — floor-plan boundaries and feasible regions, with area,
//!   centroid, and containment predicates.
//! * [`HalfPlane`] — one proximity constraint `a · z ≤ b`; sets of
//!   half-planes are intersected by polygon clipping to recover the feasible
//!   region of the LP.
//! * [`convex`] — convex hulls and convex decomposition of simple polygons
//!   (the paper handles non-convex venues, e.g. the L-shaped lobby, by
//!   splitting them into convex pieces).
//!
//! # Example
//!
//! ```
//! use nomloc_geometry::{HalfPlane, Point, Polygon};
//!
//! // A 10 m × 8 m room.
//! let room = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 8.0));
//! // The constraint "closer to (2,2) than to (8,2)" is the half-plane x ≤ 5.
//! let hp = HalfPlane::closer_to(Point::new(2.0, 2.0), Point::new(8.0, 2.0));
//! let region = hp.clip_polygon(&room).expect("non-empty");
//! assert!((region.area() - 40.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convex;
mod halfplane;
mod line;
mod point;
mod polygon;
mod segment;

pub use halfplane::{intersect_halfplanes, HalfPlane};
pub use line::Line;
pub use point::{Point, Vec2};
pub use polygon::{Polygon, PolygonError};
pub use segment::Segment;

/// Geometric tolerance used by predicates in this crate (metres).
///
/// Indoor-localization coordinates are on the order of 0.1–100 m, so an
/// absolute epsilon of 1e-9 m (a nanometre) is far below any physically
/// meaningful distance while staying well above `f64` noise for the
/// magnitudes involved.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` differ by less than [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < EPS
}
