//! Simple polygons: floor plans and feasible regions.

use std::fmt;

use crate::{Point, Segment, EPS};

/// Error constructing a [`Polygon`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolygonError {
    /// Fewer than three vertices were supplied.
    TooFewVertices,
    /// The vertex ring has (near-)zero area.
    DegenerateArea,
    /// A vertex coordinate was NaN or infinite.
    NonFiniteVertex,
}

impl fmt::Display for PolygonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolygonError::TooFewVertices => write!(f, "polygon needs at least three vertices"),
            PolygonError::DegenerateArea => write!(f, "polygon has zero area"),
            PolygonError::NonFiniteVertex => write!(f, "polygon vertex is not finite"),
        }
    }
}

impl std::error::Error for PolygonError {}

/// A simple polygon stored as a counter-clockwise vertex ring.
///
/// Polygons play two roles in NomLoc:
///
/// * **floor plans** — the area-of-interest boundary whose edges generate
///   virtual-AP constraints, and
/// * **feasible regions** — the intersection of proximity half-planes whose
///   center is the location estimate.
///
/// Construction normalizes the orientation to counter-clockwise, so
/// [`Polygon::area`] is always positive.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex ring (either orientation).
    ///
    /// # Errors
    ///
    /// Returns an error when fewer than three vertices are given, a vertex
    /// is non-finite, or the ring encloses (near-)zero area.
    pub fn new(vertices: Vec<Point>) -> Result<Self, PolygonError> {
        if vertices.len() < 3 {
            return Err(PolygonError::TooFewVertices);
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(PolygonError::NonFiniteVertex);
        }
        let signed = signed_area(&vertices);
        if signed.abs() < EPS {
            return Err(PolygonError::DegenerateArea);
        }
        let mut vertices = vertices;
        if signed < 0.0 {
            vertices.reverse();
        }
        Ok(Polygon { vertices })
    }

    /// Axis-aligned rectangle spanned by two opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners coincide in either coordinate (zero area).
    pub fn rectangle(min: Point, max: Point) -> Self {
        let (x0, x1) = (min.x.min(max.x), min.x.max(max.x));
        let (y0, y1) = (min.y.min(max.y), min.y.max(max.y));
        Polygon::new(vec![
            Point::new(x0, y0),
            Point::new(x1, y0),
            Point::new(x1, y1),
            Point::new(x0, y1),
        ])
        .expect("rectangle corners must span a positive area")
    }

    /// The vertex ring, in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices (equals the number of edges).
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always `false`: a constructed polygon has at least three vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over the directed boundary edges.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Enclosed area (always positive).
    pub fn area(&self) -> f64 {
        signed_area(&self.vertices)
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Area centroid.
    pub fn centroid(&self) -> Point {
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
        a *= 0.5;
        Point::new(cx / (6.0 * a), cy / (6.0 * a))
    }

    /// Axis-aligned bounding box as `(min, max)` corners.
    pub fn bounding_box(&self) -> (Point, Point) {
        let mut min = self.vertices[0];
        let mut max = self.vertices[0];
        for v in &self.vertices[1..] {
            min.x = min.x.min(v.x);
            min.y = min.y.min(v.y);
            max.x = max.x.max(v.x);
            max.y = max.y.max(v.y);
        }
        (min, max)
    }

    /// Returns `true` when `p` is inside or on the boundary.
    ///
    /// Uses the even–odd ray-casting rule with boundary points treated as
    /// contained (a localized object standing exactly on a wall is "inside").
    pub fn contains(&self, p: Point) -> bool {
        // Boundary check first so the crossing parity cannot misclassify it.
        if self.edges().any(|e| e.contains(p)) {
            return true;
        }
        let mut inside = false;
        let n = self.vertices.len();
        let mut j = n - 1;
        for i in 0..n {
            let vi = self.vertices[i];
            let vj = self.vertices[j];
            if ((vi.y > p.y) != (vj.y > p.y))
                && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
            {
                inside = !inside;
            }
            j = i;
        }
        inside
    }

    /// Returns `true` when every interior angle turns the same way
    /// (i.e. the polygon is convex).
    pub fn is_convex(&self) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            if (b - a).cross(c - b) < -EPS {
                return false;
            }
        }
        true
    }

    /// Distance from `p` to the polygon boundary (zero on the boundary).
    pub fn distance_to_boundary(&self, p: Point) -> f64 {
        self.edges()
            .map(|e| e.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }

    /// Closest point of the region to `p`: `p` itself when contained,
    /// otherwise the nearest boundary point.
    pub fn clamp_point(&self, p: Point) -> Point {
        if self.contains(p) {
            return p;
        }
        let mut best = self.vertices[0];
        let mut best_d = f64::INFINITY;
        for e in self.edges() {
            let c = e.closest_point(p);
            let d = c.distance(p);
            if d < best_d {
                best_d = d;
                best = c;
            }
        }
        best
    }

    /// Translated copy of the polygon.
    pub fn translated(&self, dx: f64, dy: f64) -> Polygon {
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|v| Point::new(v.x + dx, v.y + dy))
                .collect(),
        }
    }

    /// Copy scaled by `factor` about `origin`.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is not strictly positive and finite (zero or
    /// negative factors would degenerate or reflect the ring).
    pub fn scaled(&self, origin: Point, factor: f64) -> Polygon {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        Polygon {
            vertices: self
                .vertices
                .iter()
                .map(|v| origin + (*v - origin) * factor)
                .collect(),
        }
    }
}

impl fmt::Display for Polygon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Polygon[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Signed area of a vertex ring (positive when counter-clockwise).
pub(crate) fn signed_area(vertices: &[Point]) -> f64 {
    let n = vertices.len();
    let mut a = 0.0;
    for i in 0..n {
        let p = vertices[i];
        let q = vertices[(i + 1) % n];
        a += p.x * q.y - q.x * p.y;
    }
    a * 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    /// The L-shaped lobby outline used throughout the NomLoc tests.
    fn l_shape() -> Polygon {
        Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Err(PolygonError::TooFewVertices)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(2.0, 2.0),
            ]),
            Err(PolygonError::DegenerateArea)
        );
        assert_eq!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(f64::NAN, 0.0),
                Point::new(0.0, 1.0),
            ]),
            Err(PolygonError::NonFiniteVertex)
        );
    }

    #[test]
    fn orientation_is_normalized() {
        let cw = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert!(signed_area(cw.vertices()) > 0.0);
        assert!((cw.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rectangle_area_perimeter_centroid() {
        let r = Polygon::rectangle(Point::new(1.0, 2.0), Point::new(4.0, 6.0));
        assert!((r.area() - 12.0).abs() < 1e-12);
        assert!((r.perimeter() - 14.0).abs() < 1e-12);
        assert!(r.centroid().distance(Point::new(2.5, 4.0)) < 1e-12);
    }

    #[test]
    fn rectangle_accepts_swapped_corners() {
        let r = Polygon::rectangle(Point::new(4.0, 6.0), Point::new(1.0, 2.0));
        assert!((r.area() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn l_shape_area_and_convexity() {
        let l = l_shape();
        assert!((l.area() - 12.0).abs() < 1e-12);
        assert!(!l.is_convex());
        assert!(unit_square().is_convex());
    }

    #[test]
    fn containment() {
        let l = l_shape();
        assert!(l.contains(Point::new(1.0, 1.0)));
        assert!(l.contains(Point::new(3.0, 1.0)));
        assert!(l.contains(Point::new(1.0, 3.0)));
        // The notch of the L is outside.
        assert!(!l.contains(Point::new(3.0, 3.0)));
        assert!(!l.contains(Point::new(-1.0, 1.0)));
        // Boundary points count as inside.
        assert!(l.contains(Point::new(0.0, 0.0)));
        assert!(l.contains(Point::new(2.0, 3.0)));
    }

    #[test]
    fn centroid_of_l_shape() {
        // L = 4×2 rect (centroid (2,1), area 8) + 2×2 square (centroid (1,3), area 4).
        let l = l_shape();
        let expected = Point::new(
            (2.0 * 8.0 + 1.0 * 4.0) / 12.0,
            (1.0 * 8.0 + 3.0 * 4.0) / 12.0,
        );
        assert!(l.centroid().distance(expected) < 1e-12);
    }

    #[test]
    fn bounding_box() {
        let (min, max) = l_shape().bounding_box();
        assert_eq!(min, Point::new(0.0, 0.0));
        assert_eq!(max, Point::new(4.0, 4.0));
    }

    #[test]
    fn edges_count_and_closure() {
        let l = l_shape();
        let edges: Vec<_> = l.edges().collect();
        assert_eq!(edges.len(), 6);
        assert_eq!(edges[5].b, l.vertices()[0]);
    }

    #[test]
    fn distance_to_boundary() {
        let s = unit_square();
        assert!((s.distance_to_boundary(Point::new(0.5, 0.5)) - 0.5).abs() < 1e-12);
        assert!(s.distance_to_boundary(Point::new(0.0, 0.3)) < 1e-12);
        assert!((s.distance_to_boundary(Point::new(2.0, 0.5)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_point() {
        let s = unit_square();
        let inside = Point::new(0.25, 0.75);
        assert_eq!(s.clamp_point(inside), inside);
        let clamped = s.clamp_point(Point::new(2.0, 0.5));
        assert!(clamped.distance(Point::new(1.0, 0.5)) < 1e-12);
        assert!(s.contains(clamped));
    }

    #[test]
    fn translated_preserves_shape() {
        let l = l_shape().translated(10.0, -5.0);
        assert!((l.area() - 12.0).abs() < 1e-12);
        assert!(l.contains(Point::new(11.0, -4.0)));
        assert!(!l.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", unit_square()).contains("Polygon"));
    }

    #[test]
    fn scaled_area_grows_quadratically() {
        let l = l_shape().scaled(Point::ORIGIN, 2.0);
        assert!((l.area() - 48.0).abs() < 1e-9);
        assert!(l.contains(Point::new(2.0, 2.0)));
        // Scaling about the centroid keeps the centroid fixed.
        let sq = unit_square();
        let c = sq.centroid();
        let scaled = sq.scaled(c, 3.0);
        assert!(scaled.centroid().distance(c) < 1e-12);
        assert!((scaled.area() - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_zero() {
        let _ = unit_square().scaled(Point::ORIGIN, 0.0);
    }
}
