//! Infinite lines and mirror reflections.

use crate::{Point, Vec2, EPS};

/// An infinite line in implicit form `n · p = c`, with `‖n‖ = 1`.
///
/// Lines are used for two jobs in NomLoc:
///
/// * supporting lines of floor-plan boundary edges, across which APs are
///   *mirrored* to create the virtual APs of the area-boundary constraint
///   (Fig. 4 / Eq. 9–11 of the paper), and
/// * orientation tests when clipping feasible regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    normal: Vec2,
    offset: f64,
}

impl Line {
    /// Line through two distinct points.
    ///
    /// Returns `None` when the points coincide (within [`EPS`]).
    pub fn through(a: Point, b: Point) -> Option<Line> {
        let dir = (b - a).normalized()?;
        let normal = dir.perp();
        Some(Line {
            normal,
            offset: normal.dot(a.to_vec()),
        })
    }

    /// Line with the given (not necessarily unit) normal passing through
    /// `point`. Returns `None` for a zero normal.
    pub fn from_normal(normal: Vec2, point: Point) -> Option<Line> {
        let normal = normal.normalized()?;
        Some(Line {
            normal,
            offset: normal.dot(point.to_vec()),
        })
    }

    /// Unit normal vector of the line.
    #[inline]
    pub fn normal(&self) -> Vec2 {
        self.normal
    }

    /// Offset `c` such that the line is `{p : n · p = c}`.
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Signed distance from `p` to the line; positive on the side the
    /// normal points into.
    #[inline]
    pub fn signed_distance(&self, p: Point) -> f64 {
        self.normal.dot(p.to_vec()) - self.offset
    }

    /// Absolute distance from `p` to the line.
    #[inline]
    pub fn distance(&self, p: Point) -> f64 {
        self.signed_distance(p).abs()
    }

    /// Orthogonal projection of `p` onto the line.
    pub fn project(&self, p: Point) -> Point {
        p - self.normal * self.signed_distance(p)
    }

    /// Mirror image of `p` across the line.
    ///
    /// This is the operation that builds **virtual APs**: the paper mirrors
    /// a reference AP across each boundary edge, and the constraint "closer
    /// to the real AP than to its mirror image" is exactly "inside that
    /// boundary edge".
    ///
    /// Reflection is an involution: `mirror(mirror(p)) == p`.
    pub fn mirror(&self, p: Point) -> Point {
        p - self.normal * (2.0 * self.signed_distance(p))
    }

    /// Returns `true` when `p` lies on the line (within [`EPS`]).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.distance(p) < EPS
    }

    /// Intersection point with another line, or `None` when (anti-)parallel.
    pub fn intersection(&self, other: &Line) -> Option<Point> {
        // Solve [n1; n2] p = [c1; c2] by Cramer's rule.
        let det = self.normal.cross(other.normal);
        if det.abs() < EPS {
            return None;
        }
        let x = (self.offset * other.normal.y - other.offset * self.normal.y) / det;
        let y = (self.normal.x * other.offset - other.normal.x * self.offset) / det;
        Some(Point::new(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizontal_y2() -> Line {
        Line::through(Point::new(0.0, 2.0), Point::new(5.0, 2.0)).unwrap()
    }

    #[test]
    fn through_rejects_coincident_points() {
        assert!(Line::through(Point::new(1.0, 1.0), Point::new(1.0, 1.0)).is_none());
    }

    #[test]
    fn signed_distance_sides() {
        let l = horizontal_y2();
        let above = l.signed_distance(Point::new(0.0, 5.0));
        let below = l.signed_distance(Point::new(0.0, 0.0));
        assert!((above.abs() - 3.0).abs() < 1e-12);
        assert!((below.abs() - 2.0).abs() < 1e-12);
        assert!(above * below < 0.0, "opposite sides have opposite signs");
    }

    #[test]
    fn project_lands_on_line() {
        let l = Line::through(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let p = l.project(Point::new(2.0, 0.0));
        assert!(l.contains(p));
        assert!((p.x - 1.0).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mirror_is_involution() {
        let l = Line::through(Point::new(0.0, 0.0), Point::new(3.0, 1.0)).unwrap();
        let p = Point::new(-2.0, 5.0);
        let m = l.mirror(p);
        let back = l.mirror(m);
        assert!(back.distance(p) < 1e-12);
    }

    #[test]
    fn mirror_across_horizontal() {
        let l = horizontal_y2();
        let m = l.mirror(Point::new(3.0, 5.0));
        assert!((m.x - 3.0).abs() < 1e-12);
        assert!((m.y - (-1.0)).abs() < 1e-12);
    }

    #[test]
    fn mirror_preserves_distance_to_line() {
        let l = Line::through(Point::new(1.0, 0.0), Point::new(0.0, 2.0)).unwrap();
        let p = Point::new(4.0, 4.0);
        assert!((l.distance(p) - l.distance(l.mirror(p))).abs() < 1e-12);
    }

    #[test]
    fn point_on_line_is_own_mirror() {
        let l = horizontal_y2();
        let p = Point::new(7.0, 2.0);
        assert!(l.mirror(p).distance(p) < 1e-12);
    }

    #[test]
    fn intersection_of_perpendicular_lines() {
        let h = horizontal_y2();
        let v = Line::through(Point::new(3.0, 0.0), Point::new(3.0, 1.0)).unwrap();
        let p = h.intersection(&v).unwrap();
        assert!(p.distance(Point::new(3.0, 2.0)) < 1e-12);
    }

    #[test]
    fn parallel_lines_do_not_intersect() {
        let a = horizontal_y2();
        let b = Line::through(Point::new(0.0, 3.0), Point::new(5.0, 3.0)).unwrap();
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn from_normal_matches_through() {
        let l1 = Line::from_normal(Vec2::new(0.0, 3.0), Point::new(1.0, 2.0)).unwrap();
        let l2 = horizontal_y2();
        // Same line up to normal sign.
        assert!(l1.contains(Point::new(-4.0, 2.0)));
        assert!(l2.contains(Point::new(-4.0, 2.0)));
        assert!(Line::from_normal(Vec2::ZERO, Point::ORIGIN).is_none());
    }
}
