//! The `nomloc` command-line tool. Parsing and rendering live in
//! `nomloc_cli`; this binary only dispatches.

use nomloc_cli::{parse, run_campaign, run_map, run_serve, run_venues, Command, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Venues) => {
            print!("{}", run_venues());
            ExitCode::SUCCESS
        }
        Ok(Command::Campaign(spec)) => {
            print!("{}", run_campaign(&spec));
            ExitCode::SUCCESS
        }
        Ok(Command::Map(spec)) => {
            print!("{}", run_map(&spec));
            ExitCode::SUCCESS
        }
        Ok(Command::Serve(spec)) => {
            print!("{}", run_serve(&spec));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `nomloc help` for usage");
            ExitCode::FAILURE
        }
    }
}
