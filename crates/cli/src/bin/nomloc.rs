//! The `nomloc` command-line tool. Parsing and rendering live in
//! `nomloc_cli`; this binary only dispatches.

use nomloc_cli::{
    parse, run_campaign, run_chaos, run_loadgen, run_map, run_serve, run_venue_admin, run_venues,
    start_daemon, Command, USAGE,
};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse(&args) {
        Ok(Command::Help) => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(Command::Venues) => {
            print!("{}", run_venues());
            ExitCode::SUCCESS
        }
        Ok(Command::Campaign(spec)) => {
            print!("{}", run_campaign(&spec));
            ExitCode::SUCCESS
        }
        Ok(Command::Map(spec)) => {
            print!("{}", run_map(&spec));
            ExitCode::SUCCESS
        }
        Ok(Command::Serve(spec)) if spec.listen.is_some() => match start_daemon(&spec) {
            Ok(handle) => {
                println!("nomloc-net daemon listening on {}", handle.local_addr());
                // Serve until the response budget is spent (--max-requests),
                // or forever when the budget is 0; the drain-time health
                // summary prints either way if we do exit.
                loop {
                    std::thread::sleep(Duration::from_millis(50));
                    if spec.max_requests > 0 && handle.responses_sent() >= spec.max_requests as u64
                    {
                        break;
                    }
                }
                let health = handle.shutdown();
                print!("{health}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Serve(spec)) => {
            print!("{}", run_serve(&spec));
            ExitCode::SUCCESS
        }
        Ok(Command::Loadgen(spec)) => match run_loadgen(&spec) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::VenueAdmin(spec)) => match run_venue_admin(&spec) {
            Ok(listing) => {
                print!("{listing}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Ok(Command::Chaos(spec)) => match run_chaos(&spec) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `nomloc help` for usage");
            ExitCode::FAILURE
        }
    }
}
