//! Command-line interface for the NomLoc indoor localization system.
//!
//! The `nomloc` binary wraps the library's campaign runner and analysis
//! tools for interactive use:
//!
//! ```text
//! nomloc campaign --venue lab --deployment nomadic:8 --trials 8
//! nomloc map --venue lobby --nomadic
//! nomloc venues
//! ```
//!
//! Argument parsing is hand-rolled (the workspace stays dependency-light);
//! the parsing layer lives here so it can be unit-tested, while
//! `src/bin/nomloc.rs` only dispatches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nomloc_core::experiment::{Campaign, Deployment};
use nomloc_core::localizability;
use nomloc_core::scenario::{fleet_venue, Venue};
use nomloc_core::LocalizationServer;
use nomloc_dsp::Window;
use nomloc_faults::FaultPlan;
use nomloc_geometry::Point;
use nomloc_lp::center::CenterMethod;
use nomloc_net::wire::{ErrorReply, WireEstimate, WireVenue};
use std::fmt;

// The synthetic workload lives in `nomloc_core::scenario` (one builder
// shared with the bench bins and the loopback tests); re-exported here so
// existing `nomloc_cli::synthetic_workload` callers keep working.
pub use nomloc_core::scenario::synthetic_workload;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a measurement campaign and print its summary.
    Campaign(CampaignSpec),
    /// Print the analytical localizability map of a venue.
    Map(MapSpec),
    /// Serve a synthetic batch of localization requests and print
    /// pipeline statistics — or, with `--listen`, run the network daemon.
    Serve(ServeSpec),
    /// Drive a running (or freshly spawned loopback) daemon with
    /// concurrent connections and print throughput + latency quantiles.
    Loadgen(LoadgenSpec),
    /// Spawn a loopback daemon, replay a workload through seeded fault
    /// injection, and verify the per-fault-class serving contract.
    Chaos(ChaosSpec),
    /// Administer a running daemon's venue registry over the wire-v3
    /// admin plane (onboard / retire / list).
    VenueAdmin(VenueAdminSpec),
    /// List the built-in venues.
    Venues,
    /// Print usage.
    Help,
}

/// Parameters of a `campaign` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Venue name (`lab` / `lobby`).
    pub venue: VenueName,
    /// Deployment under test.
    pub deployment: DeploymentSpec,
    /// Probe packets per AP site.
    pub packets: usize,
    /// Trials per test site.
    pub trials: usize,
    /// Nomadic position error range, metres.
    pub er: f64,
    /// RNG seed.
    pub seed: u64,
    /// Center method.
    pub center: CenterMethod,
    /// PDP spectral window.
    pub window: Window,
    /// Receive antennas per AP.
    pub antennas: usize,
    /// Model the nomadic carrier's body.
    pub carrier: bool,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            venue: VenueName::Lab,
            deployment: DeploymentSpec::Nomadic { steps: 8 },
            packets: 60,
            trials: 8,
            er: 0.0,
            seed: 2014,
            center: CenterMethod::Chebyshev,
            window: Window::Rectangular,
            antennas: 1,
            carrier: false,
        }
    }
}

/// Parameters of a `map` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MapSpec {
    /// Venue name.
    pub venue: VenueName,
    /// Include the nomadic AP's sites in the deployment.
    pub nomadic: bool,
    /// Grid pitch, metres.
    pub pitch: f64,
}

impl Default for MapSpec {
    fn default() -> Self {
        MapSpec {
            venue: VenueName::Lab,
            nomadic: false,
            pitch: 0.5,
        }
    }
}

/// Parameters of a `serve` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSpec {
    /// Venue name.
    pub venue: VenueName,
    /// Number of localization requests in the batch (synthetic mode).
    pub requests: usize,
    /// Probe packets per AP per request (synthetic mode).
    pub packets: usize,
    /// Worker threads (`0` = one per available CPU).
    pub workers: usize,
    /// RNG seed for the synthetic CSI workload.
    pub seed: u64,
    /// Daemon mode: the address to listen on (e.g. `127.0.0.1:4455`).
    pub listen: Option<String>,
    /// Daemon: flush a micro-batch at this many requests.
    pub max_batch: usize,
    /// Daemon: …or this many microseconds after its first request.
    pub max_wait_us: u64,
    /// Daemon: admission-queue capacity (`Overloaded` beyond it).
    pub queue_cap: usize,
    /// Daemon: venue-affine dispatch shards (`1` = the legacy single
    /// admission queue, kept as the A/B correctness oracle).
    pub queue_shards: usize,
    /// Daemon: acceptor threads sharing the listening socket.
    pub acceptors: usize,
    /// Daemon: batcher threads forming micro-batches.
    pub batchers: usize,
    /// Daemon: exit after this many responses (0 = run until killed).
    pub max_requests: usize,
    /// Daemon: socket backend (event loop or thread-per-connection).
    pub socket_backend: nomloc_net::SocketBackend,
    /// Daemon: event-loop threads (event-loop backend only).
    pub event_loops: usize,
    /// Daemon: fleet venues pre-onboarded at startup (ids `1..=N`,
    /// rotating scaled floor plans from `fleet_venue`).
    pub venues: usize,
    /// Daemon: venue-cache memory budget in bytes (0 = unlimited); cold
    /// venues beyond it are LRU-evicted and rebuilt on next request.
    pub venue_budget: usize,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            venue: VenueName::Lab,
            requests: 40,
            packets: 20,
            workers: 0,
            seed: 2014,
            listen: None,
            max_batch: 32,
            max_wait_us: 500,
            queue_cap: 1024,
            queue_shards: 8,
            acceptors: 2,
            batchers: 2,
            max_requests: 0,
            socket_backend: nomloc_net::SocketBackend::default(),
            event_loops: 2,
            venues: 0,
            venue_budget: 0,
        }
    }
}

/// Parameters of a `loadgen` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadgenSpec {
    /// Venue used to synthesise the CSI workload.
    pub venue: VenueName,
    /// Daemon address to connect to; `None` spawns a loopback daemon.
    pub connect: Option<String>,
    /// Parallel TCP connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Probe packets per AP per request.
    pub packets: usize,
    /// RNG seed for the synthetic CSI workload.
    pub seed: u64,
    /// Per-request deadline, µs (0 = none).
    pub deadline_us: u32,
    /// Loopback daemon: worker threads (`0` = one per available CPU).
    pub workers: usize,
    /// Report the daemon's reply-buffer reuse counters (bytes encoded /
    /// bytes into pooled buffers / pool hit-rate). Daemon-local display
    /// only — the counters never travel on the wire, so with `--connect`
    /// this prints a pointer at the daemon's own stats output instead.
    pub payload_reuse: bool,
    /// Loopback daemon: socket backend.
    pub socket_backend: nomloc_net::SocketBackend,
    /// Extra connections opened and held idle for the whole run —
    /// exercises the event-loop backend's mostly-idle scaling.
    pub idle_connections: usize,
    /// Fleet venues onboarded over the admin plane before driving (ids
    /// `1..=N`); traffic is then spread zipf-over-venues across ids
    /// `0..=N` (0 = the daemon's resident venue). 0 = single-venue run.
    pub venues: usize,
    /// Zipf exponent `s` for the over-venues traffic skew (1.0 ≈ classic
    /// web-style popularity; 0.0 = uniform). Only used with `--venues`.
    pub zipf: f64,
    /// Sessioned traffic: each connection drives one long-lived session
    /// (carried across reconnects); the report adds the per-session
    /// smoothed-vs-raw deviation.
    pub sessions: bool,
    /// Closed-loop worker count (`0` = open-loop pipelined). `N > 0`
    /// drives N synchronous send-one-wait-one workers, each on its own
    /// connection, and reports aggregate RPS plus the worst per-worker
    /// p99 — the contended-dispatch view. Overrides `--connections`.
    pub concurrency: usize,
}

impl Default for LoadgenSpec {
    fn default() -> Self {
        LoadgenSpec {
            venue: VenueName::Lab,
            connect: None,
            connections: 4,
            requests: 1000,
            packets: 4,
            seed: 2014,
            deadline_us: 0,
            workers: 0,
            payload_reuse: false,
            socket_backend: nomloc_net::SocketBackend::default(),
            idle_connections: 0,
            venues: 0,
            zipf: 1.0,
            sessions: false,
            concurrency: 0,
        }
    }
}

/// Parameters of a `chaos` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    /// Venue used to synthesise the CSI workload.
    pub venue: VenueName,
    /// Total requests driven through the fault plan.
    pub requests: usize,
    /// Probe packets per AP per request.
    pub packets: usize,
    /// Seed shared by the workload and the fault plan.
    pub seed: u64,
    /// Per-fault-class injection rate (eight classes, so the faulted
    /// fraction is roughly eight times this).
    pub rate: f64,
    /// Loopback daemon: worker threads (`0` = one per available CPU).
    pub workers: usize,
    /// Kill a batcher thread after every Nth batch (0 = never), proving
    /// the watchdog respawns them without losing requests.
    pub kill_every: usize,
    /// Loopback daemon: socket backend.
    pub socket_backend: nomloc_net::SocketBackend,
    /// Concurrent sessions the chaos run interleaves (0 = stateless).
    /// With N ≥ 2 the verifier's per-session tracker replay doubles as a
    /// cross-wire detector, and the plan's stale-session fault is armed.
    pub sessions: u64,
}

impl Default for ChaosSpec {
    fn default() -> Self {
        ChaosSpec {
            venue: VenueName::Lab,
            requests: 200,
            packets: 4,
            seed: 2014,
            rate: 0.03,
            workers: 0,
            kill_every: 0,
            socket_backend: nomloc_net::SocketBackend::default(),
            sessions: 0,
        }
    }
}

/// Which admin-plane operation a `venue` invocation performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VenueAction {
    /// Onboard a venue (build its cache on the daemon, make it live).
    Onboard,
    /// Retire a venue (drop it from the registry; in-flight batches
    /// holding its entry still complete).
    Retire,
    /// List the registry: id, name, residency, request count per venue.
    List,
}

/// Parameters of a `venue` invocation (wire-v3 admin plane client).
#[derive(Debug, Clone, PartialEq)]
pub struct VenueAdminSpec {
    /// Operation to perform.
    pub action: VenueAction,
    /// Daemon address to administer.
    pub connect: String,
    /// Venue id to onboard/retire (must be ≥ 1; venue 0 is the daemon's
    /// resident venue and cannot be administered).
    pub id: u64,
    /// Onboard only: a built-in venue to use verbatim. Defaults to the
    /// id-keyed `fleet_venue` rotation (scaled lab/lobby/mall plans).
    pub venue: Option<VenueName>,
}

/// A built-in venue selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VenueName {
    /// The cluttered laboratory (Fig. 6(a)).
    Lab,
    /// The open L-shaped lobby (Fig. 6(b)).
    Lobby,
    /// The marketplace-scale cross-shaped mall wing.
    Mall,
}

impl VenueName {
    /// Builds the venue.
    pub fn venue(&self) -> Venue {
        match self {
            VenueName::Lab => Venue::lab(),
            VenueName::Lobby => Venue::lobby(),
            VenueName::Mall => Venue::mall(),
        }
    }
}

/// Deployment selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentSpec {
    /// All APs parked.
    Static,
    /// One nomadic AP walking `steps` transitions.
    Nomadic {
        /// Markov-chain transitions per round.
        steps: usize,
    },
    /// `nomads` nomadic APs walking 8 transitions each.
    Fleet {
        /// Number of nomadic APs.
        nomads: usize,
    },
}

impl DeploymentSpec {
    /// Converts to the library's deployment type.
    pub fn deployment(&self) -> Deployment {
        match self {
            DeploymentSpec::Static => Deployment::Static,
            DeploymentSpec::Nomadic { steps } => Deployment::nomadic(*steps),
            DeploymentSpec::Fleet { nomads } => Deployment::Fleet {
                nomads: *nomads,
                steps: 8,
            },
        }
    }
}

/// A CLI parse error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Usage text printed by `nomloc help`.
pub const USAGE: &str = "\
nomloc — calibration-free indoor localization with nomadic access points

USAGE:
    nomloc campaign [OPTIONS]     run a measurement campaign
    nomloc map [OPTIONS]          print a localizability heat map
    nomloc serve [OPTIONS]        serve a synthetic request batch + stats
                                  (with --listen ADDR: run the TCP daemon)
    nomloc loadgen [OPTIONS]      drive a daemon with concurrent clients
    nomloc chaos [OPTIONS]        fault-inject a loopback daemon and verify
                                  the graceful-degradation contract
    nomloc venue ACTION [OPTIONS] administer a daemon's venue registry
                                  (ACTION: onboard | retire | list)
    nomloc venues                 list built-in venues
    nomloc help                   show this message

CAMPAIGN OPTIONS:
    --venue lab|lobby|mall        venue (default lab)
    --deployment static|nomadic[:STEPS]|fleet:N
                                  AP deployment (default nomadic:8)
    --packets N                   probe packets per AP site (default 60)
    --trials N                    trials per test site (default 8)
    --er METERS                   nomadic position error range (default 0)
    --seed N                      RNG seed (default 2014)
    --center chebyshev|analytic|centroid
                                  feasible-region center (default chebyshev)
    --window rect|hann|hamming|blackman
                                  PDP spectral window (default rect)
    --antennas N                  receive antennas per AP (default 1)
    --carrier                     model the nomadic carrier's body

MAP OPTIONS:
    --venue lab|lobby|mall        venue (default lab)
    --nomadic                     include the nomadic AP's sites
    --pitch METERS                grid pitch (default 0.5)

SERVE OPTIONS:
    --venue lab|lobby|mall        venue (default lab)
    --requests N                  requests in the batch (default 40)
    --packets N                   probe packets per AP per request (default 20)
    --workers N                   worker threads, 0 = all CPUs (default 0)
    --seed N                      workload RNG seed (default 2014)
    --listen ADDR                 run the nomloc-net daemon on ADDR
                                  (e.g. 127.0.0.1:4455; port 0 = ephemeral)
    --max-batch N                 daemon: micro-batch size cap (default 32)
    --max-wait-us N               daemon: micro-batch max wait (default 500)
    --queue-cap N                 daemon: admission queue cap (default 1024)
    --queue-shards N              daemon: venue-affine dispatch shards
                                  (default 8; 1 = legacy single queue)
    --acceptors N                 daemon: acceptor threads (default 2)
    --batchers N                  daemon: batcher threads (default 2)
    --max-requests N              daemon: exit after N responses (default 0
                                  = run until killed)
    --socket-backend threaded|event-loop
                                  daemon: socket layer (default event-loop
                                  on Unix; threaded elsewhere)
    --event-loops N               daemon: event-loop threads (default 2;
                                  event-loop backend only)
    --venues N                    daemon: pre-onboard N fleet venues
                                  (ids 1..=N; default 0)
    --venue-budget BYTES          daemon: venue-cache memory budget; cold
                                  venues beyond it are LRU-evicted and
                                  rebuilt on next request (default 0
                                  = unlimited)

LOADGEN OPTIONS:
    --connect ADDR                daemon to drive (default: spawn a loopback
                                  daemon in-process on 127.0.0.1:0)
    --venue lab|lobby|mall        workload venue (default lab)
    --connections N               parallel connections (default 4)
    --requests N                  total requests (default 1000)
    --packets N                   probe packets per AP per request (default 4)
    --seed N                      workload RNG seed (default 2014)
    --deadline-us N               per-request deadline, 0 = none (default 0)
    --workers N                   loopback daemon worker threads (default 0)
    --payload-reuse               report reply-buffer reuse: bytes encoded,
                                  bytes into pooled buffers, pool hit-rate
                                  (daemon-local counters; loopback only)
    --socket-backend threaded|event-loop
                                  loopback daemon socket layer (default
                                  event-loop on Unix)
    --idle-connections N          extra connections opened and held idle
                                  for the whole run (default 0)
    --venues N                    onboard N fleet venues over the admin
                                  plane, then spread traffic zipf-over-
                                  venues across ids 0..=N (default 0
                                  = single-venue)
    --zipf S                      zipf exponent for the venue skew
                                  (default 1.0; 0 = uniform)
    --sessions                    sessioned traffic: one long-lived session
                                  per connection (survives reconnects);
                                  reports per-session smoothing deviation
    --concurrency N               closed loop: N synchronous workers, one
                                  connection each, send-one-wait-one;
                                  reports aggregate RPS + worst per-worker
                                  p99 (default 0 = open-loop pipelined;
                                  overrides --connections)

CHAOS OPTIONS:
    --venue lab|lobby|mall        workload venue (default lab)
    --requests N                  requests driven (default 200)
    --packets N                   probe packets per AP per request (default 4)
    --seed N                      workload + fault-plan seed (default 2014)
    --rate R                      per-fault-class rate in [0, 0.125]
                                  (default 0.03; 8 classes ≈ 24 % faulted)
    --kill-every N                kill a batcher after every Nth batch,
                                  0 = never (default 0; watchdog respawns)
    --workers N                   loopback daemon worker threads (default 0)
    --socket-backend threaded|event-loop
                                  loopback daemon socket layer (default
                                  event-loop on Unix)
    --sessions N                  interleave N concurrent sessions, verified
                                  by per-session tracker replay (cross-wire
                                  detection; arms the stale-session fault;
                                  default 0 = stateless)

VENUE OPTIONS:
    --connect ADDR                daemon to administer (required)
    --id N                        venue id, N ≥ 1 (onboard/retire; venue 0
                                  is the resident venue)
    --venue lab|lobby|mall        onboard: use this built-in venue verbatim
                                  (default: the id-keyed fleet rotation of
                                  scaled lab/lobby/mall plans)
";

/// Parses a full argument list (excluding the program name).
///
/// # Errors
///
/// Returns a [`ParseError`] with a user-facing message on unknown
/// commands, flags, or malformed values.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("venues") => Ok(Command::Venues),
        Some("campaign") => parse_campaign(it.as_slice()).map(Command::Campaign),
        Some("map") => parse_map(it.as_slice()).map(Command::Map),
        Some("serve") => parse_serve(it.as_slice()).map(Command::Serve),
        Some("loadgen") => parse_loadgen(it.as_slice()).map(Command::Loadgen),
        Some("chaos") => parse_chaos(it.as_slice()).map(Command::Chaos),
        Some("venue") => parse_venue_admin(it.as_slice()).map(Command::VenueAdmin),
        Some(other) => Err(err(format!("unknown command `{other}`; try `nomloc help`"))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut std::slice::Iter<'a, String>,
) -> Result<&'a str, ParseError> {
    it.next()
        .map(String::as_str)
        .ok_or_else(|| err(format!("flag `{flag}` needs a value")))
}

fn parse_usize(flag: &str, v: &str) -> Result<usize, ParseError> {
    v.parse().map_err(|_| {
        err(format!(
            "flag `{flag}`: `{v}` is not a non-negative integer"
        ))
    })
}

fn parse_f64(flag: &str, v: &str) -> Result<f64, ParseError> {
    v.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite() && *x >= 0.0)
        .ok_or_else(|| err(format!("flag `{flag}`: `{v}` is not a non-negative number")))
}

fn parse_venue(v: &str) -> Result<VenueName, ParseError> {
    match v {
        "lab" => Ok(VenueName::Lab),
        "lobby" => Ok(VenueName::Lobby),
        "mall" => Ok(VenueName::Mall),
        _ => Err(err(format!("unknown venue `{v}` (lab|lobby|mall)"))),
    }
}

fn parse_deployment(v: &str) -> Result<DeploymentSpec, ParseError> {
    if v == "static" {
        return Ok(DeploymentSpec::Static);
    }
    if v == "nomadic" {
        return Ok(DeploymentSpec::Nomadic { steps: 8 });
    }
    if let Some(steps) = v.strip_prefix("nomadic:") {
        return Ok(DeploymentSpec::Nomadic {
            steps: parse_usize("--deployment", steps)?,
        });
    }
    if let Some(n) = v.strip_prefix("fleet:") {
        return Ok(DeploymentSpec::Fleet {
            nomads: parse_usize("--deployment", n)?,
        });
    }
    Err(err(format!(
        "unknown deployment `{v}` (static|nomadic[:STEPS]|fleet:N)"
    )))
}

fn parse_campaign(args: &[String]) -> Result<CampaignSpec, ParseError> {
    let mut spec = CampaignSpec::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--venue" => spec.venue = parse_venue(take_value(flag, &mut it)?)?,
            "--deployment" => spec.deployment = parse_deployment(take_value(flag, &mut it)?)?,
            "--packets" => spec.packets = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--trials" => spec.trials = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--er" => spec.er = parse_f64(flag, take_value(flag, &mut it)?)?,
            "--seed" => {
                spec.seed = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("flag `--seed`: not an integer"))?
            }
            "--center" => {
                spec.center = match take_value(flag, &mut it)? {
                    "chebyshev" => CenterMethod::Chebyshev,
                    "analytic" => CenterMethod::Analytic,
                    "centroid" => CenterMethod::Centroid,
                    other => {
                        return Err(err(format!(
                            "unknown center `{other}` (chebyshev|analytic|centroid)"
                        )))
                    }
                }
            }
            "--window" => {
                spec.window = match take_value(flag, &mut it)? {
                    "rect" | "rectangular" => Window::Rectangular,
                    "hann" => Window::Hann,
                    "hamming" => Window::Hamming,
                    "blackman" => Window::Blackman,
                    other => {
                        return Err(err(format!(
                            "unknown window `{other}` (rect|hann|hamming|blackman)"
                        )))
                    }
                }
            }
            "--antennas" => spec.antennas = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--carrier" => spec.carrier = true,
            other => return Err(err(format!("unknown campaign flag `{other}`"))),
        }
    }
    Ok(spec)
}

fn parse_map(args: &[String]) -> Result<MapSpec, ParseError> {
    let mut spec = MapSpec::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--venue" => spec.venue = parse_venue(take_value(flag, &mut it)?)?,
            "--nomadic" => spec.nomadic = true,
            "--pitch" => {
                spec.pitch = parse_f64(flag, take_value(flag, &mut it)?)?;
                if spec.pitch <= 0.0 {
                    return Err(err("flag `--pitch`: must be positive"));
                }
            }
            other => return Err(err(format!("unknown map flag `{other}`"))),
        }
    }
    Ok(spec)
}

fn parse_backend(value: &str) -> Result<nomloc_net::SocketBackend, ParseError> {
    nomloc_net::SocketBackend::parse(value).ok_or_else(|| {
        err(format!(
            "flag `--socket-backend`: unknown backend `{value}` (threaded|event-loop)"
        ))
    })
}

fn parse_serve(args: &[String]) -> Result<ServeSpec, ParseError> {
    let mut spec = ServeSpec::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--venue" => spec.venue = parse_venue(take_value(flag, &mut it)?)?,
            "--requests" => spec.requests = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--packets" => spec.packets = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--workers" => spec.workers = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--seed" => {
                spec.seed = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("flag `--seed`: not an integer"))?
            }
            "--listen" => spec.listen = Some(take_value(flag, &mut it)?.to_string()),
            "--max-batch" => {
                spec.max_batch = parse_usize(flag, take_value(flag, &mut it)?)?;
                if spec.max_batch == 0 {
                    return Err(err("flag `--max-batch`: must be positive"));
                }
            }
            "--max-wait-us" => {
                spec.max_wait_us = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("flag `--max-wait-us`: not an integer"))?
            }
            "--queue-cap" => {
                spec.queue_cap = parse_usize(flag, take_value(flag, &mut it)?)?;
                if spec.queue_cap == 0 {
                    return Err(err("flag `--queue-cap`: must be positive"));
                }
            }
            "--queue-shards" => {
                spec.queue_shards = parse_usize(flag, take_value(flag, &mut it)?)?;
                if spec.queue_shards == 0 {
                    return Err(err("flag `--queue-shards`: must be positive"));
                }
            }
            "--acceptors" => {
                spec.acceptors = parse_usize(flag, take_value(flag, &mut it)?)?;
                if spec.acceptors == 0 {
                    return Err(err("flag `--acceptors`: must be positive"));
                }
            }
            "--batchers" => {
                spec.batchers = parse_usize(flag, take_value(flag, &mut it)?)?;
                if spec.batchers == 0 {
                    return Err(err("flag `--batchers`: must be positive"));
                }
            }
            "--max-requests" => spec.max_requests = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--socket-backend" => spec.socket_backend = parse_backend(take_value(flag, &mut it)?)?,
            "--event-loops" => {
                spec.event_loops = parse_usize(flag, take_value(flag, &mut it)?)?;
                if spec.event_loops == 0 {
                    return Err(err("flag `--event-loops`: must be positive"));
                }
            }
            "--venues" => spec.venues = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--venue-budget" => spec.venue_budget = parse_usize(flag, take_value(flag, &mut it)?)?,
            other => return Err(err(format!("unknown serve flag `{other}`"))),
        }
    }
    Ok(spec)
}

fn parse_loadgen(args: &[String]) -> Result<LoadgenSpec, ParseError> {
    let mut spec = LoadgenSpec::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => spec.connect = Some(take_value(flag, &mut it)?.to_string()),
            "--venue" => spec.venue = parse_venue(take_value(flag, &mut it)?)?,
            "--connections" => {
                spec.connections = parse_usize(flag, take_value(flag, &mut it)?)?;
                if spec.connections == 0 {
                    return Err(err("flag `--connections`: must be positive"));
                }
            }
            "--requests" => spec.requests = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--packets" => spec.packets = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--seed" => {
                spec.seed = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("flag `--seed`: not an integer"))?
            }
            "--deadline-us" => {
                spec.deadline_us = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("flag `--deadline-us`: not an integer"))?
            }
            "--workers" => spec.workers = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--payload-reuse" => spec.payload_reuse = true,
            "--socket-backend" => spec.socket_backend = parse_backend(take_value(flag, &mut it)?)?,
            "--idle-connections" => {
                spec.idle_connections = parse_usize(flag, take_value(flag, &mut it)?)?
            }
            "--venues" => spec.venues = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--zipf" => spec.zipf = parse_f64(flag, take_value(flag, &mut it)?)?,
            "--sessions" => spec.sessions = true,
            "--concurrency" => spec.concurrency = parse_usize(flag, take_value(flag, &mut it)?)?,
            other => return Err(err(format!("unknown loadgen flag `{other}`"))),
        }
    }
    Ok(spec)
}

fn parse_chaos(args: &[String]) -> Result<ChaosSpec, ParseError> {
    let mut spec = ChaosSpec::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--venue" => spec.venue = parse_venue(take_value(flag, &mut it)?)?,
            "--requests" => spec.requests = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--packets" => spec.packets = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--seed" => {
                spec.seed = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("flag `--seed`: not an integer"))?
            }
            "--rate" => {
                spec.rate = parse_f64(flag, take_value(flag, &mut it)?)?;
                if spec.rate > 0.125 {
                    return Err(err(
                        "flag `--rate`: per-class rate above 1/8 would exceed probability 1",
                    ));
                }
            }
            "--kill-every" => spec.kill_every = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--workers" => spec.workers = parse_usize(flag, take_value(flag, &mut it)?)?,
            "--socket-backend" => spec.socket_backend = parse_backend(take_value(flag, &mut it)?)?,
            "--sessions" => {
                spec.sessions = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("flag `--sessions`: not an integer"))?
            }
            other => return Err(err(format!("unknown chaos flag `{other}`"))),
        }
    }
    Ok(spec)
}

fn parse_venue_admin(args: &[String]) -> Result<VenueAdminSpec, ParseError> {
    let mut it = args.iter();
    let action = match it.next().map(String::as_str) {
        Some("onboard") => VenueAction::Onboard,
        Some("retire") => VenueAction::Retire,
        Some("list") => VenueAction::List,
        Some(other) => {
            return Err(err(format!(
                "unknown venue action `{other}` (onboard|retire|list)"
            )))
        }
        None => return Err(err("venue: needs an action (onboard|retire|list)")),
    };
    let mut spec = VenueAdminSpec {
        action,
        connect: String::new(),
        id: 0,
        venue: None,
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--connect" => spec.connect = take_value(flag, &mut it)?.to_string(),
            "--id" => {
                spec.id = take_value(flag, &mut it)?
                    .parse()
                    .map_err(|_| err("flag `--id`: not an integer"))?
            }
            "--venue" => spec.venue = Some(parse_venue(take_value(flag, &mut it)?)?),
            other => return Err(err(format!("unknown venue flag `{other}`"))),
        }
    }
    if spec.connect.is_empty() {
        return Err(err("venue: needs --connect ADDR"));
    }
    if spec.action != VenueAction::List && spec.id == 0 {
        return Err(err(
            "venue onboard/retire: needs --id N with N ≥ 1 (venue 0 is the \
             daemon's resident venue and cannot be administered)",
        ));
    }
    Ok(spec)
}

/// Runs a campaign per spec and renders its report to a string.
pub fn run_campaign(spec: &CampaignSpec) -> String {
    let venue = spec.venue.venue();
    let result = Campaign::new(venue.clone(), spec.deployment.deployment())
        .packets_per_site(spec.packets)
        .trials_per_site(spec.trials)
        .position_error(spec.er)
        .center_method(spec.center)
        .pdp_window(spec.window)
        .rx_antennas(spec.antennas)
        .carrier_blocking(spec.carrier)
        .seed(spec.seed)
        .run();
    let cdf = result.error_cdf();
    let mut out = String::new();
    out.push_str(&format!(
        "campaign: {} / {:?} (packets {}, trials {}, ER {} m, seed {})\n\n",
        venue.name, spec.deployment, spec.packets, spec.trials, spec.er, spec.seed
    ));
    out.push_str(&format!(
        "{:>6} {:>12} {:>12} {:>10}\n",
        "site", "truth", "mean_err_m", "prox_acc"
    ));
    for ((i, o), acc) in result
        .outcomes
        .iter()
        .enumerate()
        .zip(&result.proximity_accuracy)
    {
        out.push_str(&format!(
            "{:>6} {:>12} {:>12.3} {:>10.3}\n",
            i + 1,
            format!("{}", o.site),
            o.mean_error(),
            acc
        ));
    }
    out.push_str(&format!(
        "\nmean error {:.2} m | median {:.2} m | 90th {:.2} m | SLV {:.3} m² | proximity acc {:.1} %\n",
        result.mean_error(),
        cdf.quantile(0.5),
        cdf.quantile(0.9),
        result.slv(),
        100.0 * result.mean_proximity_accuracy(),
    ));
    out
}

/// Renders the localizability map per spec to a string.
pub fn run_map(spec: &MapSpec) -> String {
    let venue = spec.venue.venue();
    let mut sites = venue.static_deployment();
    if spec.nomadic {
        sites.extend_from_slice(&venue.nomadic_sites);
    }
    let map = localizability::analyze(venue.plan.boundary(), &sites, spec.pitch);
    let (min, max) = venue.plan.boundary().bounding_box();
    let cols = ((max.x - min.x) / spec.pitch).round() as usize;
    let rows = ((max.y - min.y) / spec.pitch).round() as usize;
    let mut grid = vec![vec![' '; cols]; rows];
    for c in map.cells() {
        let i = ((c.point.x - min.x) / spec.pitch) as usize;
        let j = ((c.point.y - min.y) / spec.pitch) as usize;
        if j < rows && i < cols {
            grid[j][i] = match c.predicted_error {
                e if e < 1.0 => '.',
                e if e < 2.0 => 'o',
                e if e < 3.0 => 'O',
                _ => '#',
            };
        }
    }
    for ap in &sites {
        let i = ((ap.x - min.x) / spec.pitch) as usize;
        let j = ((ap.y - min.y) / spec.pitch) as usize;
        if j < rows && i < cols {
            grid[j][i] = 'A';
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{} — {} ('.' <1 m, 'o' <2 m, 'O' <3 m, '#' ≥3 m, 'A' AP)\n",
        venue.name,
        if spec.nomadic {
            "static + nomadic sites"
        } else {
            "static deployment"
        }
    ));
    for row in grid.iter().rev() {
        out.push_str("  ");
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "mean predicted error {:.2} m | predicted SLV {:.3} m² | blind points (≥3 m): {}\n",
        map.mean_predicted_error(),
        map.predicted_slv(),
        map.blind_spots(3.0).len()
    ));
    out
}

/// Builds the `LocalizationServer` a `serve` invocation (either mode)
/// localizes with.
fn serve_server(spec: &ServeSpec, venue: &Venue) -> LocalizationServer {
    let mut server = LocalizationServer::new(venue.plan.boundary().clone());
    if spec.workers > 0 {
        server = server.with_workers(spec.workers);
    }
    server
}

/// Serves a synthetic batch of localization requests (one per venue test
/// site, round-robin) through `LocalizationServer::process_batch` and
/// renders the outcome plus the pipeline-stats snapshot.
pub fn run_serve(spec: &ServeSpec) -> String {
    let venue = spec.venue.venue();
    let server = serve_server(spec, &venue);
    let aps = venue.static_deployment();
    let (truths, batch) = synthetic_workload(&venue, spec.requests, spec.packets, spec.seed);

    let start = std::time::Instant::now();
    let results = server.process_batch(&batch);
    let elapsed = start.elapsed();

    let mut errors: Vec<f64> = Vec::new();
    let mut failures = 0usize;
    for (result, &truth) in results.iter().zip(&truths) {
        match result {
            Ok(est) => errors.push(est.position.distance(truth)),
            Err(_) => failures += 1,
        }
    }
    errors.sort_by(|a, b| a.total_cmp(b));
    let mean = if errors.is_empty() {
        0.0
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    };
    let median = errors.get(errors.len() / 2).copied().unwrap_or(0.0);

    let mut out = String::new();
    out.push_str(&format!(
        "serve: {} — {} requests × {} APs × {} packets (seed {})\n",
        venue.name,
        spec.requests,
        aps.len(),
        spec.packets,
        spec.seed
    ));
    let per_req_ms = if spec.requests > 0 {
        elapsed.as_secs_f64() * 1e3 / spec.requests as f64
    } else {
        0.0
    };
    out.push_str(&format!(
        "batch took {:.1} ms ({:.2} ms/request) | mean error {:.2} m | median {:.2} m | failures {}\n",
        elapsed.as_secs_f64() * 1e3,
        per_req_ms,
        mean,
        median,
        failures
    ));
    let snapshot = server.stats_snapshot();
    out.push_str(&format!(
        "warm-started center LPs: {} (phase-1 pivots saved: {})\n\n",
        snapshot.counters.warm_start_hits, snapshot.counters.phase1_pivots_saved
    ));
    out.push_str(&snapshot.to_string());
    out
}

/// Spawns the `nomloc-net` daemon per a `serve --listen` spec.
///
/// # Errors
///
/// Returns a user-facing message if the listen address is missing,
/// malformed, or cannot be bound.
pub fn start_daemon(spec: &ServeSpec) -> Result<nomloc_net::DaemonHandle, String> {
    let addr = spec
        .listen
        .as_deref()
        .ok_or("serve: daemon mode needs --listen ADDR")?;
    let venue = spec.venue.venue();
    let server = serve_server(spec, &venue);
    let config = nomloc_net::DaemonConfig {
        acceptors: spec.acceptors,
        batchers: spec.batchers,
        max_batch: spec.max_batch,
        max_wait: std::time::Duration::from_micros(spec.max_wait_us),
        queue_capacity: spec.queue_cap,
        queue_shards: spec.queue_shards,
        socket_backend: spec.socket_backend,
        event_loops: spec.event_loops,
        venue_budget_bytes: spec.venue_budget,
        ..nomloc_net::DaemonConfig::default()
    };
    let handle = nomloc_net::spawn(server, config, addr)
        .map_err(|e| format!("serve: cannot listen on `{addr}`: {e}"))?;
    // Pre-onboard the fleet in-process (same registry path the admin
    // plane takes, minus the socket) so the daemon is live-venue-complete
    // before the first client connects.
    for id in 1..=spec.venues as u64 {
        handle
            .registry()
            .onboard(WireVenue::from_venue(id, &fleet_venue(id)))
            .map_err(|e| format!("serve: cannot onboard venue {id}: {e}"))?;
    }
    Ok(handle)
}

/// Runs the load generator: spawns a loopback daemon when `--connect` is
/// absent, drives it with the synthetic workload, and renders throughput,
/// latency quantiles, and (loopback only) the server's drain-time health.
///
/// # Errors
///
/// Returns a user-facing message on bind/connect/protocol failures.
pub fn run_loadgen(spec: &LoadgenSpec) -> Result<String, String> {
    let venue = spec.venue.venue();
    let (_, batch) = synthetic_workload(&venue, spec.requests, spec.packets, spec.seed);

    // Loopback mode: host the daemon ourselves on an ephemeral port.
    let loopback = if spec.connect.is_none() {
        let serve_spec = ServeSpec {
            venue: spec.venue,
            workers: spec.workers,
            listen: Some("127.0.0.1:0".to_string()),
            socket_backend: spec.socket_backend,
            ..ServeSpec::default()
        };
        Some(start_daemon(&serve_spec)?)
    } else {
        None
    };
    let addr = match (&loopback, spec.connect.as_deref()) {
        (Some(handle), _) => handle.local_addr(),
        (None, Some(addr)) => addr
            .parse()
            .map_err(|e| format!("loadgen: bad --connect address `{addr}`: {e}"))?,
        (None, None) => unreachable!("loopback covers the None connect case"),
    };

    // Multi-venue runs onboard the fleet over the wire-v3 admin plane —
    // the same frames a remote operator would send — then spread traffic
    // zipf-over-venues across the resident venue plus the fleet.
    for id in 1..=spec.venues as u64 {
        nomloc_net::admin::onboard(addr, &WireVenue::from_venue(id, &fleet_venue(id)))
            .map_err(|e| format!("loadgen: onboarding venue {id}: {e}"))?;
    }

    let config = nomloc_net::LoadgenConfig {
        connections: spec.connections,
        deadline_us: spec.deadline_us,
        idle_connections: spec.idle_connections,
        venues: if spec.venues > 0 {
            (0..=spec.venues as u64).collect()
        } else {
            Vec::new()
        },
        zipf_s: spec.zipf,
        zipf_seed: spec.seed,
        sessions: spec.sessions,
        concurrency: spec.concurrency,
        ..nomloc_net::LoadgenConfig::default()
    };
    let report =
        nomloc_net::loadgen::run(addr, &config, &batch).map_err(|e| format!("loadgen: {e}"))?;

    let mut out = format!(
        "loadgen: {} — {} connections × {} requests ({} packets/AP, seed {})\n",
        venue.name, config.connections, spec.requests, spec.packets, spec.seed
    );
    if spec.venues > 0 {
        out.push_str(&format!(
            "venues: zipf(s={}) over {} live venues (resident + {} fleet)\n",
            spec.zipf,
            spec.venues + 1,
            spec.venues
        ));
    }
    out.push_str(&report.render());
    if let Some(handle) = loopback {
        if spec.venues > 0 {
            // The batcher shards by venue, so under zipf traffic every
            // micro-batch must still be venue-homogeneous.
            let counters = handle.stats_snapshot().counters;
            out.push_str(&format!(
                "venue batching: {} homogeneous micro-batches, {} mixed\n",
                counters.batches_homogeneous, counters.batches_mixed
            ));
        }
        let health = handle.shutdown();
        out.push('\n');
        out.push_str(&health.to_string());
        if spec.payload_reuse {
            let lookups = health.pool_hits + health.pool_misses;
            let hit_rate = if lookups == 0 {
                0.0
            } else {
                100.0 * health.pool_hits as f64 / lookups as f64
            };
            out.push_str(&format!(
                "payload reuse: {} bytes encoded, {} bytes into pooled buffers \
                 ({} hits / {} misses, hit-rate {hit_rate:.1}%)\n",
                health.reply_bytes_encoded,
                health.reply_bytes_pooled,
                health.pool_hits,
                health.pool_misses,
            ));
        }
    } else if spec.payload_reuse {
        out.push_str(
            "payload reuse: counters are daemon-local (never serialized on the \
             wire); read them from the remote daemon's own stats output\n",
        );
    }
    Ok(out)
}

/// Builds the `LocalizationServer` a `chaos` invocation uses — one for
/// the in-process baseline and an identical one inside the daemon, so
/// bit-identity between the two is meaningful.
fn chaos_server(spec: &ChaosSpec, venue: &Venue) -> LocalizationServer {
    let mut server = LocalizationServer::new(venue.plan.boundary().clone());
    if spec.workers > 0 {
        server = server.with_workers(spec.workers);
    }
    server
}

/// Runs a chaos campaign: spawns a loopback daemon carrying the fault
/// plan, replays the synthetic workload through client-side fault
/// injection, and verifies every reply against the per-fault-class
/// contract (non-faulted ⇒ bit-identical to an in-process fault-free
/// run; faulted ⇒ the typed error or degraded tier its class demands).
///
/// # Errors
///
/// Returns a user-facing message on bind/transport failures or — the
/// point of the exercise — on any contract violation.
pub fn run_chaos(spec: &ChaosSpec) -> Result<String, String> {
    let venue = spec.venue.venue();
    let (_, batch) = synthetic_workload(&venue, spec.requests, spec.packets, spec.seed);
    let plan = FaultPlan::uniform(spec.seed, spec.rate);
    plan.validate().map_err(|e| format!("chaos: {e}"))?;

    let baseline_server = chaos_server(spec, &venue);
    let baseline: Vec<Result<WireEstimate, ErrorReply>> = batch
        .iter()
        .map(|reports| match baseline_server.process(reports) {
            Ok(est) => Ok(WireEstimate::from_core(&est)),
            Err(e) => Err(ErrorReply {
                code: nomloc_net::ErrorCode::from_estimate_error(&e),
                message: e.to_string(),
            }),
        })
        .collect();

    let config = nomloc_net::DaemonConfig {
        fault_plan: Some(plan),
        kill_batcher_every: spec.kill_every as u64,
        socket_backend: spec.socket_backend,
        ..nomloc_net::DaemonConfig::default()
    };
    let handle = nomloc_net::spawn(chaos_server(spec, &venue), config, "127.0.0.1:0")
        .map_err(|e| format!("chaos: cannot bind loopback daemon: {e}"))?;
    let mut chaos_config = nomloc_net::ChaosConfig::new(plan);
    chaos_config.sessions = spec.sessions;
    if spec.sessions > 0 {
        // Hand the driver the daemon's live table so the plan's
        // stale-session fault can force-expire server-side state.
        chaos_config.session_table = Some(handle.sessions());
    }
    let report = nomloc_net::chaos::run(handle.local_addr(), &chaos_config, &batch)
        .map_err(|e| format!("chaos: {e}"))?;
    let health = handle.shutdown();

    match report.verify(&chaos_config, &baseline) {
        Ok(summary) => {
            let mut out = format!(
                "chaos: {} — {} requests (seed {}, per-class rate {}, ≈{:.0} % faulted)\n",
                venue.name,
                spec.requests,
                spec.seed,
                spec.rate,
                100.0 * plan.total_rate()
            );
            out.push_str(&summary.render());
            out.push_str(&format!(
                "  transport: {} reconnects | {} corrupt frames rejected by the server\n",
                report.reconnects, report.rejections_observed
            ));
            if spec.sessions > 0 {
                out.push_str(&format!(
                    "  sessions: {} interleaved, replay-verified | {} stale-session expiries\n",
                    spec.sessions, report.stale_expiries
                ));
            }
            out.push('\n');
            out.push_str(&health.to_string());
            Ok(out)
        }
        Err(violations) => {
            let shown: Vec<&str> = violations.iter().take(5).map(String::as_str).collect();
            Err(format!(
                "chaos: contract violated on {} request(s):\n  {}",
                violations.len(),
                shown.join("\n  ")
            ))
        }
    }
}

/// Runs a `venue` admin operation against a live daemon and renders the
/// registry listing every admin response carries.
///
/// # Errors
///
/// Returns a user-facing message on connect/protocol failures or when the
/// daemon rejects the operation (unknown venue, reserved id, bad geometry).
pub fn run_venue_admin(spec: &VenueAdminSpec) -> Result<String, String> {
    let addr = spec.connect.as_str();
    let listing = match spec.action {
        VenueAction::List => nomloc_net::admin::list(addr),
        VenueAction::Retire => nomloc_net::admin::retire(addr, spec.id),
        VenueAction::Onboard => {
            let venue = match spec.venue {
                Some(name) => name.venue(),
                None => fleet_venue(spec.id),
            };
            nomloc_net::admin::onboard(addr, &WireVenue::from_venue(spec.id, &venue))
        }
    }
    .map_err(|e| format!("venue: `{addr}`: {e}"))?;

    let mut out = format!("{:>8}  {:<12} {:>10}  state\n", "venue", "name", "requests");
    for v in &listing {
        out.push_str(&format!(
            "{:>8}  {:<12} {:>10}  {}\n",
            v.venue_id,
            v.name,
            v.requests,
            if v.resident { "resident" } else { "evicted" },
        ));
    }
    Ok(out)
}

/// Renders the venue listing.
pub fn run_venues() -> String {
    let mut out = String::new();
    for venue in [Venue::lab(), Venue::lobby(), Venue::mall()] {
        let (min, max) = venue.plan.boundary().bounding_box();
        out.push_str(&format!(
            "{:<6} {:>5.1} × {:<5.1} m  area {:>6.1} m²  APs {}  nomadic sites {}  test sites {:>2}  obstacles {}\n",
            venue.name,
            max.x - min.x,
            max.y - min.y,
            venue.plan.boundary().area(),
            venue.static_deployment().len(),
            venue.nomadic_sites.len(),
            venue.test_sites.len(),
            venue.plan.obstacles().len(),
        ));
    }
    out
}

/// Checks a point is inside a venue (helper reused by integration tests).
pub fn inside(venue: &Venue, p: Point) -> bool {
    venue.plan.boundary().contains(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn help_variants() {
        assert_eq!(parse(&args("")).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("--help")).unwrap(), Command::Help);
        assert_eq!(parse(&args("-h")).unwrap(), Command::Help);
    }

    #[test]
    fn unknown_command_rejected() {
        let e = parse(&args("frobnicate")).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn campaign_defaults() {
        let cmd = parse(&args("campaign")).unwrap();
        assert_eq!(cmd, Command::Campaign(CampaignSpec::default()));
    }

    #[test]
    fn campaign_full_flags() {
        let cmd = parse(&args(
            "campaign --venue lobby --deployment fleet:3 --packets 10 --trials 2 \
             --er 1.5 --seed 7 --center centroid --window hann --antennas 3 --carrier",
        ))
        .unwrap();
        let Command::Campaign(spec) = cmd else {
            panic!("not a campaign")
        };
        assert_eq!(spec.venue, VenueName::Lobby);
        assert_eq!(spec.deployment, DeploymentSpec::Fleet { nomads: 3 });
        assert_eq!(spec.packets, 10);
        assert_eq!(spec.trials, 2);
        assert_eq!(spec.er, 1.5);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.center, CenterMethod::Centroid);
        assert_eq!(spec.window, Window::Hann);
        assert_eq!(spec.antennas, 3);
        assert!(spec.carrier);
    }

    #[test]
    fn deployment_forms() {
        assert_eq!(parse_deployment("static").unwrap(), DeploymentSpec::Static);
        assert_eq!(
            parse_deployment("nomadic").unwrap(),
            DeploymentSpec::Nomadic { steps: 8 }
        );
        assert_eq!(
            parse_deployment("nomadic:3").unwrap(),
            DeploymentSpec::Nomadic { steps: 3 }
        );
        assert_eq!(
            parse_deployment("fleet:2").unwrap(),
            DeploymentSpec::Fleet { nomads: 2 }
        );
        assert!(parse_deployment("wandering").is_err());
        assert!(parse_deployment("nomadic:x").is_err());
    }

    #[test]
    fn bad_values_are_rejected_with_messages() {
        assert!(parse(&args("campaign --packets ten")).is_err());
        assert!(parse(&args("campaign --er -1")).is_err());
        assert!(parse(&args("campaign --venue attic")).is_err());
        assert!(parse(&args("campaign --center middle")).is_err());
        assert!(parse(&args("campaign --window kaiser")).is_err());
        assert!(parse(&args("campaign --packets")).is_err(), "missing value");
        assert!(parse(&args("campaign --bogus 1")).is_err());
    }

    #[test]
    fn map_flags() {
        let cmd = parse(&args("map --venue lobby --nomadic --pitch 1.0")).unwrap();
        assert_eq!(
            cmd,
            Command::Map(MapSpec {
                venue: VenueName::Lobby,
                nomadic: true,
                pitch: 1.0,
            })
        );
        assert!(parse(&args("map --pitch 0")).is_err());
        assert!(parse(&args("map --bogus")).is_err());
    }

    #[test]
    fn venues_listing_mentions_all_three() {
        let out = run_venues();
        assert!(out.contains("Lab"));
        assert!(out.contains("Lobby"));
        assert!(out.contains("Mall"));
    }

    #[test]
    fn mall_venue_parses() {
        assert_eq!(parse_venue("mall").unwrap(), VenueName::Mall);
    }

    #[test]
    fn run_map_renders_grid() {
        let out = run_map(&MapSpec {
            venue: VenueName::Lab,
            nomadic: true,
            pitch: 1.0,
        });
        assert!(out.contains('A'), "AP markers missing");
        assert!(out.contains("predicted SLV"));
    }

    #[test]
    fn serve_flags() {
        let cmd = parse(&args(
            "serve --venue lobby --requests 12 --packets 5 --workers 2 --seed 9",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeSpec {
                venue: VenueName::Lobby,
                requests: 12,
                packets: 5,
                workers: 2,
                seed: 9,
                ..ServeSpec::default()
            })
        );
        assert_eq!(
            parse(&args("serve")).unwrap(),
            Command::Serve(ServeSpec::default())
        );
        assert!(parse(&args("serve --bogus 1")).is_err());
        assert!(parse(&args("serve --requests many")).is_err());
    }

    #[test]
    fn serve_daemon_flags() {
        let cmd = parse(&args(
            "serve --listen 127.0.0.1:4455 --max-batch 8 --max-wait-us 250 \
             --queue-cap 64 --queue-shards 4 --acceptors 1 --batchers 3 \
             --max-requests 500",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeSpec {
                listen: Some("127.0.0.1:4455".to_string()),
                max_batch: 8,
                max_wait_us: 250,
                queue_cap: 64,
                queue_shards: 4,
                acceptors: 1,
                batchers: 3,
                max_requests: 500,
                ..ServeSpec::default()
            })
        );
        // Zero is nonsense for sizing knobs and rejected at parse time.
        assert!(parse(&args("serve --max-batch 0")).is_err());
        assert!(parse(&args("serve --queue-cap 0")).is_err());
        assert!(parse(&args("serve --queue-shards 0")).is_err());
        assert!(parse(&args("serve --acceptors 0")).is_err());
        assert!(parse(&args("serve --batchers 0")).is_err());
        assert!(parse(&args("serve --event-loops 0")).is_err());
    }

    #[test]
    fn serve_venue_flags() {
        let cmd = parse(&args(
            "serve --listen 127.0.0.1:0 --venues 8 --venue-budget 1048576",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve(ServeSpec {
                listen: Some("127.0.0.1:0".to_string()),
                venues: 8,
                venue_budget: 1_048_576,
                ..ServeSpec::default()
            })
        );
    }

    #[test]
    fn venue_admin_flags() {
        let cmd = parse(&args("venue list --connect 127.0.0.1:4455")).unwrap();
        assert_eq!(
            cmd,
            Command::VenueAdmin(VenueAdminSpec {
                action: VenueAction::List,
                connect: "127.0.0.1:4455".to_string(),
                id: 0,
                venue: None,
            })
        );
        let cmd = parse(&args(
            "venue onboard --connect 127.0.0.1:4455 --id 3 --venue lobby",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::VenueAdmin(VenueAdminSpec {
                action: VenueAction::Onboard,
                connect: "127.0.0.1:4455".to_string(),
                id: 3,
                venue: Some(VenueName::Lobby),
            })
        );
        let cmd = parse(&args("venue retire --connect 127.0.0.1:4455 --id 3")).unwrap();
        assert_eq!(
            cmd,
            Command::VenueAdmin(VenueAdminSpec {
                action: VenueAction::Retire,
                connect: "127.0.0.1:4455".to_string(),
                id: 3,
                venue: None,
            })
        );
        // Action, --connect, and a nonzero --id (for onboard/retire) are
        // all mandatory; venue 0 is reserved for the resident venue.
        assert!(parse(&args("venue")).is_err());
        assert!(parse(&args("venue evict --connect 127.0.0.1:1")).is_err());
        assert!(parse(&args("venue list")).is_err());
        assert!(parse(&args("venue onboard --connect 127.0.0.1:1")).is_err());
        assert!(parse(&args("venue retire --connect 127.0.0.1:1 --id 0")).is_err());
        assert!(parse(&args("venue list --connect 127.0.0.1:1 --bogus")).is_err());
    }

    #[test]
    fn socket_backend_flag() {
        use nomloc_net::SocketBackend;
        for (value, want) in [
            ("threaded", SocketBackend::Threaded),
            ("event-loop", SocketBackend::EventLoop),
            ("event_loop", SocketBackend::EventLoop),
        ] {
            let cmd = parse(&args(&format!("serve --socket-backend {value}"))).unwrap();
            let Command::Serve(spec) = cmd else {
                panic!("not serve")
            };
            assert_eq!(spec.socket_backend, want, "value `{value}`");
        }
        let cmd = parse(&args("serve --socket-backend event-loop --event-loops 4")).unwrap();
        let Command::Serve(spec) = cmd else {
            panic!("not serve")
        };
        assert_eq!(spec.event_loops, 4);
        // All three daemon-spawning subcommands accept the flag.
        assert!(parse(&args("loadgen --socket-backend threaded")).is_ok());
        assert!(parse(&args("chaos --socket-backend threaded")).is_ok());
        // Unknown backends are rejected with the valid values listed.
        let e = parse(&args("serve --socket-backend fibers")).unwrap_err();
        assert!(e.to_string().contains("event-loop"), "unhelpful: {e}");
        assert!(parse(&args("loadgen --socket-backend fibers")).is_err());
        assert!(parse(&args("chaos --socket-backend fibers")).is_err());
    }

    #[test]
    fn loadgen_flags() {
        let cmd = parse(&args(
            "loadgen --connect 10.0.0.7:4455 --venue mall --connections 8 \
             --requests 2000 --packets 2 --seed 7 --deadline-us 1500 --workers 3 \
             --payload-reuse --socket-backend threaded --idle-connections 5000 \
             --venues 100 --zipf 1.2 --sessions --concurrency 6",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Loadgen(LoadgenSpec {
                venue: VenueName::Mall,
                connect: Some("10.0.0.7:4455".to_string()),
                connections: 8,
                requests: 2000,
                packets: 2,
                seed: 7,
                deadline_us: 1500,
                workers: 3,
                payload_reuse: true,
                socket_backend: nomloc_net::SocketBackend::Threaded,
                idle_connections: 5000,
                venues: 100,
                zipf: 1.2,
                sessions: true,
                concurrency: 6,
            })
        );
        assert_eq!(
            parse(&args("loadgen")).unwrap(),
            Command::Loadgen(LoadgenSpec::default())
        );
        assert!(parse(&args("loadgen --connections 0")).is_err());
        assert!(parse(&args("loadgen --bogus 1")).is_err());
    }

    #[test]
    fn chaos_flags() {
        let cmd = parse(&args(
            "chaos --venue lobby --requests 80 --packets 2 --seed 7 --rate 0.05 \
             --kill-every 6 --workers 2 --sessions 3",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Chaos(ChaosSpec {
                venue: VenueName::Lobby,
                requests: 80,
                packets: 2,
                seed: 7,
                rate: 0.05,
                workers: 2,
                kill_every: 6,
                socket_backend: nomloc_net::SocketBackend::default(),
                sessions: 3,
            })
        );
        assert_eq!(
            parse(&args("chaos")).unwrap(),
            Command::Chaos(ChaosSpec::default())
        );
        // A per-class rate above 1/8 would push the total past 1.
        assert!(parse(&args("chaos --rate 0.2")).is_err());
        assert!(parse(&args("chaos --bogus 1")).is_err());
    }

    #[test]
    fn run_chaos_smoke_verifies_the_contract() {
        let out = run_chaos(&ChaosSpec {
            requests: 40,
            packets: 2,
            seed: 7,
            workers: 2,
            kill_every: 5,
            ..ChaosSpec::default()
        })
        .expect("chaos contract holds");
        assert!(out.contains("40 requests"), "missing totals:\n{out}");
        assert!(
            out.contains("bit-identical"),
            "missing verification:\n{out}"
        );
        assert!(out.contains("batchers respawned"), "missing health:\n{out}");
        // kill-every 5 over 40 requests guarantees observable respawns.
        assert!(
            !out.contains("batchers respawned    0"),
            "watchdog never fired:\n{out}"
        );
    }

    #[test]
    fn start_daemon_requires_listen() {
        let msg = start_daemon(&ServeSpec::default()).map(|_| ()).unwrap_err();
        assert!(msg.contains("--listen"), "unexpected message: {msg}");
        let msg = start_daemon(&ServeSpec {
            listen: Some("not-an-address".to_string()),
            ..ServeSpec::default()
        })
        .map(|_| ())
        .unwrap_err();
        assert!(msg.contains("not-an-address"), "unexpected message: {msg}");
    }

    #[test]
    fn run_loadgen_loopback_smoke() {
        let out = run_loadgen(&LoadgenSpec {
            requests: 12,
            packets: 2,
            connections: 2,
            workers: 2,
            payload_reuse: true,
            ..LoadgenSpec::default()
        })
        .unwrap();
        assert!(out.contains("12 requests"), "missing totals:\n{out}");
        assert!(out.contains("latency p50"), "missing quantiles:\n{out}");
        assert!(out.contains("ok 12"), "requests failed:\n{out}");
        // The loopback daemon's drain-time health summary rides along.
        assert!(out.contains("nomloc-net health"), "missing health:\n{out}");
        // --payload-reuse reports the buffer-pool counters from the same
        // drain-time health (daemon-local; never on the wire).
        assert!(
            out.contains("payload reuse:") && out.contains("hit-rate"),
            "missing payload-reuse report:\n{out}"
        );
    }

    #[test]
    fn run_loadgen_multi_venue_smoke() {
        let out = run_loadgen(&LoadgenSpec {
            requests: 24,
            packets: 2,
            connections: 2,
            workers: 2,
            venues: 3,
            ..LoadgenSpec::default()
        })
        .unwrap();
        assert!(out.contains("24 requests"), "missing totals:\n{out}");
        assert!(
            out.contains("zipf(s=1) over 4 live venues"),
            "missing venue header:\n{out}"
        );
        // The venue-sharded batcher must never mix venues in a batch.
        assert!(out.contains(", 0 mixed"), "mixed batches:\n{out}");
        // Drain-time health carries one per-venue line per live venue.
        assert_eq!(
            out.matches("    venue ").count(),
            4,
            "missing per-venue health:\n{out}"
        );
    }

    #[test]
    fn run_loadgen_closed_loop_smoke() {
        let out = run_loadgen(&LoadgenSpec {
            requests: 16,
            packets: 2,
            workers: 2,
            venues: 3,
            concurrency: 4,
            ..LoadgenSpec::default()
        })
        .unwrap();
        assert!(
            out.contains("closed-loop: 4 workers"),
            "missing closed-loop report line:\n{out}"
        );
        assert!(out.contains(", 0 mixed"), "mixed batches:\n{out}");
    }

    #[test]
    fn run_venue_admin_round_trip() {
        let handle = start_daemon(&ServeSpec {
            listen: Some("127.0.0.1:0".to_string()),
            workers: 2,
            ..ServeSpec::default()
        })
        .expect("loopback daemon");
        let connect = handle.local_addr().to_string();
        let admin = |argv: String| {
            let Command::VenueAdmin(spec) = parse(&args(&argv)).expect("parses") else {
                panic!("not a venue command")
            };
            run_venue_admin(&spec)
        };

        let out = admin(format!("venue onboard --connect {connect} --id 2")).unwrap();
        assert!(out.contains("resident"), "venue not live:\n{out}");
        let out = admin(format!(
            "venue onboard --connect {connect} --id 3 --venue mall"
        ))
        .unwrap();
        assert!(out.contains("Mall"), "explicit venue ignored:\n{out}");
        let out = admin(format!("venue retire --connect {connect} --id 2")).unwrap();
        assert!(!out.contains(" 2  "), "retired venue still listed:\n{out}");
        // The daemon rejects bad operations with a typed error that the
        // client surfaces as a message, not a panic.
        let msg = admin(format!("venue retire --connect {connect} --id 99")).unwrap_err();
        assert!(msg.contains("99"), "unhelpful error: {msg}");
        handle.shutdown();
    }

    #[test]
    fn run_loadgen_payload_reuse_needs_loopback() {
        // With --connect the counters can't be read over the wire (they
        // are daemon-local by design), so the report is an honest pointer
        // instead of a table of zeros. The connect itself must fail fast
        // against a port nothing listens on, so only the parse/compose
        // path is exercised here.
        let spec = LoadgenSpec {
            connect: Some("bad address".to_string()),
            payload_reuse: true,
            ..LoadgenSpec::default()
        };
        let msg = run_loadgen(&spec).unwrap_err();
        assert!(msg.contains("bad address"), "unexpected message: {msg}");
    }

    #[test]
    fn run_serve_smoke() {
        let out = run_serve(&ServeSpec {
            venue: VenueName::Lab,
            requests: 6,
            packets: 5,
            workers: 2,
            seed: 3,
            ..ServeSpec::default()
        });
        assert!(out.contains("6 requests"));
        assert!(out.contains("pipeline stats"));
        assert!(out.contains("simplex iterations"));
        assert!(out.contains("warm-started center LPs"));
        assert!(out.contains("warm-start hits"));
        assert!(out.contains("failures 0"), "unexpected failures:\n{out}");
    }

    #[test]
    fn run_serve_is_deterministic_across_worker_counts() {
        let serial = run_serve(&ServeSpec {
            workers: 1,
            requests: 5,
            packets: 4,
            ..ServeSpec::default()
        });
        let parallel = run_serve(&ServeSpec {
            workers: 4,
            requests: 5,
            packets: 4,
            ..ServeSpec::default()
        });
        // Error figures (lines with "mean error") must match exactly;
        // timing lines differ, so compare the error metrics only.
        let metric = |s: &str| {
            s.lines()
                .find(|l| l.contains("mean error"))
                .map(|l| l.split('|').skip(1).take(3).collect::<Vec<_>>().join("|"))
                .unwrap()
        };
        assert_eq!(metric(&serial), metric(&parallel));
    }

    #[test]
    fn run_campaign_smoke() {
        let spec = CampaignSpec {
            packets: 8,
            trials: 1,
            ..CampaignSpec::default()
        };
        let out = run_campaign(&spec);
        assert!(out.contains("mean error"));
        assert!(out.contains("SLV"));
        // One row per Lab test site.
        assert_eq!(
            out.lines()
                .filter(|l| l.trim_start().starts_with(char::is_numeric))
                .count(),
            10
        );
    }
}
