//! End-to-end tests of the `nomloc` binary via `CARGO_BIN_EXE`.

use std::process::Command;

fn nomloc(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_nomloc"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = nomloc(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("campaign"));
    assert!(text.contains("map"));
}

#[test]
fn no_args_means_help() {
    let out = nomloc(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn venues_lists_both() {
    let out = nomloc(&["venues"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Lab"));
    assert!(text.contains("Lobby"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = nomloc(&["explode"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("explode"));
    assert!(err.contains("nomloc help"));
}

#[test]
fn bad_flag_value_fails_cleanly() {
    let out = nomloc(&["campaign", "--packets", "many"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--packets"));
}

#[test]
fn map_renders() {
    let out = nomloc(&["map", "--venue", "lab", "--pitch", "1.0"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted SLV"));
    assert!(text.contains('A'), "AP markers");
}

#[test]
fn tiny_campaign_runs() {
    let out = nomloc(&[
        "campaign",
        "--venue",
        "lab",
        "--packets",
        "5",
        "--trials",
        "1",
        "--deployment",
        "static",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mean error"));
    assert!(text.contains("SLV"));
}
