//! Markov-chain mobility models for nomadic access points.
//!
//! The NomLoc evaluation (§V-A) characterizes nomadic-AP motion as a
//! *random walk built on a Markov chain*: the AP moves among several
//! discrete sites with preset transition probabilities, reporting CSI
//! measurements (and its own coordinates) from each site it visits. The
//! paper also injects artificial random error into the reported
//! coordinates to study robustness (Fig. 10). This crate implements both:
//!
//! * [`MarkovChain`] — a validated transition matrix over named sites, with
//!   simulation and stationary-distribution queries.
//! * [`patterns`] — transition-matrix families (uniform, stay-biased,
//!   sweep, clustered) for the moving-pattern ablation the paper lists as
//!   future work.
//! * [`PositionError`] — the error-range (ER) model that perturbs reported
//!   nomadic-AP coordinates.
//!
//! # Example
//!
//! ```
//! use nomloc_geometry::Point;
//! use nomloc_mobility::{patterns, MarkovChain};
//! use rand::SeedableRng;
//!
//! let sites = vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(5.0, 0.0),
//!     Point::new(5.0, 5.0),
//! ];
//! let chain = MarkovChain::new(sites, patterns::uniform(3))?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let walk = chain.walk(0, 10, &mut rng);
//! assert_eq!(walk.len(), 11); // start site + 10 steps
//! # Ok::<(), nomloc_mobility::MobilityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod patterns;

use nomloc_geometry::Point;
use rand::Rng;
use std::fmt;

/// Errors constructing mobility models.
#[derive(Debug, Clone, PartialEq)]
pub enum MobilityError {
    /// The chain has no sites.
    NoSites,
    /// The transition matrix shape does not match the site count.
    ShapeMismatch,
    /// A row of the transition matrix does not sum to one, or contains a
    /// negative/non-finite entry. Carries the offending row index.
    InvalidRow(usize),
}

impl fmt::Display for MobilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobilityError::NoSites => write!(f, "mobility model needs at least one site"),
            MobilityError::ShapeMismatch => {
                write!(f, "transition matrix shape does not match site count")
            }
            MobilityError::InvalidRow(i) => {
                write!(
                    f,
                    "transition matrix row {i} is not a probability distribution"
                )
            }
        }
    }
}

impl std::error::Error for MobilityError {}

/// A discrete-site Markov chain describing a nomadic AP's movement.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    sites: Vec<Point>,
    /// Row-stochastic transition matrix, `transition[i][j] = P(i → j)`.
    transition: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Creates a chain over `sites` with the given row-stochastic
    /// `transition` matrix.
    ///
    /// # Errors
    ///
    /// Rejects empty site lists, shape mismatches, and rows that are not
    /// probability distributions (within `1e-9`).
    pub fn new(sites: Vec<Point>, transition: Vec<Vec<f64>>) -> Result<Self, MobilityError> {
        if sites.is_empty() {
            return Err(MobilityError::NoSites);
        }
        if transition.len() != sites.len() {
            return Err(MobilityError::ShapeMismatch);
        }
        for (i, row) in transition.iter().enumerate() {
            if row.len() != sites.len() {
                return Err(MobilityError::ShapeMismatch);
            }
            let mut sum = 0.0;
            for &p in row {
                if !p.is_finite() || p < 0.0 {
                    return Err(MobilityError::InvalidRow(i));
                }
                sum += p;
            }
            if (sum - 1.0).abs() > 1e-9 {
                return Err(MobilityError::InvalidRow(i));
            }
        }
        Ok(MarkovChain { sites, transition })
    }

    /// The measurement sites.
    pub fn sites(&self) -> &[Point] {
        &self.sites
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` when the chain has no sites (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Transition probability from site `i` to site `j`.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn probability(&self, i: usize, j: usize) -> f64 {
        self.transition[i][j]
    }

    /// Samples the successor of site `state`.
    ///
    /// # Panics
    ///
    /// Panics when `state` is out of range.
    pub fn step<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> usize {
        let row = &self.transition[state];
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (j, &p) in row.iter().enumerate() {
            acc += p;
            if u < acc {
                return j;
            }
        }
        // Floating-point slack: fall back to the last non-zero entry.
        row.iter().rposition(|&p| p > 0.0).unwrap_or(state)
    }

    /// Generates a walk of `steps` transitions starting at `start`,
    /// returning the visited site indices (length `steps + 1`).
    ///
    /// # Panics
    ///
    /// Panics when `start` is out of range.
    pub fn walk<R: Rng + ?Sized>(&self, start: usize, steps: usize, rng: &mut R) -> Vec<usize> {
        assert!(start < self.len(), "start site out of range");
        let mut path = Vec::with_capacity(steps + 1);
        let mut state = start;
        path.push(state);
        for _ in 0..steps {
            state = self.step(state, rng);
            path.push(state);
        }
        path
    }

    /// The positions visited along a walk.
    pub fn walk_positions<R: Rng + ?Sized>(
        &self,
        start: usize,
        steps: usize,
        rng: &mut R,
    ) -> Vec<Point> {
        self.walk(start, steps, rng)
            .into_iter()
            .map(|i| self.sites[i])
            .collect()
    }

    /// Stationary distribution by power iteration.
    ///
    /// Converges for irreducible aperiodic chains; returns the iterate
    /// after `iters` steps regardless, so callers can inspect slowly-mixing
    /// chains too.
    pub fn stationary(&self, iters: usize) -> Vec<f64> {
        let n = self.len();
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..iters {
            let mut next = vec![0.0; n];
            for (p, row) in pi.iter().zip(&self.transition) {
                for (nx, &t) in next.iter_mut().zip(row) {
                    *nx += p * t;
                }
            }
            pi = next;
        }
        pi
    }

    /// Expected fraction of distinct sites visited in a walk of `steps`
    /// transitions from `start`, estimated over `trials` simulations.
    ///
    /// The paper observes that "the further the nomadic AP moves, the more
    /// CSI measurements will be collected … resulting in finer granularity
    /// segmentation"; this estimates how quickly a pattern covers its sites.
    pub fn coverage<R: Rng + ?Sized>(
        &self,
        start: usize,
        steps: usize,
        trials: usize,
        rng: &mut R,
    ) -> f64 {
        let n = self.len();
        let mut total = 0.0;
        for _ in 0..trials {
            let mut seen = vec![false; n];
            for i in self.walk(start, steps, rng) {
                seen[i] = true;
            }
            total += seen.iter().filter(|&&s| s).count() as f64 / n as f64;
        }
        total / trials.max(1) as f64
    }
}

/// The paper's error-range (ER) model for nomadic-AP coordinates.
///
/// "We intentionally add random errors to the position information of the
/// nomadic AP with error range (ER) from 0 to 3 m" (§V-E). Each reported
/// coordinate is displaced by a vector drawn uniformly from the disc of
/// radius `range`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionError {
    /// Maximum displacement in metres (the paper's ER).
    range: f64,
}

impl PositionError {
    /// Creates an error model with the given range (metres).
    ///
    /// # Panics
    ///
    /// Panics when `range` is negative or non-finite.
    pub fn new(range: f64) -> Self {
        assert!(range >= 0.0 && range.is_finite(), "error range must be ≥ 0");
        PositionError { range }
    }

    /// The exact-reporting model (ER = 0).
    pub fn none() -> Self {
        PositionError { range: 0.0 }
    }

    /// The configured error range.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Perturbs `p` by a uniform-disc displacement.
    pub fn apply<R: Rng + ?Sized>(&self, p: Point, rng: &mut R) -> Point {
        if self.range == 0.0 {
            return p;
        }
        // Uniform over the disc: radius ∝ √u.
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = self.range * rng.gen::<f64>().sqrt();
        Point::new(p.x + r * theta.cos(), p.y + r * theta.sin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sites(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    #[test]
    fn construction_validation() {
        assert_eq!(
            MarkovChain::new(vec![], vec![]),
            Err(MobilityError::NoSites)
        );
        assert_eq!(
            MarkovChain::new(sites(2), vec![vec![1.0, 0.0]]),
            Err(MobilityError::ShapeMismatch)
        );
        assert_eq!(
            MarkovChain::new(sites(2), vec![vec![1.0], vec![1.0]]),
            Err(MobilityError::ShapeMismatch)
        );
        assert_eq!(
            MarkovChain::new(sites(2), vec![vec![0.6, 0.6], vec![0.5, 0.5]]),
            Err(MobilityError::InvalidRow(0))
        );
        assert_eq!(
            MarkovChain::new(sites(2), vec![vec![0.5, 0.5], vec![-0.1, 1.1]]),
            Err(MobilityError::InvalidRow(1))
        );
        assert!(MarkovChain::new(sites(2), vec![vec![0.5, 0.5], vec![0.9, 0.1]]).is_ok());
    }

    #[test]
    fn walk_length_and_start() {
        let chain = MarkovChain::new(sites(3), patterns::uniform(3)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let w = chain.walk(1, 25, &mut rng);
        assert_eq!(w.len(), 26);
        assert_eq!(w[0], 1);
        assert!(w.iter().all(|&i| i < 3));
    }

    #[test]
    fn walk_positions_match_indices() {
        let chain = MarkovChain::new(sites(3), patterns::uniform(3)).unwrap();
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let idx = chain.walk(0, 10, &mut rng1);
        let pos = chain.walk_positions(0, 10, &mut rng2);
        for (i, p) in idx.iter().zip(&pos) {
            assert_eq!(chain.sites()[*i], *p);
        }
    }

    #[test]
    fn deterministic_cycle_walk() {
        // 0 → 1 → 2 → 0 …
        let t = vec![
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![1.0, 0.0, 0.0],
        ];
        let chain = MarkovChain::new(sites(3), t).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(chain.walk(0, 6, &mut rng), vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn absorbing_state_stays() {
        let t = vec![vec![0.0, 1.0], vec![0.0, 1.0]];
        let chain = MarkovChain::new(sites(2), t).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let w = chain.walk(0, 5, &mut rng);
        assert_eq!(w, vec![0, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn stationary_of_uniform_chain_is_uniform() {
        let chain = MarkovChain::new(sites(4), patterns::uniform(4)).unwrap();
        let pi = chain.stationary(100);
        for p in pi {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn stationary_sums_to_one() {
        let chain = MarkovChain::new(sites(3), patterns::stay_biased(3, 0.7)).unwrap();
        let pi = chain.stationary(200);
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn empirical_frequencies_match_transition_row() {
        let t = vec![vec![0.2, 0.8], vec![0.5, 0.5]];
        let chain = MarkovChain::new(sites(2), t).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut to1 = 0;
        for _ in 0..n {
            if chain.step(0, &mut rng) == 1 {
                to1 += 1;
            }
        }
        let freq = to1 as f64 / n as f64;
        assert!((freq - 0.8).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn coverage_increases_with_steps() {
        let chain = MarkovChain::new(sites(5), patterns::uniform(5)).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let short = chain.coverage(0, 1, 200, &mut rng);
        let long = chain.coverage(0, 20, 200, &mut rng);
        assert!(long > short);
        assert!(
            long > 0.9,
            "20 uniform steps over 5 sites covers most: {long}"
        );
    }

    #[test]
    fn position_error_zero_is_identity() {
        let e = PositionError::none();
        let mut rng = StdRng::seed_from_u64(0);
        let p = Point::new(3.0, 4.0);
        assert_eq!(e.apply(p, &mut rng), p);
        assert_eq!(e.range(), 0.0);
    }

    #[test]
    fn position_error_bounded_by_range() {
        let e = PositionError::new(2.5);
        let mut rng = StdRng::seed_from_u64(9);
        let p = Point::new(-1.0, 2.0);
        for _ in 0..2000 {
            let q = e.apply(p, &mut rng);
            assert!(p.distance(q) <= 2.5 + 1e-12);
        }
    }

    #[test]
    fn position_error_mean_displacement_reasonable() {
        // Uniform disc of radius R has E[r] = 2R/3.
        let e = PositionError::new(3.0);
        let mut rng = StdRng::seed_from_u64(11);
        let p = Point::ORIGIN;
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| e.apply(p, &mut rng).distance(p))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean displacement {mean}");
    }

    #[test]
    #[should_panic(expected = "error range")]
    fn position_error_rejects_negative() {
        let _ = PositionError::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "start site out of range")]
    fn walk_rejects_bad_start() {
        let chain = MarkovChain::new(sites(2), patterns::uniform(2)).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = chain.walk(5, 1, &mut rng);
    }
}
