//! Transition-matrix families: moving patterns for nomadic APs.
//!
//! The paper's concluding remarks name "the impact of moving patterns of
//! nomadic APs on the overall performance" as an open extension; these
//! builders provide the pattern families exercised by the
//! `repro_ablation_patterns` experiment.

/// Uniform random walk: every site equally likely next (including staying).
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn uniform(n: usize) -> Vec<Vec<f64>> {
    assert!(n > 0, "need at least one site");
    vec![vec![1.0 / n as f64; n]; n]
}

/// Stay-biased walk: remain at the current site with probability `stay`,
/// otherwise move uniformly to one of the others.
///
/// Models a shop greeter who lingers. With `n == 1` the single site absorbs
/// regardless of `stay`.
///
/// # Panics
///
/// Panics when `n == 0` or `stay` is outside `[0, 1]`.
pub fn stay_biased(n: usize, stay: f64) -> Vec<Vec<f64>> {
    assert!(n > 0, "need at least one site");
    assert!((0.0..=1.0).contains(&stay), "stay probability in [0, 1]");
    if n == 1 {
        return vec![vec![1.0]];
    }
    let move_p = (1.0 - stay) / (n - 1) as f64;
    (0..n)
        .map(|i| (0..n).map(|j| if i == j { stay } else { move_p }).collect())
        .collect()
}

/// Deterministic sweep: visit sites in cyclic order `0 → 1 → … → n−1 → 0`.
///
/// Models a security patrol on a fixed route.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn sweep(n: usize) -> Vec<Vec<f64>> {
    assert!(n > 0, "need at least one site");
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| if j == (i + 1) % n { 1.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

/// Ping-pong between neighbours on a line: from site `i` move to `i−1` or
/// `i+1` with equal probability (reflecting at the ends).
///
/// Models pacing along a corridor.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn corridor(n: usize) -> Vec<Vec<f64>> {
    assert!(n > 0, "need at least one site");
    if n == 1 {
        return vec![vec![1.0]];
    }
    (0..n)
        .map(|i| {
            let mut row = vec![0.0; n];
            if i == 0 {
                row[1] = 1.0;
            } else if i == n - 1 {
                row[n - 2] = 1.0;
            } else {
                row[i - 1] = 0.5;
                row[i + 1] = 0.5;
            }
            row
        })
        .collect()
}

/// Clustered walk: sites split into two halves; movement stays within the
/// current half with probability `loyalty`, jumping across otherwise
/// (uniform within the chosen half).
///
/// Models a greeter who works one wing of a venue at a time.
///
/// # Panics
///
/// Panics when `n < 2` or `loyalty` is outside `[0, 1]`.
pub fn clustered(n: usize, loyalty: f64) -> Vec<Vec<f64>> {
    assert!(n >= 2, "clusters need at least two sites");
    assert!((0.0..=1.0).contains(&loyalty), "loyalty in [0, 1]");
    let half = n / 2;
    (0..n)
        .map(|i| {
            let in_first = i < half;
            let (own, other) = if in_first {
                (0..half, half..n)
            } else {
                (half..n, 0..half)
            };
            let own: Vec<usize> = own.collect();
            let other: Vec<usize> = other.collect();
            let mut row = vec![0.0; n];
            for &j in &own {
                row[j] = loyalty / own.len() as f64;
            }
            for &j in &other {
                row[j] = (1.0 - loyalty) / other.len() as f64;
            }
            row
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_stochastic(t: &[Vec<f64>]) {
        for (i, row) in t.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {i} sums to {sum}");
            assert!(row.iter().all(|&p| p >= 0.0), "row {i} has negatives");
        }
    }

    #[test]
    fn all_patterns_are_stochastic() {
        for n in [1usize, 2, 3, 5, 8] {
            assert_stochastic(&uniform(n));
            assert_stochastic(&stay_biased(n, 0.6));
            assert_stochastic(&sweep(n));
            assert_stochastic(&corridor(n));
            if n >= 2 {
                assert_stochastic(&clustered(n, 0.8));
            }
        }
    }

    #[test]
    fn uniform_entries() {
        let t = uniform(4);
        assert!(t.iter().flatten().all(|&p| (p - 0.25).abs() < 1e-12));
    }

    #[test]
    fn stay_biased_diagonal() {
        let t = stay_biased(3, 0.7);
        for (i, row) in t.iter().enumerate() {
            assert!((row[i] - 0.7).abs() < 1e-12);
        }
        assert!((t[0][1] - 0.15).abs() < 1e-12);
    }

    #[test]
    fn stay_biased_single_site() {
        assert_eq!(stay_biased(1, 0.3), vec![vec![1.0]]);
    }

    #[test]
    fn sweep_is_cyclic_permutation() {
        let t = sweep(3);
        assert_eq!(t[0], vec![0.0, 1.0, 0.0]);
        assert_eq!(t[1], vec![0.0, 0.0, 1.0]);
        assert_eq!(t[2], vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn corridor_reflects_at_ends() {
        let t = corridor(4);
        assert_eq!(t[0], vec![0.0, 1.0, 0.0, 0.0]);
        assert_eq!(t[3], vec![0.0, 0.0, 1.0, 0.0]);
        assert_eq!(t[1], vec![0.5, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn clustered_prefers_own_half() {
        let t = clustered(4, 0.9);
        // From site 0 (first half {0,1}): own prob 0.45 each, other 0.05.
        assert!((t[0][0] - 0.45).abs() < 1e-12);
        assert!((t[0][1] - 0.45).abs() < 1e-12);
        assert!((t[0][2] - 0.05).abs() < 1e-12);
        assert!((t[0][3] - 0.05).abs() < 1e-12);
    }

    #[test]
    fn clustered_odd_split() {
        let t = clustered(5, 0.8);
        assert_stochastic(&t);
        // First half has 2 sites, second has 3.
        assert!((t[0][0] - 0.4).abs() < 1e-12);
        assert!((t[4][2] - 0.8 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn uniform_rejects_zero() {
        let _ = uniform(0);
    }

    #[test]
    #[should_panic(expected = "stay probability")]
    fn stay_biased_rejects_bad_probability() {
        let _ = stay_biased(2, 1.5);
    }

    #[test]
    #[should_panic(expected = "at least two sites")]
    fn clustered_rejects_one_site() {
        let _ = clustered(1, 0.5);
    }
}
