//! RSS grid fingerprinting with k-nearest-neighbour matching.
//!
//! The fingerprint-based class of §III-A: an offline *war-driving* survey
//! records an RSS vector per grid cell; online, the measured vector is
//! matched to the k nearest fingerprints in signal space and their
//! positions averaged. The survey cost is exactly the calibration burden
//! NomLoc eliminates — and, as the paper argues, the database is
//! *unbuildable* for nomadic APs, whose positions change between survey
//! and query.

use nomloc_geometry::Point;

/// One surveyed fingerprint: a position and its RSS vector (dBm per AP,
/// in a fixed AP order).
#[derive(Debug, Clone, PartialEq)]
pub struct Fingerprint {
    /// Surveyed position.
    pub position: Point,
    /// RSS per AP, dBm, in database AP order.
    pub rss_dbm: Vec<f64>,
}

/// A fingerprint database over a fixed AP order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FingerprintDb {
    entries: Vec<Fingerprint>,
}

impl FingerprintDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a surveyed fingerprint.
    ///
    /// # Panics
    ///
    /// Panics when the RSS vector length differs from earlier entries.
    pub fn add(&mut self, fp: Fingerprint) {
        if let Some(first) = self.entries.first() {
            assert_eq!(
                first.rss_dbm.len(),
                fp.rss_dbm.len(),
                "fingerprint dimensionality must be uniform"
            );
        }
        self.entries.push(fp);
    }

    /// Number of surveyed cells.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no cells have been surveyed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// k-NN localization: average the positions of the `k` fingerprints
    /// nearest to `query` in RSS space (Euclidean distance in dB).
    ///
    /// Returns `None` when the database is empty, `k == 0`, or the query
    /// dimensionality mismatches.
    pub fn locate(&self, query: &[f64], k: usize) -> Option<Point> {
        if self.entries.is_empty() || k == 0 {
            return None;
        }
        if query.len() != self.entries[0].rss_dbm.len() {
            return None;
        }
        let mut scored: Vec<(f64, Point)> = self
            .entries
            .iter()
            .map(|fp| {
                let d2: f64 = fp
                    .rss_dbm
                    .iter()
                    .zip(query)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (d2, fp.position)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let k = k.min(scored.len());
        let mut x = 0.0;
        let mut y = 0.0;
        for (_, p) in &scored[..k] {
            x += p.x;
            y += p.y;
        }
        Some(Point::new(x / k as f64, y / k as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic venue: RSS from AP i = −40 − 20·log10(dist).
    fn rss_vector(p: Point, aps: &[Point]) -> Vec<f64> {
        aps.iter()
            .map(|ap| -40.0 - 20.0 * ap.distance(p).max(0.1).log10())
            .collect()
    }

    fn surveyed_db(aps: &[Point]) -> FingerprintDb {
        let mut db = FingerprintDb::new();
        for i in 0..=10 {
            for j in 0..=10 {
                let p = Point::new(i as f64, j as f64);
                db.add(Fingerprint {
                    position: p,
                    rss_dbm: rss_vector(p, aps),
                });
            }
        }
        db
    }

    fn aps() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ]
    }

    #[test]
    fn exact_grid_point_recovered() {
        let aps = aps();
        let db = surveyed_db(&aps);
        let q = Point::new(3.0, 7.0);
        let est = db.locate(&rss_vector(q, &aps), 1).unwrap();
        assert!(est.distance(q) < 1e-9);
    }

    #[test]
    fn off_grid_point_within_cell_size() {
        let aps = aps();
        let db = surveyed_db(&aps);
        let q = Point::new(4.4, 6.6);
        let est = db.locate(&rss_vector(q, &aps), 3).unwrap();
        assert!(est.distance(q) < 1.5, "{est} vs {q}");
    }

    #[test]
    fn knn_averages_positions() {
        let mut db = FingerprintDb::new();
        db.add(Fingerprint {
            position: Point::new(0.0, 0.0),
            rss_dbm: vec![-50.0],
        });
        db.add(Fingerprint {
            position: Point::new(2.0, 0.0),
            rss_dbm: vec![-51.0],
        });
        db.add(Fingerprint {
            position: Point::new(100.0, 0.0),
            rss_dbm: vec![-90.0],
        });
        let est = db.locate(&[-50.5], 2).unwrap();
        assert!(est.distance(Point::new(1.0, 0.0)) < 1e-9);
    }

    #[test]
    fn stale_database_breaks_localization() {
        // The paper's argument against fingerprinting with nomadic APs:
        // move one AP after the survey and the database lies.
        let survey_aps = aps();
        let db = surveyed_db(&survey_aps);
        let mut moved = survey_aps.clone();
        moved[0] = Point::new(8.0, 8.0); // the "nomadic" AP walked away
        let q = Point::new(2.3, 2.3);
        let fresh = db.locate(&rss_vector(q, &survey_aps), 3).unwrap();
        let stale = db.locate(&rss_vector(q, &moved), 3).unwrap();
        assert!(
            stale.distance(q) > fresh.distance(q) + 0.5,
            "stale fingerprints should mislocate: fresh {:.2} m, stale {:.2} m",
            fresh.distance(q),
            stale.distance(q)
        );
    }

    #[test]
    fn degenerate_queries() {
        let db = surveyed_db(&aps());
        assert!(db.locate(&[-50.0], 3).is_none(), "dimension mismatch");
        assert!(db
            .locate(&rss_vector(Point::new(1.0, 1.0), &aps()), 0)
            .is_none());
        assert!(FingerprintDb::new().locate(&[-50.0], 1).is_none());
    }

    #[test]
    fn k_larger_than_db_is_clamped() {
        let mut db = FingerprintDb::new();
        db.add(Fingerprint {
            position: Point::new(1.0, 1.0),
            rss_dbm: vec![-50.0],
        });
        let est = db.locate(&[-50.0], 99).unwrap();
        assert_eq!(est, Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn mixed_dimensions_rejected() {
        let mut db = FingerprintDb::new();
        db.add(Fingerprint {
            position: Point::ORIGIN,
            rss_dbm: vec![-50.0],
        });
        db.add(Fingerprint {
            position: Point::ORIGIN,
            rss_dbm: vec![-50.0, -60.0],
        });
    }
}
