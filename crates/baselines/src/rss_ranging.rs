//! RSS log-distance ranging + least-squares trilateration.
//!
//! The classical range-based localizer: invert the log-distance path-loss
//! model per AP to get a distance estimate, then solve the lateration
//! system by linearized least squares. Its accuracy hinges on *calibrated*
//! model parameters — exactly the dependency NomLoc is designed to avoid
//! (§III-A, challenge 1).

use crate::RssObservation;
use nomloc_geometry::Point;

/// Calibrated log-distance model: `RSS(d) = rss_at_1m − 10·n·log₁₀(d)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLossModel {
    /// Expected RSS at 1 m, dBm.
    pub rss_at_1m_dbm: f64,
    /// Path-loss exponent.
    pub exponent: f64,
}

impl PathLossModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics when the exponent is not strictly positive.
    pub fn new(rss_at_1m_dbm: f64, exponent: f64) -> Self {
        assert!(exponent > 0.0, "path-loss exponent must be positive");
        PathLossModel {
            rss_at_1m_dbm,
            exponent,
        }
    }

    /// Distance estimate for a measured RSS, metres.
    pub fn invert(&self, rss_dbm: f64) -> f64 {
        10f64.powf((self.rss_at_1m_dbm - rss_dbm) / (10.0 * self.exponent))
    }

    /// Expected RSS at a distance, dBm.
    pub fn predict(&self, distance: f64) -> f64 {
        self.rss_at_1m_dbm - 10.0 * self.exponent * distance.max(0.1).log10()
    }

    /// Fits the model to `(distance, rss)` calibration samples by ordinary
    /// least squares in log-distance. Returns `None` with fewer than two
    /// distinct distances.
    pub fn fit(samples: &[(f64, f64)]) -> Option<PathLossModel> {
        if samples.len() < 2 {
            return None;
        }
        let xs: Vec<f64> = samples.iter().map(|(d, _)| d.max(0.1).log10()).collect();
        let ys: Vec<f64> = samples.iter().map(|(_, r)| *r).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        if sxx < 1e-12 {
            return None;
        }
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx; // = −10 n
        let intercept = my - slope * mx; // = rss at 1 m
        if slope >= 0.0 {
            return None;
        }
        Some(PathLossModel {
            rss_at_1m_dbm: intercept,
            exponent: -slope / 10.0,
        })
    }
}

/// Localizes by inverting the model per AP and solving the lateration
/// system with linearized least squares.
///
/// Returns `None` with fewer than three observations or a degenerate AP
/// geometry (collinear anchors).
pub fn locate(observations: &[RssObservation], model: &PathLossModel) -> Option<Point> {
    if observations.len() < 3 {
        return None;
    }
    let ranges: Vec<f64> = observations
        .iter()
        .map(|o| model.invert(o.rss_dbm))
        .collect();

    // Linearize by subtracting the last equation:
    //   2(xₙ−xᵢ)x + 2(yₙ−yᵢ)y = rᵢ² − rₙ² − ‖pᵢ‖² + ‖pₙ‖²
    let last = observations.len() - 1;
    let pn = observations[last].ap;
    let rn = ranges[last];
    let mut ata = [[0.0f64; 2]; 2];
    let mut atb = [0.0f64; 2];
    for i in 0..last {
        let pi = observations[i].ap;
        let a0 = 2.0 * (pn.x - pi.x);
        let a1 = 2.0 * (pn.y - pi.y);
        let b = ranges[i] * ranges[i] - rn * rn - pi.to_vec().norm_sq() + pn.to_vec().norm_sq();
        ata[0][0] += a0 * a0;
        ata[0][1] += a0 * a1;
        ata[1][1] += a1 * a1;
        atb[0] += a0 * b;
        atb[1] += a1 * b;
    }
    ata[1][0] = ata[0][1];
    let det = ata[0][0] * ata[1][1] - ata[0][1] * ata[1][0];
    if det.abs() < 1e-9 {
        return None;
    }
    let x = (atb[0] * ata[1][1] - atb[1] * ata[0][1]) / det;
    let y = (ata[0][0] * atb[1] - ata[1][0] * atb[0]) / det;
    let p = Point::new(x, y);
    p.is_finite().then_some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PathLossModel {
        PathLossModel::new(-40.0, 2.0)
    }

    fn obs(ap: Point, truth: Point, m: &PathLossModel) -> RssObservation {
        RssObservation::new(ap, m.predict(ap.distance(truth)))
    }

    #[test]
    fn invert_round_trips_predict() {
        let m = model();
        for d in [0.5, 1.0, 3.0, 10.0, 30.0] {
            let rss = m.predict(d);
            assert!((m.invert(rss) - d.max(0.1)).abs() < 1e-9, "d = {d}");
        }
    }

    #[test]
    fn perfect_observations_recover_position() {
        let m = model();
        let truth = Point::new(4.0, 3.0);
        let aps = [
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let observations: Vec<RssObservation> = aps.iter().map(|&ap| obs(ap, truth, &m)).collect();
        let p = locate(&observations, &m).unwrap();
        assert!(p.distance(truth) < 1e-6, "{p}");
    }

    #[test]
    fn noisy_observations_still_close() {
        let m = model();
        let truth = Point::new(6.0, 7.0);
        let aps = [
            Point::new(0.0, 0.0),
            Point::new(12.0, 0.0),
            Point::new(12.0, 12.0),
            Point::new(0.0, 12.0),
        ];
        // ±1.5 dB deterministic perturbation.
        let noise = [1.5, -1.5, 1.0, -1.0];
        let observations: Vec<RssObservation> = aps
            .iter()
            .zip(noise)
            .map(|(&ap, n)| RssObservation::new(ap, m.predict(ap.distance(truth)) + n))
            .collect();
        let p = locate(&observations, &m).unwrap();
        assert!(p.distance(truth) < 3.0, "{p} vs {truth}");
    }

    #[test]
    fn wrong_calibration_degrades_accuracy() {
        // The paper's point: range-based methods need per-venue
        // calibration. Feed data generated at n = 3 into a model assuming
        // n = 2 and watch the error blow up.
        let true_model = PathLossModel::new(-40.0, 3.0);
        let wrong_model = PathLossModel::new(-40.0, 2.0);
        let truth = Point::new(3.0, 8.0);
        let aps = [
            Point::new(0.0, 0.0),
            Point::new(12.0, 0.0),
            Point::new(12.0, 12.0),
            Point::new(0.0, 12.0),
        ];
        let observations: Vec<RssObservation> =
            aps.iter().map(|&ap| obs(ap, truth, &true_model)).collect();
        let good = locate(&observations, &true_model).unwrap();
        let bad = locate(&observations, &wrong_model).unwrap();
        assert!(good.distance(truth) < 1e-6);
        assert!(
            bad.distance(truth) > 1.0,
            "miscalibration barely hurt: {bad}"
        );
    }

    #[test]
    fn too_few_observations() {
        let m = model();
        let o = [
            RssObservation::new(Point::new(0.0, 0.0), -50.0),
            RssObservation::new(Point::new(5.0, 0.0), -55.0),
        ];
        assert!(locate(&o, &m).is_none());
    }

    #[test]
    fn collinear_anchors_rejected() {
        let m = model();
        let truth = Point::new(3.0, 3.0);
        let aps = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(10.0, 0.0),
        ];
        let observations: Vec<RssObservation> = aps.iter().map(|&ap| obs(ap, truth, &m)).collect();
        assert!(locate(&observations, &m).is_none());
    }

    #[test]
    fn fit_recovers_model() {
        let m = PathLossModel::new(-38.5, 2.7);
        let samples: Vec<(f64, f64)> = [1.0, 2.0, 4.0, 8.0, 16.0]
            .iter()
            .map(|&d| (d, m.predict(d)))
            .collect();
        let fitted = PathLossModel::fit(&samples).unwrap();
        assert!((fitted.rss_at_1m_dbm - m.rss_at_1m_dbm).abs() < 1e-9);
        assert!((fitted.exponent - m.exponent).abs() < 1e-9);
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(PathLossModel::fit(&[]).is_none());
        assert!(PathLossModel::fit(&[(1.0, -40.0)]).is_none());
        assert!(PathLossModel::fit(&[(2.0, -45.0), (2.0, -46.0)]).is_none());
        // Positive slope (RSS growing with distance) is nonsense.
        assert!(PathLossModel::fit(&[(1.0, -50.0), (10.0, -30.0)]).is_none());
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn model_rejects_bad_exponent() {
        let _ = PathLossModel::new(-40.0, 0.0);
    }
}
