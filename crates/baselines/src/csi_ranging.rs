//! FILA-style CSI ranging (the paper's reference \[17\]).
//!
//! FILA ("FILA: Fine-grained Indoor Localization", INFOCOM 2012 — by an
//! overlapping author group) extracts the direct-path power from CSI and
//! inverts a *calibrated* propagation model to range each AP, then
//! trilaterates. It shares NomLoc's PDP front end but keeps the
//! range-based back end, making it the sharpest contrast for the paper's
//! point: with the same physical-layer observable, the range-based method
//! still needs per-venue calibration of `(p0, n)` while the SP method
//! needs none.

use crate::rss_ranging; // shares the lateration solver
use crate::RssObservation;
use nomloc_geometry::Point;

/// Calibrated PDP propagation model: `P(d) = p0 / dⁿ` (linear power).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsiRangeModel {
    /// Direct-path power at 1 m (linear).
    pub p0: f64,
    /// Path-loss exponent.
    pub exponent: f64,
}

/// One CSI ranging observation: AP position plus the measured PDP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdpObservation {
    /// AP position.
    pub ap: Point,
    /// Measured power of the direct path (linear).
    pub pdp: f64,
}

impl PdpObservation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics when `pdp` is not strictly positive and finite.
    pub fn new(ap: Point, pdp: f64) -> Self {
        assert!(pdp > 0.0 && pdp.is_finite(), "PDP must be positive");
        PdpObservation { ap, pdp }
    }
}

impl CsiRangeModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics when `p0` or `exponent` is not strictly positive.
    pub fn new(p0: f64, exponent: f64) -> Self {
        assert!(p0 > 0.0, "reference power must be positive");
        assert!(exponent > 0.0, "exponent must be positive");
        CsiRangeModel { p0, exponent }
    }

    /// Distance estimate from a measured PDP, metres.
    pub fn invert(&self, pdp: f64) -> f64 {
        (self.p0 / pdp).powf(1.0 / self.exponent)
    }

    /// Expected PDP at a distance.
    pub fn predict(&self, distance: f64) -> f64 {
        self.p0 / distance.max(0.1).powf(self.exponent)
    }

    /// Fits `(p0, n)` from `(distance, pdp)` calibration samples by least
    /// squares in log-log space. Returns `None` for degenerate input.
    pub fn fit(samples: &[(f64, f64)]) -> Option<CsiRangeModel> {
        if samples.len() < 2 || samples.iter().any(|&(d, p)| d <= 0.0 || p <= 0.0) {
            return None;
        }
        // log P = log p0 − n·log d: reuse the dB-domain fitter.
        let db_samples: Vec<(f64, f64)> = samples
            .iter()
            .map(|&(d, p)| (d, 10.0 * p.log10()))
            .collect();
        let m = rss_ranging::PathLossModel::fit(&db_samples)?;
        Some(CsiRangeModel {
            p0: 10f64.powf(m.rss_at_1m_dbm / 10.0),
            exponent: m.exponent,
        })
    }
}

/// Localizes by inverting the model per AP and trilaterating.
///
/// Returns `None` with fewer than three observations or a degenerate
/// geometry.
pub fn locate(observations: &[PdpObservation], model: &CsiRangeModel) -> Option<Point> {
    // Reuse the RSS lateration back end by mapping PDPs to dB.
    let rss_model = rss_ranging::PathLossModel::new(10.0 * model.p0.log10(), model.exponent);
    let rss_obs: Vec<RssObservation> = observations
        .iter()
        .map(|o| RssObservation::new(o.ap, 10.0 * o.pdp.log10()))
        .collect();
    rss_ranging::locate(&rss_obs, &rss_model)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CsiRangeModel {
        CsiRangeModel::new(1e-4, 2.0)
    }

    fn obs(ap: Point, truth: Point, m: &CsiRangeModel) -> PdpObservation {
        PdpObservation::new(ap, m.predict(ap.distance(truth)))
    }

    #[test]
    fn invert_round_trips() {
        let m = model();
        for d in [0.5, 1.0, 2.0, 8.0, 20.0] {
            let pdp = m.predict(d);
            assert!((m.invert(pdp) - d.max(0.1)).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_pdps_recover_position() {
        let m = model();
        let truth = Point::new(3.0, 7.0);
        let aps = [
            Point::new(0.0, 0.0),
            Point::new(12.0, 0.0),
            Point::new(12.0, 12.0),
            Point::new(0.0, 12.0),
        ];
        let observations: Vec<PdpObservation> = aps.iter().map(|&ap| obs(ap, truth, &m)).collect();
        let p = locate(&observations, &m).unwrap();
        assert!(p.distance(truth) < 1e-6, "{p}");
    }

    #[test]
    fn fit_recovers_model() {
        let m = CsiRangeModel::new(3.3e-5, 2.4);
        let samples: Vec<(f64, f64)> = [0.8, 1.5, 3.0, 6.0, 12.0]
            .iter()
            .map(|&d| (d, m.predict(d)))
            .collect();
        let fitted = CsiRangeModel::fit(&samples).unwrap();
        assert!((fitted.p0 / m.p0 - 1.0).abs() < 1e-9);
        assert!((fitted.exponent - m.exponent).abs() < 1e-9);
        assert!(CsiRangeModel::fit(&samples[..1]).is_none());
        assert!(CsiRangeModel::fit(&[(1.0, 0.0), (2.0, 1.0)]).is_none());
    }

    #[test]
    fn miscalibrated_exponent_biases_ranges() {
        // The calibration dependence NomLoc avoids: data from n = 3
        // inverted with n = 2 under-ranges far APs.
        let true_model = CsiRangeModel::new(1e-4, 3.0);
        let wrong_model = CsiRangeModel::new(1e-4, 2.0);
        let pdp = true_model.predict(8.0);
        let est = wrong_model.invert(pdp);
        assert!(est > 8.0 * 1.5, "bias too small: {est}");
    }

    #[test]
    fn too_few_observations() {
        let m = model();
        let o = [
            PdpObservation::new(Point::new(0.0, 0.0), 1e-6),
            PdpObservation::new(Point::new(5.0, 0.0), 1e-6),
        ];
        assert!(locate(&o, &m).is_none());
    }

    #[test]
    #[should_panic(expected = "PDP must be positive")]
    fn rejects_zero_pdp() {
        let _ = PdpObservation::new(Point::ORIGIN, 0.0);
    }
}
