//! RSS-weighted centroid localization.
//!
//! Calibration-free like NomLoc, but coarse: the estimate is the weighted
//! mean of AP positions with weights from linearized RSS. Serves as the
//! "cheapest possible" comparator in the benches.

use crate::RssObservation;
use nomloc_geometry::Point;

/// Localizes as the RSS-weighted centroid of the AP positions.
///
/// Weights are linear received powers (`10^{RSS/10}`) raised to `sharpness`;
/// larger sharpness pulls the estimate toward the strongest AP. Returns
/// `None` for an empty observation set.
pub fn locate(observations: &[RssObservation], sharpness: f64) -> Option<Point> {
    if observations.is_empty() {
        return None;
    }
    let mut wx = 0.0;
    let mut wy = 0.0;
    let mut wsum = 0.0;
    for o in observations {
        let w = 10f64.powf(o.rss_dbm / 10.0).powf(sharpness);
        wx += o.ap.x * w;
        wy += o.ap.y * w;
        wsum += w;
    }
    if wsum <= 0.0 || !wsum.is_finite() {
        return None;
    }
    Some(Point::new(wx / wsum, wy / wsum))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_rss_gives_plain_centroid() {
        let obs = [
            RssObservation::new(Point::new(0.0, 0.0), -50.0),
            RssObservation::new(Point::new(10.0, 0.0), -50.0),
            RssObservation::new(Point::new(5.0, 9.0), -50.0),
        ];
        let p = locate(&obs, 1.0).unwrap();
        assert!(p.distance(Point::new(5.0, 3.0)) < 1e-9);
    }

    #[test]
    fn stronger_ap_attracts_estimate() {
        let obs = [
            RssObservation::new(Point::new(0.0, 0.0), -40.0),
            RssObservation::new(Point::new(10.0, 0.0), -70.0),
        ];
        let p = locate(&obs, 1.0).unwrap();
        assert!(p.x < 1.0, "estimate {p} should hug the strong AP");
    }

    #[test]
    fn sharpness_controls_pull() {
        let obs = [
            RssObservation::new(Point::new(0.0, 0.0), -45.0),
            RssObservation::new(Point::new(10.0, 0.0), -50.0),
        ];
        let soft = locate(&obs, 0.1).unwrap();
        let sharp = locate(&obs, 2.0).unwrap();
        assert!(sharp.x < soft.x);
    }

    #[test]
    fn zero_sharpness_ignores_rss() {
        let obs = [
            RssObservation::new(Point::new(0.0, 0.0), -40.0),
            RssObservation::new(Point::new(10.0, 0.0), -90.0),
        ];
        let p = locate(&obs, 0.0).unwrap();
        assert!(p.distance(Point::new(5.0, 0.0)) < 1e-9);
    }

    #[test]
    fn empty_is_none() {
        assert!(locate(&[], 1.0).is_none());
    }

    #[test]
    fn estimate_inside_convex_hull_of_aps() {
        let obs = [
            RssObservation::new(Point::new(0.0, 0.0), -47.0),
            RssObservation::new(Point::new(8.0, 0.0), -53.0),
            RssObservation::new(Point::new(8.0, 6.0), -61.0),
            RssObservation::new(Point::new(0.0, 6.0), -44.0),
        ];
        let p = locate(&obs, 1.0).unwrap();
        assert!((0.0..=8.0).contains(&p.x));
        assert!((0.0..=6.0).contains(&p.y));
    }
}
