//! Nearest-AP cell assignment.
//!
//! The crudest proximity localizer: report the position of the AP with the
//! strongest RSS. Its error is bounded below by half the AP spacing, which
//! makes the value of NomLoc's *pairwise* proximity partition easy to see
//! in the benches.

use crate::RssObservation;
use nomloc_geometry::Point;

/// Returns the position of the strongest-RSS AP, or `None` when empty.
pub fn locate(observations: &[RssObservation]) -> Option<Point> {
    observations
        .iter()
        .max_by(|a, b| a.rss_dbm.total_cmp(&b.rss_dbm))
        .map(|o| o.ap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_strongest() {
        let obs = [
            RssObservation::new(Point::new(0.0, 0.0), -60.0),
            RssObservation::new(Point::new(5.0, 5.0), -45.0),
            RssObservation::new(Point::new(9.0, 1.0), -52.0),
        ];
        assert_eq!(locate(&obs), Some(Point::new(5.0, 5.0)));
    }

    #[test]
    fn single_observation() {
        let obs = [RssObservation::new(Point::new(2.0, 3.0), -70.0)];
        assert_eq!(locate(&obs), Some(Point::new(2.0, 3.0)));
    }

    #[test]
    fn empty_is_none() {
        assert!(locate(&[]).is_none());
    }

    #[test]
    fn tie_returns_one_of_the_tied() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(9.0, 9.0);
        let obs = [RssObservation::new(a, -50.0), RssObservation::new(b, -50.0)];
        let p = locate(&obs).unwrap();
        assert!(p == a || p == b);
    }
}
