//! Baseline indoor-localization algorithms for comparison against NomLoc.
//!
//! The paper's headline comparison is NomLoc against its own static-AP
//! deployment (same algorithm, no nomadic sites); that baseline lives in
//! `nomloc-core` as [`Deployment::Static`]. This crate adds the classical
//! RSS-based comparators that motivate the paper's design decisions:
//!
//! * [`rss_ranging`] — log-distance RSS ranging plus least-squares
//!   trilateration (the "range-based" class of §III-A, which *requires
//!   calibration* of the path-loss exponent);
//! * [`centroid`] — RSS-weighted centroid (calibration-free but coarse);
//! * [`nearest`] — nearest-AP cell assignment (the crudest proximity
//!   scheme);
//! * [`fingerprint`] — grid fingerprinting with k-nearest-neighbour
//!   matching (the "fingerprint-based" class, which requires a full
//!   war-driving survey and is impossible with nomadic APs);
//! * [`csi_ranging`] — FILA-style CSI ranging (the paper's \[17\]): NomLoc's
//!   own PDP front end bolted to a calibrated range-based back end.
//!
//! All baselines consume RSS observations produced by the same simulator
//! that feeds NomLoc its CSI, so comparisons are apples-to-apples.
//!
//! [`Deployment::Static`]: nomloc_core::experiment::Deployment

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centroid;
pub mod csi_ranging;
pub mod fingerprint;
pub mod nearest;
pub mod rss_ranging;

use nomloc_geometry::Point;

/// One RSS observation: an AP at a known position measured the object at
/// the given received power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RssObservation {
    /// AP position.
    pub ap: Point,
    /// Received signal strength, dBm.
    pub rss_dbm: f64,
}

impl RssObservation {
    /// Creates an observation.
    ///
    /// # Panics
    ///
    /// Panics when `rss_dbm` is not finite.
    pub fn new(ap: Point, rss_dbm: f64) -> Self {
        assert!(rss_dbm.is_finite(), "RSS must be finite");
        RssObservation { ap, rss_dbm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "RSS must be finite")]
    fn observation_rejects_nan() {
        let _ = RssObservation::new(Point::ORIGIN, f64::NAN);
    }
}
