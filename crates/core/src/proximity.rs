//! Relative-proximity determination from per-link PDPs (§IV-A).

use crate::confidence::Confidence;
use nomloc_geometry::Point;
use std::fmt;

/// Identifies one AP measurement site.
///
/// A static AP occupies exactly one site for its whole lifetime; a nomadic
/// AP contributes one site per distinct position it reports measurements
/// from (the paper's set `L = {L₁, …, L_S}`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApSite {
    /// AP identifier (stable across a nomadic AP's sites).
    pub ap: usize,
    /// Index of this site within the AP's visit sequence (0 for static).
    pub visit: usize,
    /// The position the AP *reported* for this site — possibly offset from
    /// ground truth by the ER error model.
    pub position: Point,
}

impl ApSite {
    /// Creates a static AP's (only) site.
    pub fn fixed(ap: usize, position: Point) -> Self {
        ApSite {
            ap,
            visit: 0,
            position,
        }
    }

    /// Creates the `visit`-th site of a nomadic AP.
    pub fn nomadic(ap: usize, visit: usize, position: Point) -> Self {
        ApSite {
            ap,
            visit,
            position,
        }
    }
}

impl fmt::Display for ApSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AP{}#{}@{}", self.ap, self.visit, self.position)
    }
}

/// The PDP measured on the link between the object and one AP site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdpReading {
    /// The measuring AP site.
    pub site: ApSite,
    /// Estimated power of the direct path (linear).
    pub pdp: f64,
}

impl PdpReading {
    /// Creates a reading, rejecting invalid power values.
    ///
    /// # Errors
    ///
    /// [`InvalidPdp`] when `pdp` is not strictly positive and finite, or
    /// the site's reported position has a non-finite coordinate — the
    /// validation hostile serving input goes through instead of panicking
    /// a worker thread.
    pub fn try_new(site: ApSite, pdp: f64) -> Result<Self, InvalidPdp> {
        if pdp > 0.0
            && pdp.is_finite()
            && site.position.x.is_finite()
            && site.position.y.is_finite()
        {
            Ok(PdpReading { site, pdp })
        } else {
            Err(InvalidPdp { pdp })
        }
    }

    /// Creates a reading.
    ///
    /// # Panics
    ///
    /// Panics when `pdp` is not strictly positive and finite (thin wrapper
    /// over [`PdpReading::try_new`] for internal callers with trusted
    /// input).
    pub fn new(site: ApSite, pdp: f64) -> Self {
        match Self::try_new(site, pdp) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }
}

/// Error from [`PdpReading::try_new`]: the reading was not usable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidPdp {
    /// The offending power value.
    pub pdp: f64,
}

impl fmt::Display for InvalidPdp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PDP must be positive and finite at a finite site (got {})",
            self.pdp
        )
    }
}

impl std::error::Error for InvalidPdp {}

/// One pairwise proximity judgement: the object is closer to `near` than to
/// `far`, with confidence `weight ∈ [½, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityJudgement {
    /// The site judged nearer.
    pub near: ApSite,
    /// The site judged farther.
    pub far: ApSite,
    /// Confidence factor of the judgement (Eq. 1).
    pub weight: f64,
}

impl ProximityJudgement {
    /// Returns `true` when the judgement agrees with the true object
    /// position `q` and the sites' *true* positions.
    ///
    /// Used for the Fig. 7 accuracy statistic, where ground truth is known.
    pub fn is_correct(&self, q: Point, true_near: Point, true_far: Point) -> bool {
        let _ = self;
        q.distance_sq(true_near) <= q.distance_sq(true_far)
    }
}

/// Derives all pairwise judgements from a set of PDP readings.
///
/// Every unordered pair of sites produces one judgement (the paper's
/// `N = n(n−1)/2`); the site with the larger PDP is deemed nearer and the
/// confidence is `f(P_loser/P_winner)`.
///
/// Ties (exactly equal PDPs) are resolved in favour of the first site with
/// weight ½, which the relaxation treats as maximally doubtful.
pub fn judge_all_pairs<C: Confidence>(
    readings: &[PdpReading],
    confidence: &C,
) -> Vec<ProximityJudgement> {
    let mut out = Vec::with_capacity(readings.len() * readings.len().saturating_sub(1) / 2);
    for i in 0..readings.len() {
        for j in (i + 1)..readings.len() {
            let (a, b) = (&readings[i], &readings[j]);
            let (winner, loser) = if a.pdp >= b.pdp { (a, b) } else { (b, a) };
            out.push(ProximityJudgement {
                near: winner.site,
                far: loser.site,
                weight: confidence.judgement_weight(winner.pdp, loser.pdp),
            });
        }
    }
    out
}

/// Fraction of judgements consistent with ground truth (Fig. 7 metric).
///
/// `truth` maps a site to its *actual* position (undoing any reporting
/// error); `q` is the object's true position. Returns `None` when there are
/// no judgements.
pub fn judgement_accuracy<F>(judgements: &[ProximityJudgement], q: Point, truth: F) -> Option<f64>
where
    F: Fn(&ApSite) -> Point,
{
    if judgements.is_empty() {
        return None;
    }
    let correct = judgements
        .iter()
        .filter(|j| j.is_correct(q, truth(&j.near), truth(&j.far)))
        .count();
    Some(correct as f64 / judgements.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::confidence::PaperExp;

    fn reading(ap: usize, x: f64, y: f64, pdp: f64) -> PdpReading {
        PdpReading::new(ApSite::fixed(ap, Point::new(x, y)), pdp)
    }

    #[test]
    fn pair_count_is_n_choose_2() {
        let readings: Vec<PdpReading> = (0..5)
            .map(|i| reading(i, i as f64, 0.0, 1.0 + i as f64))
            .collect();
        let js = judge_all_pairs(&readings, &PaperExp);
        assert_eq!(js.len(), 10);
    }

    #[test]
    fn stronger_pdp_wins() {
        let readings = [reading(0, 0.0, 0.0, 4.0), reading(1, 10.0, 0.0, 1.0)];
        let js = judge_all_pairs(&readings, &PaperExp);
        assert_eq!(js.len(), 1);
        assert_eq!(js[0].near.ap, 0);
        assert_eq!(js[0].far.ap, 1);
        // Ratio 1/4 → f(0.25) = 2^{-0.25} ≈ 0.8409.
        assert!((js[0].weight - 2f64.powf(-0.25)).abs() < 1e-12);
    }

    #[test]
    fn tie_gets_half_weight() {
        let readings = [reading(0, 0.0, 0.0, 2.0), reading(1, 10.0, 0.0, 2.0)];
        let js = judge_all_pairs(&readings, &PaperExp);
        assert!((js[0].weight - 0.5).abs() < 1e-12);
        assert_eq!(js[0].near.ap, 0, "tie resolves to the first site");
    }

    #[test]
    fn weights_always_in_half_one() {
        let readings: Vec<PdpReading> = (0..6)
            .map(|i| reading(i, i as f64, 1.0, 10f64.powi(i as i32 - 3)))
            .collect();
        for j in judge_all_pairs(&readings, &PaperExp) {
            assert!((0.5..=1.0).contains(&j.weight), "weight {}", j.weight);
        }
    }

    #[test]
    fn correctness_check() {
        let q = Point::new(0.0, 0.0);
        let j = ProximityJudgement {
            near: ApSite::fixed(0, Point::new(1.0, 0.0)),
            far: ApSite::fixed(1, Point::new(5.0, 0.0)),
            weight: 0.9,
        };
        assert!(j.is_correct(q, Point::new(1.0, 0.0), Point::new(5.0, 0.0)));
        // Flipped ground truth: judgement is wrong.
        assert!(!j.is_correct(q, Point::new(5.0, 0.0), Point::new(1.0, 0.0)));
    }

    #[test]
    fn accuracy_statistic() {
        let q = Point::ORIGIN;
        let near = ApSite::fixed(0, Point::new(1.0, 0.0));
        let far = ApSite::fixed(1, Point::new(5.0, 0.0));
        let good = ProximityJudgement {
            near,
            far,
            weight: 0.8,
        };
        let bad = ProximityJudgement {
            near: far,
            far: near,
            weight: 0.6,
        };
        let acc = judgement_accuracy(&[good, bad], q, |s| s.position).unwrap();
        assert!((acc - 0.5).abs() < 1e-12);
        assert_eq!(judgement_accuracy(&[], q, |s| s.position), None);
    }

    #[test]
    fn accuracy_uses_supplied_truth_not_reported() {
        // The nomadic AP reported a wrong position; accuracy must be
        // evaluated against the true one.
        let q = Point::ORIGIN;
        let near = ApSite::nomadic(0, 1, Point::new(50.0, 50.0)); // bogus report
        let far = ApSite::fixed(1, Point::new(5.0, 0.0));
        let j = ProximityJudgement {
            near,
            far,
            weight: 0.8,
        };
        let truth = |s: &ApSite| {
            if s.ap == 0 {
                Point::new(1.0, 0.0)
            } else {
                s.position
            }
        };
        assert_eq!(judgement_accuracy(&[j], q, truth), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "PDP must be positive")]
    fn reading_rejects_zero_pdp() {
        let _ = PdpReading::new(ApSite::fixed(0, Point::ORIGIN), 0.0);
    }

    #[test]
    fn try_new_rejects_hostile_values_without_panicking() {
        let site = ApSite::fixed(0, Point::ORIGIN);
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = PdpReading::try_new(site, bad).unwrap_err();
            assert!(err.to_string().contains("PDP must be positive"));
        }
        let bad_site = ApSite::fixed(0, Point::new(f64::NAN, 1.0));
        assert!(PdpReading::try_new(bad_site, 1.0).is_err());
        assert_eq!(PdpReading::try_new(site, 2.5).unwrap().pdp, 2.5);
    }

    #[test]
    fn site_display() {
        let s = ApSite::nomadic(2, 3, Point::new(1.0, 2.0));
        assert!(format!("{s}").contains("AP2#3"));
    }
}
