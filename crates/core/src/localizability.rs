//! Spatial localizability analysis and deployment planning.
//!
//! The paper's problem statement (Fig. 1, §I/§III) is that a fixed AP
//! deployment localizes some positions sharply and others poorly, and that
//! the blind spots "may change as the environment changes". This module
//! *predicts* that structure without running any radio: under ideal
//! (truthful) proximity judgements, the SP estimate for an object at `p`
//! is the center of `p`'s space-partition cell — the intersection of the
//! pairwise-bisector half-planes `p` satisfies, clipped to the venue. The
//! cell's size and the distance from `p` to its center are the intrinsic
//! resolution of the deployment at `p`.
//!
//! [`analyze`] computes these per grid point; [`LocalizabilityMap`] then
//! answers the planning questions — predicted SLV, blind spots, and which
//! candidate nomadic site shrinks the variance most ([`best_extra_site`]).

use nomloc_geometry::{convex, HalfPlane, Point, Polygon};
use nomloc_lp::center::{self, CenterMethod};

/// Localizability prediction at one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct CellInfo {
    /// The grid point.
    pub point: Point,
    /// Area of the point's space-partition cell, m².
    pub cell_area: f64,
    /// Distance from the point to its cell's center — the error an ideal
    /// NomLoc run would make for an object standing here, metres.
    pub predicted_error: f64,
}

/// A grid of localizability predictions over a venue.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizabilityMap {
    cells: Vec<CellInfo>,
    pitch: f64,
}

impl LocalizabilityMap {
    /// Per-point predictions, row-major over the sampled grid.
    pub fn cells(&self) -> &[CellInfo] {
        &self.cells
    }

    /// The sampling pitch, metres.
    pub fn pitch(&self) -> f64 {
        self.pitch
    }

    /// Number of sampled points.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when no interior grid point was sampled.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Mean predicted error over the venue, metres.
    pub fn mean_predicted_error(&self) -> f64 {
        if self.cells.is_empty() {
            return f64::NAN;
        }
        self.cells.iter().map(|c| c.predicted_error).sum::<f64>() / self.cells.len() as f64
    }

    /// Predicted spatial localizability variance (Eq. 22 over the
    /// predicted per-point errors).
    pub fn predicted_slv(&self) -> f64 {
        let n = self.cells.len();
        if n == 0 {
            return f64::NAN;
        }
        let mean = self.mean_predicted_error();
        self.cells
            .iter()
            .map(|c| (c.predicted_error - mean) * (c.predicted_error - mean))
            .sum::<f64>()
            / n as f64
    }

    /// Grid points whose predicted error exceeds `threshold` — the blind
    /// areas "where the suspect can slip in".
    pub fn blind_spots(&self, threshold: f64) -> Vec<Point> {
        self.cells
            .iter()
            .filter(|c| c.predicted_error > threshold)
            .map(|c| c.point)
            .collect()
    }

    /// The worst grid point and its predicted error.
    pub fn worst(&self) -> Option<&CellInfo> {
        self.cells
            .iter()
            .max_by(|a, b| a.predicted_error.total_cmp(&b.predicted_error))
    }

    /// Predicted error of the grid cell nearest `p` — the
    /// localizability-derived error bound the serving layer attaches to an
    /// estimate in that cell. `None` on an empty map or a non-finite `p`.
    pub fn predicted_error_at(&self, p: Point) -> Option<f64> {
        if !p.x.is_finite() || !p.y.is_finite() {
            return None;
        }
        self.cells
            .iter()
            .min_by(|a, b| a.point.distance_sq(p).total_cmp(&b.point.distance_sq(p)))
            .map(|c| c.predicted_error)
    }
}

/// Predicts localizability over `area` for APs measuring from `ap_sites`,
/// sampling interior points at `pitch` metres.
///
/// # Example
///
/// ```
/// use nomloc_core::localizability::analyze;
/// use nomloc_geometry::{Point, Polygon};
///
/// let room = Polygon::rectangle(Point::new(0.0, 0.0), Point::new(8.0, 8.0));
/// let aps = [Point::new(1.0, 1.0), Point::new(7.0, 7.0)];
/// let map = analyze(&room, &aps, 1.0);
/// assert!(map.mean_predicted_error() > 0.0);
/// assert!(map.predicted_slv().is_finite());
/// ```
///
/// # Panics
///
/// Panics when `pitch` is not strictly positive.
pub fn analyze(area: &Polygon, ap_sites: &[Point], pitch: f64) -> LocalizabilityMap {
    assert!(pitch > 0.0, "grid pitch must be positive");
    let pieces = convex::decompose(area);
    let (min, max) = area.bounding_box();
    let mut cells = Vec::new();
    let mut y = min.y + pitch / 2.0;
    while y < max.y {
        let mut x = min.x + pitch / 2.0;
        while x < max.x {
            let p = Point::new(x, y);
            if area.contains(p) {
                if let Some(info) = cell_info(p, ap_sites, &pieces) {
                    cells.push(info);
                }
            }
            x += pitch;
        }
        y += pitch;
    }
    LocalizabilityMap { cells, pitch }
}

/// The partition cell of `p` under truthful judgements, evaluated in the
/// convex piece containing `p`.
fn cell_info(p: Point, ap_sites: &[Point], pieces: &[Polygon]) -> Option<CellInfo> {
    let piece = pieces.iter().find(|piece| piece.contains(p))?;
    let mut hps = Vec::with_capacity(ap_sites.len() * ap_sites.len() / 2);
    for i in 0..ap_sites.len() {
        for j in (i + 1)..ap_sites.len() {
            let (near, far) = if p.distance_sq(ap_sites[i]) <= p.distance_sq(ap_sites[j]) {
                (ap_sites[i], ap_sites[j])
            } else {
                (ap_sites[j], ap_sites[i])
            };
            if near.distance(far) > 1e-9 {
                hps.push(HalfPlane::closer_to(near, far));
            }
        }
    }
    let region = center::feasible_region(&hps, piece)?;
    let c =
        center::center(CenterMethod::Chebyshev, &hps, piece).unwrap_or_else(|_| region.centroid());
    Some(CellInfo {
        point: p,
        cell_area: region.area(),
        predicted_error: p.distance(c),
    })
}

/// Greedy deployment planning: among `candidates`, the extra measurement
/// site that minimizes the *predicted SLV* when added to `ap_sites`.
///
/// This is the planning question a nomadic AP answers continuously — and
/// the discrete analogue of the AP-placement literature the paper cites
/// (\[5\], \[12\], \[25\]). Returns `None` when `candidates` is empty.
pub fn best_extra_site(
    area: &Polygon,
    ap_sites: &[Point],
    candidates: &[Point],
    pitch: f64,
) -> Option<(Point, f64)> {
    candidates
        .iter()
        .map(|&cand| {
            let mut sites = ap_sites.to_vec();
            sites.push(cand);
            (cand, analyze(area, &sites, pitch).predicted_slv())
        })
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// Greedy k-site planning: repeatedly applies [`best_extra_site`],
/// removing each chosen candidate from the pool. Returns the chosen sites
/// in selection order with the predicted SLV after each addition.
///
/// This plans a *route* for a nomadic AP: the measurement sites worth
/// visiting, most valuable first.
pub fn plan_route(
    area: &Polygon,
    ap_sites: &[Point],
    candidates: &[Point],
    k: usize,
    pitch: f64,
) -> Vec<(Point, f64)> {
    let mut pool: Vec<Point> = candidates.to_vec();
    let mut sites = ap_sites.to_vec();
    let mut route = Vec::new();
    for _ in 0..k.min(candidates.len()) {
        let Some((best, slv)) = best_extra_site(area, &sites, &pool, pitch) else {
            break;
        };
        pool.retain(|p| p.distance(best) > 1e-9);
        sites.push(best);
        route.push((best, slv));
    }
    route
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square() -> Polygon {
        Polygon::rectangle(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    fn corners() -> Vec<Point> {
        vec![
            Point::new(0.5, 0.5),
            Point::new(9.5, 0.5),
            Point::new(9.5, 9.5),
            Point::new(0.5, 9.5),
        ]
    }

    #[test]
    fn map_covers_interior() {
        let map = analyze(&square(), &corners(), 1.0);
        assert_eq!(map.len(), 100);
        assert!((map.pitch() - 1.0).abs() < 1e-12);
        for c in map.cells() {
            assert!(square().contains(c.point));
            assert!(c.cell_area > 0.0);
            assert!(c.predicted_error >= 0.0);
        }
    }

    #[test]
    fn more_aps_improve_prediction() {
        let few = analyze(&square(), &corners()[..2], 1.0);
        let many = analyze(&square(), &corners(), 1.0);
        assert!(many.mean_predicted_error() < few.mean_predicted_error());
    }

    #[test]
    fn symmetric_deployment_has_low_slv() {
        // Four corner APs make a symmetric partition; an asymmetric
        // deployment (all APs in one corner) leaves the far side blind.
        let symmetric = analyze(&square(), &corners(), 1.0);
        let clumped = analyze(
            &square(),
            &[
                Point::new(0.5, 0.5),
                Point::new(1.5, 0.5),
                Point::new(0.5, 1.5),
                Point::new(1.5, 1.5),
            ],
            1.0,
        );
        assert!(symmetric.predicted_slv() < clumped.predicted_slv());
        assert!(symmetric.mean_predicted_error() < clumped.mean_predicted_error());
    }

    #[test]
    fn blind_spots_far_from_clumped_aps() {
        let clumped = analyze(
            &square(),
            &[
                Point::new(0.5, 0.5),
                Point::new(1.5, 0.5),
                Point::new(0.5, 1.5),
            ],
            1.0,
        );
        let blind = clumped.blind_spots(2.5);
        assert!(!blind.is_empty());
        // Blind spots concentrate away from the AP cluster.
        let mean_dist: f64 = blind
            .iter()
            .map(|p| p.distance(Point::new(1.0, 1.0)))
            .sum::<f64>()
            / blind.len() as f64;
        assert!(mean_dist > 5.0, "blind spots at mean distance {mean_dist}");
        let worst = clumped.worst().unwrap();
        assert!(worst.predicted_error > 2.5);
    }

    #[test]
    fn best_extra_site_prefers_uncovered_area() {
        // Three APs cover the south; the best fourth site is in the north.
        let aps = vec![
            Point::new(1.0, 1.0),
            Point::new(5.0, 1.0),
            Point::new(9.0, 1.0),
        ];
        let candidates = vec![Point::new(5.0, 9.0), Point::new(5.0, 2.0)];
        let (best, slv) = best_extra_site(&square(), &aps, &candidates, 1.0).unwrap();
        assert_eq!(best, Point::new(5.0, 9.0));
        assert!(slv.is_finite());
        assert!(best_extra_site(&square(), &aps, &[], 1.0).is_none());
    }

    #[test]
    fn plan_route_improves_monotonically_and_dedups() {
        let aps = vec![Point::new(1.0, 1.0), Point::new(9.0, 1.0)];
        let candidates = vec![
            Point::new(5.0, 9.0),
            Point::new(1.0, 9.0),
            Point::new(9.0, 9.0),
            Point::new(5.0, 5.0),
        ];
        let route = plan_route(&square(), &aps, &candidates, 3, 1.0);
        assert_eq!(route.len(), 3);
        // Distinct sites.
        for i in 0..route.len() {
            for j in (i + 1)..route.len() {
                assert!(route[i].0.distance(route[j].0) > 1e-9);
            }
        }
        // SLV after each greedy addition never gets worse than doing
        // nothing at that step (greedy picks the minimum).
        let base = analyze(&square(), &aps, 1.0).predicted_slv();
        assert!(route[0].1 <= base + 1e-9);
        // Asking for more sites than candidates clamps.
        let all = plan_route(&square(), &aps, &candidates, 99, 1.0);
        assert_eq!(all.len(), 4);
        assert!(plan_route(&square(), &aps, &[], 3, 1.0).is_empty());
    }

    #[test]
    fn nomadic_sites_reduce_predicted_slv_in_lab() {
        // The analytical counterpart of Fig. 8.
        let venue = crate::scenario::Venue::lab();
        let static_sites = venue.static_deployment();
        let static_map = analyze(venue.plan.boundary(), &static_sites, 0.5);
        let mut nomadic_sites = static_sites;
        nomadic_sites.extend_from_slice(&venue.nomadic_sites);
        let nomadic_map = analyze(venue.plan.boundary(), &nomadic_sites, 0.5);
        assert!(
            nomadic_map.predicted_slv() < static_map.predicted_slv(),
            "nomadic {} ≥ static {}",
            nomadic_map.predicted_slv(),
            static_map.predicted_slv()
        );
        assert!(nomadic_map.mean_predicted_error() < static_map.mean_predicted_error());
    }

    #[test]
    fn l_shape_analysis_works() {
        let l = Polygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 5.0),
            Point::new(5.0, 5.0),
            Point::new(5.0, 10.0),
            Point::new(0.0, 10.0),
        ])
        .unwrap();
        let map = analyze(&l, &[Point::new(1.0, 1.0), Point::new(9.0, 1.0)], 1.0);
        assert!(!map.is_empty());
        for c in map.cells() {
            assert!(l.contains(c.point));
        }
    }

    #[test]
    #[should_panic(expected = "grid pitch")]
    fn rejects_zero_pitch() {
        let _ = analyze(&square(), &corners(), 0.0);
    }

    #[test]
    fn empty_ap_set_gives_whole_piece_cells() {
        let map = analyze(&square(), &[], 2.0);
        assert!(!map.is_empty());
        for c in map.cells() {
            assert!((c.cell_area - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn blind_spot_threshold_is_exclusive_at_the_boundary() {
        let map = analyze(&square(), &corners(), 1.0);
        let worst = map.worst().unwrap().predicted_error;
        // A threshold exactly at the worst cell's error excludes it: the
        // predicate is strictly `>`, so no cell sitting exactly on the
        // threshold counts as blind.
        assert!(map.blind_spots(worst).is_empty());
        // Infinitesimally below the worst error, at least that cell is
        // blind; at a threshold below every cell, all cells are blind.
        assert!(!map.blind_spots(worst * (1.0 - 1e-12) - 1e-12).is_empty());
        assert_eq!(map.blind_spots(-1.0).len(), map.len());
        assert_eq!(map.blind_spots(f64::INFINITY).len(), 0);
        // Degenerate thresholds behave like comparisons, not panics.
        assert_eq!(map.blind_spots(f64::NAN).len(), 0);
    }

    #[test]
    fn predicted_error_at_answers_the_nearest_cell() {
        let map = analyze(&square(), &corners(), 1.0);
        for c in map.cells() {
            // Querying exactly on a grid point answers that cell.
            assert_eq!(map.predicted_error_at(c.point), Some(c.predicted_error));
        }
        // Off-grid queries snap to the nearest cell; far-away queries
        // still answer (the bound of the closest boundary cell).
        let near = map.predicted_error_at(Point::new(5.1, 5.1)).unwrap();
        assert!(near.is_finite());
        assert!(map.predicted_error_at(Point::new(500.0, 500.0)).is_some());
        assert!(map.predicted_error_at(Point::new(f64::NAN, 1.0)).is_none());
        let empty = LocalizabilityMap {
            cells: Vec::new(),
            pitch: 1.0,
        };
        assert!(empty.predicted_error_at(Point::ORIGIN).is_none());
    }
}
