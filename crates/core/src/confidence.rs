//! Confidence factors for proximity judgements (Eq. 1–4).
//!
//! A judgement "the object is closer to AP *j* than AP *i*" derived from
//! the PDP ratio `x = Pᵢ/Pⱼ` carries confidence `w = f(x)`, where `f` must
//! satisfy the paper's axioms (Eq. 2–3):
//!
//! * `f(x) + f(1/x) = 1` — the two directions of one comparison partition
//!   the total belief;
//! * `f(1) = ½` — equal PDPs give a coin-flip;
//! * `f(x) ≥ 0`.
//!
//! A useful `f` is also *decreasing*: the more the loser's power trails the
//! winner's, the more confident the judgement. The paper's choice (Eq. 4)
//! is the exponential family implemented by [`PaperExp`]; [`Logistic`] and
//! [`HardDecision`] are alternatives for the ablation study.

/// A confidence function over PDP ratios.
///
/// Implementations must uphold the axioms listed in the
/// [module docs](self); the test suite and property tests verify them for
/// the provided types.
pub trait Confidence {
    /// Confidence of the judgement given the PDP ratio `x = P_loser /
    /// P_winner ∈ (0, ∞)`.
    fn confidence(&self, x: f64) -> f64;

    /// Weight of the winning judgement for PDPs `(winner, loser)`:
    /// `f(loser/winner)`, clamped into `[½, 1]`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when either power is non-positive.
    fn judgement_weight(&self, winner_pdp: f64, loser_pdp: f64) -> f64 {
        debug_assert!(winner_pdp > 0.0 && loser_pdp > 0.0, "PDPs must be positive");
        self.confidence(loser_pdp / winner_pdp).clamp(0.5, 1.0)
    }
}

/// The paper's exponential confidence function (Eq. 4):
///
/// ```text
/// f(x) = 2^{−x}          0 < x ≤ 1
/// f(x) = 1 − 2^{−1/x}    x > 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PaperExp;

impl Confidence for PaperExp {
    fn confidence(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else if x <= 1.0 {
            2f64.powf(-x)
        } else {
            1.0 - 2f64.powf(-1.0 / x)
        }
    }
}

/// Logistic family `f(x) = 1 / (1 + xᵏ)` with steepness `k > 0`.
///
/// Satisfies the axioms for every `k`: `f(x) + f(1/x) = 1/(1+xᵏ) +
/// xᵏ/(1+xᵏ) = 1`. Larger `k` approaches the hard decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Logistic {
    k: f64,
}

impl Logistic {
    /// Creates a logistic confidence function, rejecting invalid steepness.
    ///
    /// # Errors
    ///
    /// [`InvalidSteepness`] when `k` is not strictly positive and finite —
    /// the validation untrusted configuration goes through instead of
    /// panicking.
    pub fn try_new(k: f64) -> Result<Self, InvalidSteepness> {
        if k > 0.0 && k.is_finite() {
            Ok(Logistic { k })
        } else {
            Err(InvalidSteepness { k })
        }
    }

    /// Creates a logistic confidence function with steepness `k`.
    ///
    /// # Panics
    ///
    /// Panics when `k` is not strictly positive and finite (thin wrapper
    /// over [`Logistic::try_new`]).
    pub fn new(k: f64) -> Self {
        match Self::try_new(k) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// The steepness parameter.
    pub fn k(&self) -> f64 {
        self.k
    }
}

impl Default for Logistic {
    fn default() -> Self {
        Logistic { k: 1.0 }
    }
}

/// Error from [`Logistic::try_new`]: the steepness was not usable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidSteepness {
    /// The offending steepness value.
    pub k: f64,
}

impl std::fmt::Display for InvalidSteepness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "steepness must be positive and finite (got {})", self.k)
    }
}

impl std::error::Error for InvalidSteepness {}

impl Confidence for Logistic {
    fn confidence(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            1.0 / (1.0 + x.powf(self.k))
        }
    }
}

/// Degenerate all-or-nothing confidence: total trust in every judgement.
///
/// `f(x) = 1` for `x < 1`, `½` at `1`, `0` beyond. Used by the ablation to
/// show why graded confidence matters for the relaxation LP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HardDecision;

impl Confidence for HardDecision {
    fn confidence(&self, x: f64) -> f64 {
        if x < 1.0 {
            1.0
        } else if x == 1.0 {
            0.5
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_axioms<C: Confidence>(f: &C) {
        // f(1) = ½.
        assert!((f.confidence(1.0) - 0.5).abs() < 1e-12);
        // f(x) + f(1/x) = 1 across a log-spaced sweep.
        for i in -40..=40 {
            let x = 10f64.powf(i as f64 / 10.0);
            let s = f.confidence(x) + f.confidence(1.0 / x);
            assert!((s - 1.0).abs() < 1e-9, "axiom failed at x = {x}: {s}");
            assert!(f.confidence(x) >= 0.0);
        }
    }

    #[test]
    fn paper_exp_axioms() {
        check_axioms(&PaperExp);
    }

    #[test]
    fn logistic_axioms() {
        for k in [0.5, 1.0, 2.0, 5.0] {
            check_axioms(&Logistic::new(k));
        }
    }

    #[test]
    fn hard_decision_axioms() {
        let f = HardDecision;
        assert_eq!(f.confidence(1.0), 0.5);
        for x in [0.1, 0.5, 0.99] {
            assert_eq!(f.confidence(x) + f.confidence(1.0 / x), 1.0);
        }
    }

    #[test]
    fn paper_exp_known_values() {
        let f = PaperExp;
        // f(1/2) = 2^{-1/2} ≈ 0.7071.
        assert!((f.confidence(0.5) - 2f64.powf(-0.5)).abs() < 1e-12);
        // f(2) = 1 − 2^{-1/2} ≈ 0.2929.
        assert!((f.confidence(2.0) - (1.0 - 2f64.powf(-0.5))).abs() < 1e-12);
        // Extremes.
        assert!((f.confidence(1e-9) - 1.0).abs() < 1e-6);
        assert!(f.confidence(1e9) < 1e-6);
    }

    #[test]
    fn confidence_is_decreasing() {
        for f in [
            &PaperExp as &dyn Confidence,
            &Logistic::new(2.0),
            &HardDecision,
        ] {
            let mut prev = f.confidence(0.01);
            for i in 1..200 {
                let x = 0.01 + i as f64 * 0.05;
                let c = f.confidence(x);
                assert!(c <= prev + 1e-12, "not decreasing at {x}");
                prev = c;
            }
        }
    }

    #[test]
    fn judgement_weight_range() {
        let f = PaperExp;
        // Winner has more power, so ratio ≤ 1 and weight ∈ [½, 1].
        for (w, l) in [(1.0, 1.0), (2.0, 1.0), (100.0, 1.0), (1.0, 0.999)] {
            let wt = f.judgement_weight(w, l);
            assert!((0.5..=1.0).contains(&wt), "weight {wt}");
        }
        // Equal powers: exactly ½.
        assert!((f.judgement_weight(3.0, 3.0) - 0.5).abs() < 1e-12);
        // Overwhelming winner: near 1.
        assert!(f.judgement_weight(1e6, 1.0) > 0.99);
    }

    #[test]
    fn close_pdps_get_low_confidence() {
        // The paper's §V-C observation: errors cluster where PDPs are
        // similar, but those judgements carry weight ≈ ½ so they barely
        // hurt the LP.
        let f = PaperExp;
        let near_tie = f.judgement_weight(1.05, 1.0);
        let clear = f.judgement_weight(10.0, 1.0);
        assert!(near_tie < 0.55);
        assert!(clear > 0.9);
    }

    #[test]
    #[should_panic(expected = "steepness")]
    fn logistic_rejects_zero_k() {
        let _ = Logistic::new(0.0);
    }

    #[test]
    fn try_new_rejects_hostile_steepness_without_panicking() {
        for bad in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let err = Logistic::try_new(bad).unwrap_err();
            assert!(err.to_string().contains("steepness"));
        }
        assert_eq!(Logistic::try_new(2.0).unwrap().k(), 2.0);
    }

    #[test]
    fn logistic_steepness_ordering() {
        // At the same ratio < 1, steeper k is more confident.
        let soft = Logistic::new(0.5);
        let sharp = Logistic::new(4.0);
        assert!(sharp.confidence(0.5) > soft.confidence(0.5));
        assert!(sharp.confidence(2.0) < soft.confidence(2.0));
    }
}
