//! NomLoc: calibration-free indoor localization with nomadic access points.
//!
//! This crate implements the primary contribution of *"NomLoc:
//! Calibration-free Indoor Localization With Nomadic Access Points"* (Xiao
//! et al., IEEE ICDCS 2014): a WLAN positioning system that fights **spatial
//! localizability variance** — the accuracy gap between well-covered and
//! blind spots of a static AP deployment — by letting one or more *nomadic*
//! APs (a greeter's smartphone, a guard's intercom) take CSI measurements
//! from multiple sites, dynamically reshaping the network topology.
//!
//! The pipeline has two stages:
//!
//! 1. **PDP-based proximity determination** ([`pdp`], [`proximity`],
//!    [`confidence`]): per link, the frequency-domain CSI is transformed to
//!    the channel impulse response and the maximum-power tap approximates
//!    the power of the direct path (PDP); comparing PDPs of two APs yields
//!    a relative-proximity judgement weighted by the confidence factor
//!    `w = f(Pᵢ/Pⱼ)` of Eq. 1–4.
//! 2. **SP-based location estimation** ([`constraints`], [`estimator`]):
//!    judgements become perpendicular-bisector half-planes (Eq. 7), the
//!    venue boundary becomes virtual-AP half-planes (Eq. 9–11), nomadic
//!    sites densify the partition (Eq. 13–15), and the weighted LP
//!    relaxation of Eq. 19 absorbs erroneous judgements before the center
//!    of the feasible region is reported.
//!
//! The [`server`] module wires the stages into a [`server::LocalizationServer`];
//! [`scenario`] reproduces the paper's two experimental venues (Fig. 6);
//! [`experiment`] runs full measurement campaigns; [`metrics`] computes the
//! paper's evaluation metrics (accuracy CDF and SLV, Eq. 20–23).
//!
//! # Example
//!
//! ```
//! use nomloc_core::experiment::{Campaign, Deployment};
//! use nomloc_core::scenario::Venue;
//!
//! let venue = Venue::lab();
//! let campaign = Campaign::new(venue, Deployment::nomadic(6))
//!     .packets_per_site(20)
//!     .trials_per_site(1)
//!     .seed(7);
//! let result = campaign.run();
//! assert!(result.slv().is_finite());
//! assert!(result.mean_error() < 5.0, "meter-scale accuracy expected");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod confidence;
pub mod constraints;
pub mod estimator;
pub mod experiment;
pub mod localizability;
pub mod metrics;
pub mod pdp;
pub mod proximity;
pub mod scenario;
pub mod server;
pub mod stats;
pub mod tracking;

pub use cache::VenueCache;
pub use confidence::{Confidence, HardDecision, Logistic, PaperExp};
pub use estimator::{EstimateError, EstimateQuality, FailureCause, LocationEstimate, SpEstimator};
pub use pdp::{PdpEstimator, PdpScratch};
pub use proximity::{ApSite, PdpReading, ProximityJudgement};
pub use server::LocalizationServer;
pub use stats::{PipelineStats, StatsSnapshot};

/// Relaxation weight assigned to area-boundary (virtual-AP) constraints.
///
/// The paper presets boundary constraints "a large weight to guarantee the
/// corresponding constraint satisfied with high priority" (§IV-B-4);
/// proximity weights live in `(0.5, 1]`, so three orders of magnitude is
/// decisively larger while staying numerically tame.
pub const BOUNDARY_WEIGHT: f64 = 1000.0;
